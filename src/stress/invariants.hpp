// The invariant checker: replays a merged stress-run trace and asserts
// the paper's correctness claims on it —
//
//   * uniqueness:   no name is granted while another thread still holds
//                   it (mutual exclusion per name),
//   * range:        every granted name is inside [0, total_slots),
//   * ordering:     a name is only freed by the thread holding it, and
//                   only re-granted after that free (Free-before-Get per
//                   name),
//   * boundedness:  concurrent holds never exceed the scenario's stated
//                   bound (<= the structure's contention bound),
//   * quiescence:   after the drain, zero slots remain held (no leaks).
//
// The checker is deliberately a dumb sequential replay over the
// epoch-sorted trace: all the concurrency subtlety lives in how the trace
// was stamped (see event_log.hpp), so the verdict logic stays auditable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stress/event_log.hpp"

namespace la::stress {

// Sentinel: no reaper thread, ownership is enforced for every free.
inline constexpr std::uint32_t kNoReaper = 0xFFFFFFFFu;

struct CheckConfig {
  // Names must fall in [0, total_slots).
  std::uint64_t total_slots = 0;
  // Peak concurrent holds the scenario claims it never exceeds; 0 skips
  // the bound check.
  std::uint64_t max_concurrent = 0;
  // Expect the trace to end with nothing held (the driver drains).
  bool expect_empty_at_end = true;
  // One thread id allowed to free names it did not acquire: the driver's
  // post-join healing/drain phase, which the fork/join handed ownership
  // to. Workers freeing each other's names is always a violation.
  std::uint32_t reaper_thread = kNoReaper;
};

struct InvariantReport {
  std::uint64_t events = 0;
  std::uint64_t gets = 0;
  std::uint64_t frees = 0;
  std::uint64_t peak_concurrent = 0;
  std::uint64_t leaked = 0;  // names still held when the trace ends
  // First violations, capped; empty means every invariant held.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Sorts `trace` by epoch in place, replays it, and returns the report.
InvariantReport check_trace(std::vector<Event>& trace,
                            const CheckConfig& config);

// Convenience: merge per-thread logs into one trace (unsorted;
// check_trace sorts).
std::vector<Event> merge_logs(const std::vector<const EventLog*>& logs);

}  // namespace la::stress
