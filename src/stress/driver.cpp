#include "stress/driver.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "api/registry.hpp"
#include "api/renamer.hpp"
#include "bench_util/timing.hpp"
#include "bench_util/workload.hpp"
#include "sim/metrics.hpp"
#include "sync/cache.hpp"
#include "sync/futex.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace la::stress {
namespace {

// Deep batches smaller than this are noise-dominated (mirrors the
// Definition 2 calibration in sim/metrics).
constexpr std::uint64_t kMinCheckedBatchSlots = 16;
// The healing verdict: after the window, no deep batch may be fuller than
// this. The steady state with the implementation's c_i = 1 sits near the
// Definition 2 threshold (half full — see fig3_healing's note), so the
// strict Proposition 3 bound would flake; 0.85 is comfortably above the
// steady state and comfortably below "jammed".
constexpr double kMaxDeepBatchFill = 0.85;

// One name held by the zipf scenario, due back at `expires` (in the
// owning thread's iteration count).
struct TimedHold {
  std::uint64_t name = 0;
  std::uint64_t expires = 0;
};

struct ThreadState {
  EventLog log;
  stats::TrialStats trials;
  std::uint64_t ops = 0;
  std::uint64_t backup_gets = 0;
  std::uint64_t timed_gets = 0;
  std::uint64_t timeouts = 0;
  double seconds_active = 0.0;
  std::string error;  // non-empty = the thread died on an exception
  std::vector<std::uint64_t> held;
  std::vector<TimedHold> timed_held;
};

// Per-scenario sizing: how many names one thread keeps in flight.
std::uint64_t per_thread_target(const StressConfig& cfg) {
  const std::uint64_t n = cfg.effective_capacity();
  const auto threads =
      static_cast<std::uint64_t>(cfg.threads == 0 ? 1 : cfg.threads);
  switch (cfg.scenario) {
    case Scenario::kOversub: {
      // Push aggregate holds to just under the contention bound, leaving
      // a couple of free slots per thread so every Get can terminate.
      const std::uint64_t headroom = 2 * threads;
      const std::uint64_t usable = n > headroom ? n - headroom : threads;
      const std::uint64_t target = usable / threads;
      return target < 1 ? 1 : target;
    }
    case Scenario::kSteady:
    case Scenario::kBurst:
    case Scenario::kZipf:
    case Scenario::kJoinLeave: {
      const std::uint64_t target = n / (2 * threads);
      return target < 1 ? 1 : target;
    }
  }
  return 1;
}

// Shared bookkeeping for one worker's Get / Free, with logging in the
// sound ticket order (see event_log.hpp).
template <typename Array, typename Rng>
std::uint64_t logged_get(Array& array, Rng& rng, EpochClock& clock,
                         ThreadState& st, std::uint32_t tid) {
  const GetResult r = array.get(rng);
  st.log.record(clock, tid, Op::kGet, r.name);  // ticket after the acquire
  st.trials.record(r.probes);
  if (r.used_backup) ++st.backup_gets;
  ++st.ops;
  return r.name;
}

template <typename Array>
void logged_free(Array& array, std::uint64_t name, EpochClock& clock,
                 ThreadState& st, std::uint32_t tid) {
  st.log.record(clock, tid, Op::kFree, name);  // ticket before the release
  array.free(name);
  ++st.ops;
}

// Budget for one worker: ops mode counts individual Gets+Frees, timed
// mode polls the thread's stopwatch every 32 checks. The shared stop
// flag (a sibling worker died) ends every scenario early — without it,
// the survivors would churn their full budget against a structure
// already known to be broken.
class Budget {
 public:
  Budget(const StressConfig& cfg, const bench::Stopwatch& watch,
         const std::atomic<bool>& stop)
      : ops_limit_(cfg.ops_per_thread),
        seconds_(cfg.seconds),
        watch_(watch),
        stop_(stop) {}

  bool exhausted(const ThreadState& st) {
    if (stop_.load(std::memory_order_acquire)) return true;
    if (ops_limit_ != 0) return st.ops >= ops_limit_;
    if ((++polls_ & 31u) != 0) return false;
    return watch_.elapsed_seconds() >= seconds_;
  }

 private:
  std::uint64_t ops_limit_;
  double seconds_;
  const bench::Stopwatch& watch_;
  const std::atomic<bool>& stop_;
  std::uint32_t polls_ = 0;
};

// --- worker loops, one per scenario -------------------------------------

// steady / oversub: back-to-back churn holding ~target names; oversub
// only differs in how high target sits (just under the contention bound,
// or above it when a deadline makes refusals survivable). `deadline_ns`
// is the per-Get budget (0 = untimed); a refused Get acquired nothing,
// so nothing is logged for it, but it still spends budget — ops mode
// must terminate even if every remaining Get times out.
template <typename Array, typename Rng>
void run_churn_worker(Array& array, Rng& rng, EpochClock& clock,
                      ThreadState& st, std::uint32_t tid,
                      std::uint64_t target, Budget& budget,
                      std::uint64_t deadline_ns) {
  while (!budget.exhausted(st)) {
    if (!st.held.empty() &&
        (st.held.size() >= target || rng::bounded(rng, 4) == 0)) {
      const std::uint64_t victim = rng::bounded(rng, st.held.size());
      logged_free(array, st.held[victim], clock, st, tid);
      st.held[victim] = st.held.back();
      st.held.pop_back();
      continue;
    }
    if constexpr (api::has_deadline_ops_v<Array>) {
      if (deadline_ns != 0) {
        GetResult r;
        ++st.timed_gets;
        const bool granted = api::get_for(
            array, rng, r,
            sync::FutexWord::monotonic_now_ns() + deadline_ns);
        if (!granted) {
          ++st.timeouts;
          ++st.ops;
          continue;
        }
        st.log.record(clock, tid, Op::kGet, r.name);
        st.trials.record(r.probes);
        if (r.used_backup) ++st.backup_gets;
        ++st.ops;
        st.held.push_back(r.name);
        continue;
      }
    }
    st.held.push_back(logged_get(array, rng, clock, st, tid));
  }
}

// burst: every round all threads cross the barrier together, storm the
// structure with `holds` back-to-back Gets, meet again, release
// everything, repeat. Rounds are budget-derived in ops mode (identical on
// every thread, so barrier participation matches) and flagged off by
// thread 0 in timed mode. A poisoned barrier (a worker died) falls
// through immediately; the stop check after the rendezvous then ends the
// round loop, and each thread frees whatever it acquired this round.
template <typename Array, typename Rng>
void run_burst_worker(Array& array, Rng& rng, EpochClock& clock,
                      ThreadState& st, std::uint32_t tid, std::uint64_t holds,
                      std::uint64_t rounds, sync::SpinBarrier& barrier,
                      std::atomic<bool>& stop, const StressConfig& cfg,
                      const bench::Stopwatch& watch) {
  const bool timed = cfg.ops_per_thread == 0;
  for (std::uint64_t round = 0; timed || round < rounds; ++round) {
    if (timed && tid == 0 && watch.elapsed_seconds() >= cfg.seconds) {
      stop.store(true, std::memory_order_release);
    }
    barrier.wait();
    if (stop.load(std::memory_order_acquire)) break;
    for (std::uint64_t h = 0; h < holds; ++h) {
      st.held.push_back(logged_get(array, rng, clock, st, tid));
    }
    barrier.wait();
    for (const auto name : st.held) logged_free(array, name, clock, st, tid);
    st.held.clear();
  }
}

// zipf: names age out on Zipf-skewed hold times — most are freed almost
// immediately, a heavy tail pins slots ~10x the mean, so old and fresh
// names stay interleaved across the slots.
template <typename Array, typename Rng>
void run_zipf_worker(Array& array, Rng& rng, EpochClock& clock,
                     ThreadState& st, std::uint32_t tid, std::uint64_t target,
                     Budget& budget) {
  constexpr double kMeanHoldIters = 16.0;
  st.timed_held.reserve(static_cast<std::size_t>(target + 1));
  std::uint64_t iter = 0;
  while (!budget.exhausted(st)) {
    for (std::size_t i = 0; i < st.timed_held.size();) {
      if (st.timed_held[i].expires <= iter) {
        logged_free(array, st.timed_held[i].name, clock, st, tid);
        st.timed_held[i] = st.timed_held.back();
        st.timed_held.pop_back();
      } else {
        ++i;
      }
    }
    if (st.timed_held.size() < target) {
      const std::uint64_t name = logged_get(array, rng, clock, st, tid);
      const std::uint64_t hold = bench::draw_hold_time(
          rng, bench::HoldDistribution::kZipf, kMeanHoldIters);
      st.timed_held.push_back(TimedHold{name, iter + hold});
    }
    ++iter;
  }
  // Hand whatever is still pinned to the post-join reaper via the stash.
  for (const auto& h : st.timed_held) st.held.push_back(h.name);
  st.timed_held.clear();
}

// joinleave: thread tid idles until the run has globally progressed
// tid * stagger events (the epoch clock doubles as the progress signal),
// churns its budget, then drains and leaves — membership ramps up and
// down around a live structure. Thread 0 starts immediately, and each
// threshold is below what the predecessors' completed budgets alone
// produce, so the wait terminates; `stop` (a worker died) bails it out
// of a wait that can no longer be satisfied.
template <typename Array, typename Rng>
void run_joinleave_worker(Array& array, Rng& rng, EpochClock& clock,
                          ThreadState& st, std::uint32_t tid,
                          std::uint64_t target, Budget& budget,
                          std::atomic<bool>& stop, const StressConfig& cfg,
                          const bench::Stopwatch& watch,
                          std::uint64_t deadline_ns) {
  sync::Backoff backoff;
  if (cfg.ops_per_thread != 0) {
    const std::uint64_t stagger =
        cfg.ops_per_thread / 2 < 1 ? 1 : cfg.ops_per_thread / 2;
    const std::uint64_t threshold = stagger * tid;
    while (clock.issued() < threshold &&
           !stop.load(std::memory_order_acquire)) {
      backoff.pause();
    }
  } else {
    const double join_at =
        cfg.seconds * static_cast<double>(tid) /
        (2.0 * static_cast<double>(cfg.threads == 0 ? 1 : cfg.threads));
    while (watch.elapsed_seconds() < join_at &&
           !stop.load(std::memory_order_acquire)) {
      backoff.pause();
    }
  }
  run_churn_worker(array, rng, clock, st, tid, target, budget, deadline_ns);
  for (const auto name : st.held) logged_free(array, name, clock, st, tid);
  st.held.clear();
}

// --- healing window -----------------------------------------------------

// For structures with the batch-occupancy surface: rebuild Fig. 3's bad
// state (deep batch 1 forced to its overcrowding threshold) on top of
// whatever the run left, churn at half the contention bound, and require
// every deep batch to end below kMaxDeepBatchFill. Runs single-threaded
// on the reaper id; everything is logged, so the checker covers this
// phase too. Returns the phase's peak concurrent holds.
template <typename Array, typename Rng>
std::uint64_t run_healing_window(Array& array, Rng& rng, EpochClock& clock,
                                 ThreadState& reaper, std::uint32_t reaper_tid,
                                 std::vector<std::uint64_t>& pool,
                                 const StressConfig& cfg,
                                 StressReport& report) {
  const std::uint64_t n = cfg.effective_capacity();
  const std::uint64_t heal_load = n / 2 < 1 ? 1 : n / 2;
  const std::uint64_t heal_ops = cfg.heal_ops != 0 ? cfg.heal_ops : 4 * n;

  // Adjust the leftover pool down/up to the healing load.
  while (pool.size() > heal_load) {
    logged_free(array, pool.back(), clock, reaper, reaper_tid);
    pool.pop_back();
  }
  while (pool.size() < heal_load) {
    pool.push_back(logged_get(array, rng, clock, reaper, reaper_tid));
  }

  // Fig. 3's bad state: batch 1 forced up to its Definition 2 threshold.
  std::uint64_t seeded = 0;
  if constexpr (api::has_seed_batch_occupancy_v<Array>) {
    if (array.batch_occupancy().size() > 1) {
      const auto names = array.seed_batch_occupancy(
          1, sim::overcrowding_threshold(1, array.capacity()));
      for (const auto name : names) {
        // seed_batch_occupancy acquires directly; mirror it in the log.
        reaper.log.record(clock, reaper_tid, Op::kGet, name);
        pool.push_back(name);
      }
      seeded = names.size();
    }
  }

  // Churn back down to the healing load, then keep churning — the
  // paper's recovery schedule.
  for (std::uint64_t op = 0; op < heal_ops; ++op) {
    const std::uint64_t victim = rng::bounded(rng, pool.size());
    logged_free(array, pool[victim], clock, reaper, reaper_tid);
    pool[victim] = pool.back();
    pool.pop_back();
    if (pool.size() < heal_load) {
      pool.push_back(logged_get(array, rng, clock, reaper, reaper_tid));
    }
  }

  // Verdict: every deep batch with enough slots to matter must end
  // bounded away from full. Without geometry there are no batch sizes to
  // compare against, so only the occupancy snapshot is reported.
  const auto occupancy = array.batch_occupancy();
  double max_fill = 0.0;
  if constexpr (api::has_geometry_v<Array>) {
    for (std::size_t k = 1; k < occupancy.size(); ++k) {
      const auto size =
          array.geometry().batch(static_cast<std::uint32_t>(k)).size();
      if (size < kMinCheckedBatchSlots) continue;
      const double fill =
          static_cast<double>(occupancy[k]) / static_cast<double>(size);
      if (fill > max_fill) max_fill = fill;
    }
    report.balance_checked = true;
    report.heal_max_deep_fill = max_fill;
    report.balanced = max_fill <= kMaxDeepBatchFill;
  }
  return heal_load + seeded;
}

// --- the driver ---------------------------------------------------------

template <typename Array, typename Rng>
StressReport drive(Array& array, const StressConfig& cfg) {
  const std::uint32_t threads = cfg.threads == 0 ? 1 : cfg.threads;
  const std::uint64_t n = cfg.effective_capacity();
  if (n < 4 * static_cast<std::uint64_t>(threads)) {
    throw std::invalid_argument(
        "run_stress: capacity " + std::to_string(n) + " is too small for " +
        std::to_string(threads) + " threads (need >= 4 * threads)");
  }
  std::uint64_t target = per_thread_target(cfg);
  // Deadline knob: only honored where the structure can actually bound a
  // Get (api deadline surface). Under a deadline, oversub flips from
  // "just under the bound" to *over* it — aggregate demand exceeds n, so
  // a nonzero timeout rate is the expected (and asserted, by harnesses)
  // outcome rather than a hang.
  std::uint64_t deadline_ns = 0;
  if constexpr (api::has_deadline_ops_v<Array>) {
    deadline_ns = cfg.deadline_ns;
    if (deadline_ns != 0 && cfg.scenario == Scenario::kOversub) {
      target = n / threads + 2;
    }
  }
  const std::uint64_t worker_bound = target * threads;

  StressReport report;
  EpochClock clock;
  std::vector<sync::CachePadded<ThreadState>> states(threads);
  for (auto& st : states) {
    st->log.reserve(
        static_cast<std::size_t>(2 * cfg.ops_per_thread + 2 * target + 64));
    st->held.reserve(static_cast<std::size_t>(target + 1));
  }

  sync::SpinBarrier barrier(threads);
  std::atomic<bool> stop{false};
  const std::uint64_t burst_rounds =
      cfg.ops_per_thread == 0
          ? 0
          : std::max<std::uint64_t>(cfg.ops_per_thread / (2 * target), 1);

  {
    sync::ThreadGroup group;
    group.spawn(threads, [&](std::uint32_t tid) {
      ThreadState& st = *states[tid];
      try {
        Rng rng(rng::mix_seed(cfg.seed, tid + 1));
        barrier.wait();
        bench::Stopwatch watch;
        Budget budget(cfg, watch, stop);
        switch (cfg.scenario) {
          case Scenario::kSteady:
          case Scenario::kOversub:
            run_churn_worker(array, rng, clock, st, tid, target, budget,
                             deadline_ns);
            break;
          case Scenario::kBurst:
            run_burst_worker(array, rng, clock, st, tid, target, burst_rounds,
                             barrier, stop, cfg, watch);
            break;
          case Scenario::kZipf:
            run_zipf_worker(array, rng, clock, st, tid, target, budget);
            break;
          case Scenario::kJoinLeave:
            run_joinleave_worker(array, rng, clock, st, tid, target, budget,
                                 stop, cfg, watch, deadline_ns);
            break;
        }
        st.seconds_active = watch.elapsed_seconds();
      } catch (const std::exception& e) {
        st.error = e.what();
        stop.store(true, std::memory_order_release);
        barrier.abort();  // wake anyone parked on a rendezvous with us
      }
    });
  }

  // Workers have joined; aggregate their outputs.
  std::vector<std::uint64_t> pool;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    const ThreadState& st = *states[tid];
    report.trials.merge(st.trials);
    report.total_ops += st.ops;
    report.backup_gets += st.backup_gets;
    report.timed_gets += st.timed_gets;
    report.timeouts += st.timeouts;
    if (st.seconds_active > report.elapsed_seconds) {
      report.elapsed_seconds = st.seconds_active;
    }
    pool.insert(pool.end(), st.held.begin(), st.held.end());
    // A thread that died mid-scenario may still have zipf timed holds.
    for (const auto& h : st.timed_held) pool.push_back(h.name);
  }

  std::vector<std::string> driver_errors;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    if (!states[tid]->error.empty()) {
      driver_errors.push_back("thread " + std::to_string(tid) +
                              " died: " + states[tid]->error);
    }
  }

  // Cross-check the structure's own view against the log before touching
  // anything: collect() at quiescence must see exactly the leftovers.
  {
    std::vector<std::uint64_t> collected;
    array.collect(collected);
    std::vector<std::uint64_t> expected = pool;
    std::sort(collected.begin(), collected.end());
    std::sort(expected.begin(), expected.end());
    if (collected != expected) {
      driver_errors.push_back(
          "collect() at quiescence disagrees with the log (" +
          std::to_string(collected.size()) + " collected vs " +
          std::to_string(expected.size()) + " logged holds)");
    }
  }

  // Post-join phases run on a virtual "reaper" thread id (= threads):
  // the fork/join transferred ownership of the leftovers to the driver.
  const std::uint32_t reaper_tid = threads;
  ThreadState reaper;
  std::uint64_t heal_peak = 0;
  Rng reaper_rng(rng::mix_seed(cfg.seed, 0x4EA9E4ull));
  if constexpr (api::has_batch_occupancy_v<Array>) {
    if (driver_errors.empty()) {
      heal_peak = run_healing_window<Array, Rng>(
          array, reaper_rng, clock, reaper, reaper_tid, pool, cfg, report);
    }
  }

  // Drain to empty and verify the structure agrees.
  for (const auto name : pool) {
    logged_free(array, name, clock, reaper, reaper_tid);
  }
  pool.clear();
  report.trials.merge(reaper.trials);
  report.total_ops += reaper.ops;
  report.backup_gets += reaper.backup_gets;
  {
    std::vector<std::uint64_t> collected;
    if (array.collect(collected) != 0) {
      driver_errors.push_back("collect() after the drain still sees " +
                              std::to_string(collected.size()) + " name(s)");
    }
  }

  // Replay the merged trace through the checker.
  std::vector<const EventLog*> logs;
  logs.reserve(threads + 1);
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    logs.push_back(&states[tid]->log);
  }
  logs.push_back(&reaper.log);
  std::vector<Event> trace = merge_logs(logs);

  CheckConfig check;
  check.total_slots = array.total_slots();
  check.max_concurrent = std::max(heal_peak, worker_bound);
  check.expect_empty_at_end = true;
  check.reaper_thread = reaper_tid;
  report.invariants = check_trace(trace, check);

  for (auto& error : driver_errors) {
    report.invariants.violations.push_back(std::move(error));
  }

  // Gate-wait accounting must be read here, while the structure is still
  // alive — api::visit destroys it when drive() returns.
  if constexpr (api::has_wait_stats_v<Array>) {
    const api::WaitStats waits = array.wait_stats();
    report.wait_rounds = waits.wait_rounds;
    report.parks = waits.parks;
  }
  return report;
}

}  // namespace

StressReport run_stress(const StressConfig& cfg) {
  api::RenamerConfig rc;
  rc.capacity = cfg.effective_capacity();
  rc.rng_kind = cfg.rng_kind;
  return api::visit(cfg.structure, rc, [&](auto& array) {
    return api::with_rng(cfg.rng_kind, [&](auto tag) {
      using Rng = typename decltype(tag)::type;
      return drive<std::decay_t<decltype(array)>, Rng>(array, cfg);
    });
  });
}

}  // namespace la::stress
