// The real-thread stress driver: runs any api::registry structure through
// one scenario of the matrix (see scenario.hpp) with every Get/Free
// recorded in per-thread event logs, then replays the merged trace
// through the invariant checker. For structures exposing the
// batch-occupancy surface it additionally runs a logged healing window —
// seed a deep batch into the paper's Fig. 3 bad state, churn, and assert
// the deep batches end bounded — so the self-healing claim is checked,
// not just benchmarked.
//
// A report with report.ok() == true certifies, for that run: unique names
// while held, all names in range, Free-before-Get ordering per name,
// concurrent holds within the scenario bound, zero leaked slots at
// quiescence, collect() agreeing with the log, and (where applicable)
// bounded deep-batch occupancy after healing.
#pragma once

#include <cstdint>
#include <string>

#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "stress/invariants.hpp"
#include "stress/scenario.hpp"

namespace la::stress {

struct StressConfig {
  std::string structure = "level";  // api::registry name or alias
  Scenario scenario = Scenario::kSteady;
  std::uint32_t threads = 8;
  // Individual Get and Free operations per thread; 0 = timed mode.
  std::uint64_t ops_per_thread = 20000;
  double seconds = 0.0;  // window for timed mode
  // Contention bound n for the structure; 0 derives max(256, 32*threads).
  std::uint64_t capacity = 0;
  std::uint64_t seed = 42;
  rng::RngKind rng_kind = rng::RngKind::kMarsaglia;
  // Healing-window churn iterations (batch-occupancy structures only);
  // 0 derives 4 * capacity. Negative scenarios aside, the window always
  // churns at half the contention bound, mirroring fig3_healing.
  std::uint64_t heal_ops = 0;
  // Per-Get deadline budget in ns for the churn-based scenarios (steady /
  // oversub / joinleave); 0 = Gets block until they succeed. Only applied
  // to structures with the api deadline surface — driving an untimed
  // fallback past capacity would livelock, so for every other structure
  // the knob is ignored. With a deadline set, oversub raises per-thread
  // demand *above* the contention bound: refusals become expected and
  // the run certifies bounded waiting instead of avoiding it.
  std::uint64_t deadline_ns = 0;

  std::uint64_t effective_capacity() const {
    if (capacity != 0) return capacity;
    const std::uint64_t derived = 32 * static_cast<std::uint64_t>(threads);
    return derived < 256 ? 256 : derived;
  }
};

struct StressReport {
  InvariantReport invariants;
  stats::TrialStats trials;  // probes per Get, workers + healing window
  std::uint64_t total_ops = 0;
  std::uint64_t backup_gets = 0;
  // Gate waiting as reported by the structure (api::WaitStats): retry
  // rounds spent refused at the gate and futex parks once the spin and
  // yield tiers were exhausted. Zero for structures without the surface.
  std::uint64_t wait_rounds = 0;
  std::uint64_t parks = 0;
  // Deadline accounting (cfg.deadline_ns != 0 on a structure with the
  // deadline surface): Gets attempted under a bound, and the subset
  // refused kTimedOut. A refused Get acquired nothing, so it never
  // appears in the event log — only here.
  std::uint64_t timed_gets = 0;
  std::uint64_t timeouts = 0;
  double elapsed_seconds = 0.0;  // slowest worker, barrier to loop end
  // Healing window (batch-occupancy structures only).
  bool balance_checked = false;
  bool balanced = true;  // deep batches bounded after the healing window
  double heal_max_deep_fill = 0.0;  // final-snapshot max fill of deep batches

  bool ok() const { return invariants.ok() && (!balance_checked || balanced); }
};

// Build cfg.structure from the registry and run the scenario. Throws
// std::invalid_argument for unknown structures, capacities a structure
// refuses, or thread/capacity combinations whose scenario bound cannot
// fit the contention bound (capacity < 4 * threads).
StressReport run_stress(const StressConfig& cfg);

}  // namespace la::stress
