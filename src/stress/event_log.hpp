// Lock-free per-thread event logs for the stress subsystem. Every Get and
// Free a stress thread performs is recorded as (epoch, thread, op, name);
// after the threads join, the per-thread logs are merged and sorted by
// epoch into one total-order trace the invariant checker replays.
//
// The epoch is a ticket from one shared atomic counter. Ticket placement
// is what makes the trace *sound* — i.e. a correct structure can never
// produce a trace the checker rejects:
//
//   * Get tickets are drawn AFTER get() returns (after the slot's
//     acquire),
//   * Free tickets are drawn BEFORE free() is called (before the slot's
//     release),
//
// so each logged hold interval [get_epoch, free_epoch] is contained in
// the true exclusion interval [acquire, release]. A correct structure's
// true intervals per name are disjoint and release happens-before the
// next acquire; the ticket fetch_adds inherit that happens-before, and
// same-variable RMW coherence then orders the tickets the same way — the
// logged intervals stay disjoint and correctly ordered even with relaxed
// tickets. A lost release or duplicate grant, by contrast, shows up as
// two overlapping logged holds of one name (barring an adversarial
// stamping race, which repeated runs and TSan cover).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace la::stress {

enum class Op : std::uint8_t { kGet, kFree };

struct Event {
  std::uint64_t epoch = 0;
  std::uint64_t name = 0;
  std::uint32_t thread = 0;
  Op op = Op::kGet;
};

// The shared ticket source. fetch_add is relaxed on purpose: the ordering
// argument above needs only same-variable coherence plus the structure's
// own release/acquire edge.
class EpochClock {
 public:
  std::uint64_t tick() { return next_.fetch_add(1, std::memory_order_relaxed); }

  // Tickets issued so far. The join/leave scenario polls this as a global
  // progress signal to stagger thread arrivals.
  std::uint64_t issued() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> next_{0};
};

// One thread's private append-only log. No cross-thread synchronization:
// each thread writes only its own log, and the fork/join around the run
// publishes the contents to the merger.
class EventLog {
 public:
  void reserve(std::size_t events) { events_.reserve(events); }

  void record(EpochClock& clock, std::uint32_t thread, Op op,
              std::uint64_t name) {
    events_.push_back(Event{clock.tick(), name, thread, op});
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
};

}  // namespace la::stress
