// The stress scenario matrix: named adversarial workload shapes the
// driver can run any registered structure through. Each scenario varies
// one pressure axis the paper's claims must survive:
//
//   steady     back-to-back Free+Get churn at ~half the contention bound
//              (the paper's §6 workload, as a correctness run),
//   burst      all threads arrive through a SpinBarrier at once every
//              round — thundering-herd TAS storms on the same batches,
//   zipf       Zipf-skewed hold times: most names are freed immediately,
//              a heavy tail is pinned ~10x longer, aging the occupancy,
//   oversub    churn with concurrent holds pushed to just under the
//              contention bound — probe failures and backup sweeps,
//   joinleave  threads join the run staggered and leave after their
//              budget — membership churn around a live structure.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace la::stress {

enum class Scenario { kSteady, kBurst, kZipf, kOversub, kJoinLeave };

inline const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> scenarios = {
      Scenario::kSteady, Scenario::kBurst, Scenario::kZipf,
      Scenario::kOversub, Scenario::kJoinLeave};
  return scenarios;
}

inline std::string_view scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kSteady: return "steady";
    case Scenario::kBurst: return "burst";
    case Scenario::kZipf: return "zipf";
    case Scenario::kOversub: return "oversub";
    case Scenario::kJoinLeave: return "joinleave";
  }
  return "?";
}

inline Scenario parse_scenario(const std::string& name) {
  if (name == "steady" || name == "churn") return Scenario::kSteady;
  if (name == "burst") return Scenario::kBurst;
  if (name == "zipf" || name == "skewed") return Scenario::kZipf;
  if (name == "oversub" || name == "oversubscribe") return Scenario::kOversub;
  if (name == "joinleave" || name == "join-leave") return Scenario::kJoinLeave;
  throw std::invalid_argument(
      "unknown scenario: " + name +
      " (expected steady|burst|zipf|oversub|joinleave)");
}

// Resolve a --scenario list: "all" expands to the full matrix.
inline std::vector<Scenario> expand_scenarios(
    const std::vector<std::string>& names) {
  std::vector<Scenario> out;
  const auto add = [&out](Scenario s) {
    for (const auto existing : out) {
      if (existing == s) return;
    }
    out.push_back(s);
  };
  for (const auto& name : names) {
    if (name == "all") {
      for (const auto s : all_scenarios()) add(s);
    } else {
      add(parse_scenario(name));
    }
  }
  return out;
}

}  // namespace la::stress
