#include "stress/invariants.hpp"

#include <algorithm>

namespace la::stress {
namespace {

constexpr std::size_t kMaxViolations = 16;
constexpr std::uint32_t kNoHolder = 0xFFFFFFFFu;

void violate(InvariantReport& report, std::string message) {
  if (report.violations.size() < kMaxViolations) {
    report.violations.push_back(std::move(message));
  } else if (report.violations.size() == kMaxViolations) {
    report.violations.push_back("... further violations suppressed");
  }
}

std::string describe(const Event& e) {
  return std::string(e.op == Op::kGet ? "Get" : "Free") + " name=" +
         std::to_string(e.name) + " thread=" + std::to_string(e.thread) +
         " epoch=" + std::to_string(e.epoch);
}

}  // namespace

std::vector<Event> merge_logs(const std::vector<const EventLog*>& logs) {
  std::size_t total = 0;
  for (const auto* log : logs) total += log->size();
  std::vector<Event> trace;
  trace.reserve(total);
  for (const auto* log : logs) {
    trace.insert(trace.end(), log->events().begin(), log->events().end());
  }
  return trace;
}

InvariantReport check_trace(std::vector<Event>& trace,
                            const CheckConfig& config) {
  InvariantReport report;
  report.events = trace.size();

  std::sort(trace.begin(), trace.end(),
            [](const Event& a, const Event& b) { return a.epoch < b.epoch; });

  // holder[name] = thread currently holding it, or kNoHolder.
  std::vector<std::uint32_t> holder(
      static_cast<std::size_t>(config.total_slots), kNoHolder);
  std::uint64_t held = 0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Event& e = trace[i];
    // Tickets are unique by construction; a duplicate epoch means the log
    // itself is corrupt, which would undermine every later verdict.
    if (i > 0 && trace[i - 1].epoch == e.epoch) {
      violate(report, "duplicate epoch in trace: " + describe(e));
    }
    if (e.name >= config.total_slots) {
      violate(report, "name outside [0, total_slots): " + describe(e));
      continue;
    }
    if (e.op == Op::kGet) {
      ++report.gets;
      const std::uint32_t current = holder[e.name];
      if (current != kNoHolder) {
        violate(report, "duplicate grant (still held by thread " +
                            std::to_string(current) + "): " + describe(e));
        continue;  // keep the original holder so one bug reports once
      }
      holder[e.name] = e.thread;
      ++held;
      if (held > report.peak_concurrent) report.peak_concurrent = held;
      if (config.max_concurrent != 0 && held > config.max_concurrent) {
        violate(report,
                "concurrent holds " + std::to_string(held) +
                    " exceed the scenario bound " +
                    std::to_string(config.max_concurrent) + ": " + describe(e));
      }
    } else {
      ++report.frees;
      const std::uint32_t current = holder[e.name];
      if (current == kNoHolder) {
        violate(report, "free of a name nobody holds (lost release or "
                        "double free): " +
                            describe(e));
        continue;
      }
      if (current != e.thread && e.thread != config.reaper_thread) {
        violate(report, "free by thread " + std::to_string(e.thread) +
                            " of a name held by thread " +
                            std::to_string(current) + ": " + describe(e));
        // Fall through and release anyway: the name is no longer held.
      }
      holder[e.name] = kNoHolder;
      --held;
    }
  }

  report.leaked = held;
  if (config.expect_empty_at_end && held != 0) {
    violate(report, std::to_string(held) +
                        " name(s) still held at quiescence (leaked slots)");
  }
  return report;
}

}  // namespace la::stress
