// Moir-Anderson splitter grid — the classical *deterministic* one-shot
// renaming comparator. A triangular n x n grid of Lamport/MA splitters;
// each process walks right/down until a splitter captures it. Worst-case
// steps grow linearly in n (versus the LevelArray's log log n), namespace
// size n(n+1)/2, memory Theta(n^2) — which is why oneshot_renaming caps
// it at n = 4096.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sync/tas_cell.hpp"

namespace la::arrays {

class SplitterGrid {
 public:
  explicit SplitterGrid(std::uint32_t n);

  SplitterGrid(const SplitterGrid&) = delete;
  SplitterGrid& operator=(const SplitterGrid&) = delete;

  // One-shot acquire for a process with a distinct nonzero id. probes =
  // splitters visited.
  GetResult get(std::uint64_t process_id);

  // n(n+1)/2 — one name per splitter in the triangle.
  std::uint64_t namespace_size() const;

  std::uint32_t contention_bound() const { return n_; }

 private:
  struct Splitter {
    std::atomic<std::uint32_t> x{0};
    std::atomic<std::uint8_t> y{0};
  };

  // Triangular row-major index of splitter (right, down), right+down < n.
  std::size_t index(std::uint32_t right, std::uint32_t down) const;

  std::uint32_t n_;
  std::vector<Splitter> grid_;
  // Safety net only: with <= n one-shot processes the triangle always
  // captures everyone, but a reserved TAS row keeps get() total anyway.
  std::vector<sync::TasCell> overflow_;
};

}  // namespace la::arrays
