// BitmapActivityArray — layout ablation for collect_cost: one bit per
// slot (64 slots per 8-byte word) instead of the LevelArray's one byte
// per slot. Collect scans 8x fewer cache lines; Get pays a CAS-loop on a
// shared word. Random uniform probing, no batch structure — this isolates
// the layout variable, not the algorithm.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "rng/rng.hpp"

namespace la::arrays {

class BitmapActivityArray {
 public:
  BitmapActivityArray(std::uint64_t total_slots, std::uint64_t capacity)
      : total_slots_(total_slots < 2 ? 2 : total_slots),
        capacity_(capacity),
        words_((total_slots_ + 63) / 64) {}

  BitmapActivityArray(const BitmapActivityArray&) = delete;
  BitmapActivityArray& operator=(const BitmapActivityArray&) = delete;

  template <typename Rng>
  GetResult get(Rng& rng) {
    GetResult result;
    for (;;) {
      const std::uint64_t slot = rng::bounded(rng, total_slots_);
      const std::uint64_t mask = std::uint64_t{1} << (slot & 63);
      auto& word = words_[slot >> 6];
      ++result.probes;
      if (word.load(std::memory_order_relaxed) & mask) continue;
      if ((word.fetch_or(mask, std::memory_order_acquire) & mask) == 0) {
        result.name = slot;
        return result;
      }
    }
  }

  void free(std::uint64_t name) {
    if (name >= total_slots_) {
      throw std::out_of_range("BitmapActivityArray::free: name out of range");
    }
    const std::uint64_t mask = std::uint64_t{1} << (name & 63);
    const std::uint64_t prev =
        words_[name >> 6].fetch_and(~mask, std::memory_order_release);
    if ((prev & mask) == 0) {
      throw std::logic_error(
          "BitmapActivityArray::free: slot not held (double free?)");
    }
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    core::slot_scan::for_each_set_bit(words_.data(), words_.size(),
                                      [&](std::uint64_t slot) {
                                        out.push_back(slot);
                                        ++found;
                                      });
    return found;
  }

  std::uint64_t total_slots() const { return total_slots_; }
  std::uint64_t capacity() const { return capacity_; }

  // Checkpoint adoption (src/api/snapshot.hpp): set one bit on restore,
  // keeping the name's numeric identity. Same acquire edge as get()'s
  // winning fetch_or; a bit already set means a duplicate name in the
  // image.
  void adopt_held(std::uint64_t name) {
    if (name >= total_slots_) {
      throw std::out_of_range(
          "BitmapActivityArray::adopt_held: name out of range");
    }
    const std::uint64_t mask = std::uint64_t{1} << (name & 63);
    if (words_[name >> 6].fetch_or(mask, std::memory_order_acquire) & mask) {
      throw std::logic_error(
          "BitmapActivityArray::adopt_held: slot already held "
          "(duplicate name)");
    }
  }

 private:
  std::uint64_t total_slots_;
  std::uint64_t capacity_;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace la::arrays
