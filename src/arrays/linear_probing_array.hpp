// LinearProbing — the paper's second comparison algorithm: one random
// start, then a sequential scan. Cache-friendly per probe, but occupied
// runs cluster (classic linear-probing pile-up), and under arrival bursts
// all losers chase the same cluster edge — the transient burst_contention
// isolates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"
#include "rng/rng.hpp"
#include "sync/tas_cell.hpp"

namespace la::arrays {

class LinearProbingArray {
 public:
  LinearProbingArray(std::uint64_t total_slots, std::uint64_t capacity)
      : capacity_(capacity), slots_(total_slots < 2 ? 2 : total_slots) {}

  LinearProbingArray(const LinearProbingArray&) = delete;
  LinearProbingArray& operator=(const LinearProbingArray&) = delete;

  template <typename Rng>
  GetResult get(Rng& rng) {
    GetResult result;
    for (;;) {
      const std::uint64_t start = rng::bounded(rng, slots_.size());
      for (std::uint64_t i = 0; i < slots_.size(); ++i) {
        std::uint64_t slot = start + i;
        if (slot >= slots_.size()) slot -= slots_.size();
        ++result.probes;
        if (slots_[slot].try_acquire()) {
          result.name = slot;
          return result;
        }
      }
      // Whole array momentarily held: re-randomize the start and retry.
    }
  }

  void free(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range("LinearProbingArray::free: name out of range");
    }
    if (!slots_[name].held()) {
      throw std::logic_error(
          "LinearProbingArray::free: slot not held (double free?)");
    }
    slots_[name].release();
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    for (std::uint64_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].held()) {
        out.push_back(slot);
        ++found;
      }
    }
    return found;
  }

  std::uint64_t total_slots() const { return slots_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  // Checkpoint adoption (src/api/snapshot.hpp): re-seed one held slot on
  // restore, keeping the name's numeric identity.
  void adopt_held(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range(
          "LinearProbingArray::adopt_held: name out of range");
    }
    if (!slots_[name].try_acquire()) {
      throw std::logic_error(
          "LinearProbingArray::adopt_held: slot already held (duplicate name)");
    }
  }

 private:
  std::uint64_t capacity_;
  std::vector<sync::TasCell> slots_;
};

}  // namespace la::arrays
