// SequentialScan — deterministic first-fit from slot 0, the strawman the
// paper leaves off its charts: at load factor f the scan inspects ~fL
// slots per Get, roughly two orders of magnitude above the randomized
// algorithms. The Rng parameter is accepted (and ignored) so the drivers
// can template over array types.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "sync/tas_cell.hpp"

namespace la::arrays {

class SequentialScanArray {
 public:
  SequentialScanArray(std::uint64_t total_slots, std::uint64_t capacity)
      : capacity_(capacity), slots_(total_slots < 2 ? 2 : total_slots) {}

  SequentialScanArray(const SequentialScanArray&) = delete;
  SequentialScanArray& operator=(const SequentialScanArray&) = delete;

  template <typename Rng>
  GetResult get(Rng& rng) {
    (void)rng;
    GetResult result;
    for (;;) {
      for (std::uint64_t slot = 0; slot < slots_.size(); ++slot) {
        ++result.probes;
        if (slots_[slot].held()) continue;
        if (slots_[slot].try_acquire()) {
          result.name = slot;
          return result;
        }
      }
    }
  }

  void free(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range("SequentialScanArray::free: name out of range");
    }
    if (!slots_[name].held()) {
      throw std::logic_error(
          "SequentialScanArray::free: slot not held (double free?)");
    }
    slots_[name].release();
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    core::slot_scan::for_each_held(slots_.data(), slots_.size(),
                                   [&](std::uint64_t slot) {
                                     out.push_back(slot);
                                     ++found;
                                   });
    return found;
  }

  std::uint64_t total_slots() const { return slots_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  // Checkpoint adoption (src/api/snapshot.hpp): re-seed one held slot on
  // restore, keeping the name's numeric identity.
  void adopt_held(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range(
          "SequentialScanArray::adopt_held: name out of range");
    }
    if (!slots_[name].try_acquire()) {
      throw std::logic_error(
          "SequentialScanArray::adopt_held: slot already held "
          "(duplicate name)");
    }
  }

 private:
  std::uint64_t capacity_;
  std::vector<sync::TasCell> slots_;
};

}  // namespace la::arrays
