// IdIndexedArray — the strawman of the paper's footnote 1: index the
// activity array directly by thread id. Get is a single TAS (trivially
// optimal), but the array — and therefore every Collect — scales with the
// size of the id space N rather than the contention bound n. idspace_cost
// measures exactly that gap.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "rng/rng.hpp"
#include "sync/tas_cell.hpp"

namespace la::arrays {

class IdIndexedArray {
 public:
  // `capacity` is the contention bound the harnesses drive against; it is
  // advisory (the id space is the real limit) and defaults to the id
  // space itself.
  explicit IdIndexedArray(std::uint64_t id_space, std::uint64_t capacity = 0)
      : cells_(id_space < 1 ? 1 : id_space),
        capacity_(capacity == 0 ? cells_.size() : capacity) {}

  IdIndexedArray(const IdIndexedArray&) = delete;
  IdIndexedArray& operator=(const IdIndexedArray&) = delete;

  GetResult get_by_id(std::uint64_t id) {
    if (id >= cells_.size()) {
      throw std::out_of_range("IdIndexedArray::get_by_id: id out of range");
    }
    GetResult result;
    result.probes = 1;
    if (!cells_[id].try_acquire()) {
      throw std::logic_error("IdIndexedArray: id already registered");
    }
    result.name = id;
    return result;
  }

  // Renamer-shaped Get for the generic harnesses: an anonymous arrival
  // draws random ids until one is unclaimed. With the id space sized well
  // above the contention bound (footnote 1's regime) this is ~1 probe —
  // the trade the structure embodies is cheap Get against Theta(N)
  // Collect and memory.
  template <typename Rng>
  GetResult get(Rng& rng) {
    GetResult result;
    for (;;) {
      const std::uint64_t id = rng::bounded(rng, cells_.size());
      ++result.probes;
      if (cells_[id].try_acquire()) {
        result.name = id;
        return result;
      }
    }
  }

  void free(std::uint64_t name) {
    if (name >= cells_.size()) {
      throw std::out_of_range("IdIndexedArray::free: name out of range");
    }
    if (!cells_[name].held()) {
      throw std::logic_error(
          "IdIndexedArray::free: id not registered (double free?)");
    }
    cells_[name].release();
  }

  // Theta(N): must scan the entire id space — which is exactly why the
  // 8-slots-per-load engine matters most here.
  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    core::slot_scan::for_each_held(cells_.data(), cells_.size(),
                                   [&](std::uint64_t id) {
                                     out.push_back(id);
                                     ++found;
                                   });
    return found;
  }

  std::uint64_t total_slots() const { return cells_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  // Checkpoint adoption (src/api/snapshot.hpp): re-register one id on
  // restore, keeping the name's numeric identity.
  void adopt_held(std::uint64_t name) {
    if (name >= cells_.size()) {
      throw std::out_of_range("IdIndexedArray::adopt_held: name out of range");
    }
    if (!cells_[name].try_acquire()) {
      throw std::logic_error(
          "IdIndexedArray::adopt_held: id already registered "
          "(duplicate name)");
    }
  }

 private:
  std::vector<sync::TasCell> cells_;
  std::uint64_t capacity_;
};

}  // namespace la::arrays
