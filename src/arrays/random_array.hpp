// Random — the paper's first comparison algorithm: uniformly random
// probes over the whole array until a TAS wins. Expected O(1) probes at
// constant load factor, but the worst case has a long tail under
// contention (no batch structure to cap the retries).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"
#include "rng/rng.hpp"
#include "sync/tas_cell.hpp"

namespace la::arrays {

class RandomArray {
 public:
  RandomArray(std::uint64_t total_slots, std::uint64_t capacity)
      : capacity_(capacity), slots_(total_slots < 2 ? 2 : total_slots) {}

  RandomArray(const RandomArray&) = delete;
  RandomArray& operator=(const RandomArray&) = delete;

  template <typename Rng>
  GetResult get(Rng& rng) {
    GetResult result;
    for (;;) {
      const std::uint64_t slot = rng::bounded(rng, slots_.size());
      ++result.probes;
      if (slots_[slot].try_acquire()) {
        result.name = slot;
        return result;
      }
    }
  }

  void free(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range("RandomArray::free: name out of range");
    }
    if (!slots_[name].held()) {
      throw std::logic_error(
          "RandomArray::free: slot not held (double free?)");
    }
    slots_[name].release();
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    for (std::uint64_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].held()) {
        out.push_back(slot);
        ++found;
      }
    }
    return found;
  }

  std::uint64_t total_slots() const { return slots_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  // Checkpoint adoption (src/api/snapshot.hpp): re-seed one held slot on
  // restore, keeping the name's numeric identity.
  void adopt_held(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range("RandomArray::adopt_held: name out of range");
    }
    if (!slots_[name].try_acquire()) {
      throw std::logic_error(
          "RandomArray::adopt_held: slot already held (duplicate name)");
    }
  }

 private:
  std::uint64_t capacity_;
  std::vector<sync::TasCell> slots_;
};

}  // namespace la::arrays
