#include "arrays/splitter_grid.hpp"

#include <stdexcept>

namespace la::arrays {

SplitterGrid::SplitterGrid(std::uint32_t n) : n_(n < 1 ? 1 : n) {
  // Triangle r + d <= n - 1: row d holds n - d splitters.
  const std::size_t cells =
      static_cast<std::size_t>(n_) * (static_cast<std::size_t>(n_) + 1) / 2;
  grid_ = std::vector<Splitter>(cells);
  overflow_ = std::vector<sync::TasCell>(n_);
}

std::size_t SplitterGrid::index(std::uint32_t right, std::uint32_t down) const {
  // Row d starts after rows 0..d-1, which hold n + (n-1) + ... + (n-d+1)
  // = d*n - d(d-1)/2 splitters.
  const auto d = static_cast<std::size_t>(down);
  return d * n_ - d * (d - 1) / 2 + right;
}

GetResult SplitterGrid::get(std::uint64_t process_id) {
  GetResult result;
  const auto id = static_cast<std::uint32_t>(process_id);
  std::uint32_t right = 0;
  std::uint32_t down = 0;
  while (right + down < n_) {
    Splitter& s = grid_[index(right, down)];
    ++result.probes;
    s.x.store(id, std::memory_order_release);
    if (s.y.load(std::memory_order_acquire) != 0) {
      ++right;
      continue;
    }
    s.y.store(1, std::memory_order_release);
    if (s.x.load(std::memory_order_acquire) == id) {
      // Captured: name the splitter by its diagonal, so names across the
      // triangle are distinct and bounded by n(n+1)/2.
      const std::uint64_t diag = right + down;
      result.name = diag * (diag + 1) / 2 + down + 1;
      return result;
    }
    ++down;
  }
  // Unreachable with <= n one-shot processes (the MA depth argument), but
  // stay total: fall back to a reserved TAS row.
  result.used_backup = true;
  for (std::uint32_t i = 0; i < n_; ++i) {
    ++result.probes;
    if (overflow_[i].try_acquire()) {
      result.name = namespace_size() + i + 1;
      return result;
    }
  }
  throw std::runtime_error("SplitterGrid: more than n concurrent processes");
}

std::uint64_t SplitterGrid::namespace_size() const {
  return static_cast<std::uint64_t>(n_) * (n_ + 1) / 2;
}

}  // namespace la::arrays
