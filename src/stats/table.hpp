// Table — the shared report sink: aligned text for terminals, CSV for
// plotting pipelines. Cells are uint64 / double / string; benches are
// expected to pass exactly those types (the variant is deliberately
// narrow so ambiguous integer widths fail at compile time instead of
// printing wrong columns).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace la::stats {

class Table {
 public:
  using Cell = std::variant<std::uint64_t, double, std::string>;

  explicit Table(std::vector<std::string> headers, int precision = 3);

  void add_row(std::vector<Cell> cells);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string format_cell(const Cell& cell, bool csv) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace la::stats
