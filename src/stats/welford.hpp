// Welford's online mean/variance, plus running min/max. Numerically
// stable across the billion-sample runs longrun_stability targets.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace la::stats {

class Welford {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  // Sample variance / standard deviation.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace la::stats
