// TrialStats — the per-Get probe-count ("number of trials") aggregate
// every bench reports: mean, stddev, worst case, tail percentiles, and
// the full histogram. Probe counts are small integers (the whole point of
// the paper), so an exact histogram is cheaper and more faithful than any
// sketch. Mergeable across threads / trial chunks.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace la::stats {

class TrialStats {
 public:
  void record(std::uint64_t probes) {
    if (probes >= counts_.size()) {
      counts_.resize(static_cast<std::size_t>(probes) + 1, 0);
    }
    ++counts_[static_cast<std::size_t>(probes)];
    ++operations_;
    sum_ += probes;
    sum_sq_ += static_cast<double>(probes) * static_cast<double>(probes);
    if (probes > worst_) worst_ = probes;
  }

  void merge(const TrialStats& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    operations_ += other.operations_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    if (other.worst_ > worst_) worst_ = other.worst_;
  }

  std::uint64_t operations() const { return operations_; }
  std::uint64_t worst_case() const { return worst_; }

  double average() const {
    return operations_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(operations_);
  }

  double stddev() const {
    if (operations_ < 2) return 0.0;
    const double n = static_cast<double>(operations_);
    const double mean = static_cast<double>(sum_) / n;
    const double var = (sum_sq_ - n * mean * mean) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  double percentile(double q) const {
    if (operations_ == 0) return 0.0;
    const double target = q * static_cast<double>(operations_);
    std::uint64_t cumulative = 0;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
      cumulative += counts_[v];
      if (static_cast<double>(cumulative) >= target) {
        return static_cast<double>(v);
      }
    }
    return static_cast<double>(worst_);
  }

  double p99() const { return percentile(0.99); }
  double p999() const { return percentile(0.999); }

  // Exact histogram, indexed by probe count, sized worst_case() + 1.
  std::vector<std::uint64_t> histogram() const {
    std::vector<std::uint64_t> h(counts_.begin(),
                                 counts_.begin() + static_cast<std::ptrdiff_t>(
                                                       hist_size()));
    h.resize(static_cast<std::size_t>(worst_) + 1, 0);
    return h;
  }

 private:
  std::size_t hist_size() const {
    const auto want = static_cast<std::size_t>(worst_) + 1;
    return want < counts_.size() ? want : counts_.size();
  }

  std::vector<std::uint64_t> counts_;
  std::uint64_t operations_ = 0;
  std::uint64_t sum_ = 0;
  double sum_sq_ = 0.0;
  std::uint64_t worst_ = 0;
};

}  // namespace la::stats
