#include "stats/table.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace la::stats {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: expected " +
                                std::to_string(headers_.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell, bool csv) const {
  if (const auto* u = std::get_if<std::uint64_t>(&cell)) {
    return std::to_string(*u);
  }
  if (const auto* d = std::get_if<double>(&cell)) {
    char buf[64];
    const double v = *d;
    // Tiny-but-nonzero values (probability bounds, reach fractions) would
    // round to 0 at fixed precision; fall back to scientific for those.
    if (v != 0.0 && std::fabs(v) < std::pow(10.0, -precision_)) {
      std::snprintf(buf, sizeof(buf), "%.*e", precision_, v);
    } else {
      std::snprintf(buf, sizeof(buf), "%.*f", precision_, v);
    }
    return buf;
  }
  const auto& s = std::get<std::string>(cell);
  if (!csv) return s;
  // Minimal CSV quoting.
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (const char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c], /*csv=*/false));
      if (cells.back().size() > widths[c]) widths[c] = cells.back().size();
    }
    formatted.push_back(std::move(cells));
  }

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      // Right-align; fixed-width columns line decimal points up well
      // enough for eyeballing sweeps.
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << cells[c];
    }
    os << '\n';
  };

  emit(headers_);
  for (const auto& cells : formatted) emit(cells);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(format_cell(cell, true));
    emit(cells);
  }
}

}  // namespace la::stats
