// Analysis-side quantities from the paper, used by the simulated
// (single-stepped, oblivious-adversary) benches:
//
//   * loglog_batches(n)          — the O(log log n) batch budget of Thm 1.
//   * reach_probability_bound(k) — Definition 1 (regularity): pi_k, an
//     upper bound on the probability that a Get reaches batch k, valid
//     for the analysis constants c_i >= 16.
//   * overcrowding_threshold / evaluate_balance — Definition 2 /
//     Proposition 3 (balance): a batch k >= 1 is overcrowded when it is
//     at least half full. Batch 0 is exempt (it is sized 3n/2 precisely
//     to hold the bulk), as are batches with fewer than 16 slots, whose
//     occupancy is noise-dominated.
#pragma once

#include <cstdint>
#include <vector>

namespace la::sim {

// Number of batches the analysis tracks: ceil(log2 log2 n).
std::uint32_t loglog_batches(std::uint64_t n);

// Definition 1: pi_k = 2^-(2^k - 1), the regularity bound on the fraction
// of Gets that reach batch k (c_i >= 16 required for the bound to apply).
double reach_probability_bound(std::uint32_t batch);

// Definition 2 (calibrated): the minimum occupant count at which batch k
// of a capacity-n LevelArray (default geometry, L = 2n) counts as
// overcrowded. ceil(batch_size / 2) for k >= 1; batch 0 is never
// overcrowded, so its threshold is its full size.
std::uint64_t overcrowding_threshold(std::uint32_t batch,
                                     std::uint64_t capacity);

struct BalanceReport {
  std::vector<std::uint8_t> overcrowded;  // per batch, 1 = overcrowded

  bool fully_balanced() const {
    for (const auto flag : overcrowded) {
      if (flag != 0) return false;
    }
    return true;
  }
};

// Applies the Definition 2 thresholds to a batch_occupancy() snapshot of
// a capacity-n LevelArray with the default L = 2n geometry.
BalanceReport evaluate_balance(const std::vector<std::uint64_t>& occupancy,
                               std::uint64_t capacity);

}  // namespace la::sim
