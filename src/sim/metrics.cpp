#include "sim/metrics.hpp"

#include <cmath>

#include "core/geometry.hpp"

namespace la::sim {
namespace {

// Batches this small are noise-dominated (a couple of occupants flips
// them across the 50% line); the backup sweep absorbs their overflow.
constexpr std::uint64_t kMinTrackedBatchSlots = 16;

std::uint32_t ceil_log2(std::uint64_t v) {
  std::uint32_t bits = 0;
  std::uint64_t pow = 1;
  while (pow < v) {
    pow <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

std::uint32_t loglog_batches(std::uint64_t n) {
  if (n < 4) n = 4;
  return ceil_log2(ceil_log2(n));
}

double reach_probability_bound(std::uint32_t batch) {
  if (batch == 0) return 1.0;
  const double exponent =
      batch < 63 ? static_cast<double>((std::uint64_t{1} << batch) - 1)
                 : 9.0e18;
  return std::pow(2.0, -exponent);
}

std::uint64_t overcrowding_threshold(std::uint32_t batch,
                                     std::uint64_t capacity) {
  const core::Geometry geometry(capacity < 1 ? 2 : 2 * capacity);
  if (batch >= geometry.num_batches()) return 0;
  const std::uint64_t size = geometry.batch(batch).size();
  if (batch == 0) return size;
  return (size + 1) / 2;
}

BalanceReport evaluate_balance(const std::vector<std::uint64_t>& occupancy,
                               std::uint64_t capacity) {
  const core::Geometry geometry(capacity < 1 ? 2 : 2 * capacity);
  BalanceReport report;
  report.overcrowded.assign(occupancy.size(), 0);
  for (std::uint32_t k = 1;
       k < occupancy.size() && k < geometry.num_batches(); ++k) {
    const std::uint64_t size = geometry.batch(k).size();
    if (size < kMinTrackedBatchSlots) continue;
    if (occupancy[k] >= (size + 1) / 2) report.overcrowded[k] = 1;
  }
  return report;
}

}  // namespace la::sim
