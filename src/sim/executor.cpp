#include "sim/executor.hpp"

namespace la::sim {

Schedule Schedule::uniform_random(std::uint32_t n, std::size_t steps,
                                  std::uint64_t seed) {
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0x5EDu));
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    order.push_back(static_cast<std::uint32_t>(rng::bounded(rng, n)));
  }
  return Schedule(std::move(order));
}

Schedule Schedule::round_robin(std::uint32_t n, std::size_t steps) {
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    order.push_back(static_cast<std::uint32_t>(i % n));
  }
  return Schedule(std::move(order));
}

Schedule Schedule::bursty(std::uint32_t n, std::size_t steps,
                          std::uint32_t burst, std::uint64_t seed) {
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0xB5157u));
  if (burst == 0) burst = 1;
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  while (order.size() < steps) {
    const auto pid = static_cast<std::uint32_t>(rng::bounded(rng, n));
    for (std::uint32_t i = 0; i < burst && order.size() < steps; ++i) {
      order.push_back(pid);
    }
  }
  return Schedule(std::move(order));
}

Schedule Schedule::skewed(std::uint32_t n, std::size_t steps, double exponent,
                          std::uint64_t seed) {
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0x51CE3Du));
  const rng::ZipfTable table(n, exponent);
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    order.push_back(table.draw(rng));
  }
  return Schedule(std::move(order));
}

}  // namespace la::sim
