#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace la::sim {

Schedule Schedule::uniform_random(std::uint32_t n, std::size_t steps,
                                  std::uint64_t seed) {
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0x5EDu));
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    order.push_back(static_cast<std::uint32_t>(rng::bounded(rng, n)));
  }
  return Schedule(std::move(order));
}

Schedule Schedule::round_robin(std::uint32_t n, std::size_t steps) {
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    order.push_back(static_cast<std::uint32_t>(i % n));
  }
  return Schedule(std::move(order));
}

Schedule Schedule::bursty(std::uint32_t n, std::size_t steps,
                          std::uint32_t burst, std::uint64_t seed) {
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0xB5157u));
  if (burst == 0) burst = 1;
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  while (order.size() < steps) {
    const auto pid = static_cast<std::uint32_t>(rng::bounded(rng, n));
    for (std::uint32_t i = 0; i < burst && order.size() < steps; ++i) {
      order.push_back(pid);
    }
  }
  return Schedule(std::move(order));
}

Schedule Schedule::skewed(std::uint32_t n, std::size_t steps, double exponent,
                          std::uint64_t seed) {
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0x51CE3Du));
  // Zipf via inverse-CDF over the cumulative weight table.
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i) + 1.0, exponent);
    cumulative[i] = total;
  }
  std::vector<std::uint32_t> order;
  order.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double u = rng::canonical(rng) * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    order.push_back(
        static_cast<std::uint32_t>(it - cumulative.begin()));
  }
  return Schedule(std::move(order));
}

Executor::Executor(ExecutorOptions options, std::vector<ProcessInput> inputs,
                   Schedule schedule)
    : options_(std::move(options)),
      array_(options_.config),
      schedule_(std::move(schedule)),
      reach_counts_(array_.geometry().num_batches(), 0) {
  // A Get on a full array spins forever in this single-threaded
  // simulation (nobody else can free), so reject inputs whose worst-case
  // concurrent demand exceeds the slot count up front.
  std::uint64_t peak_demand = 0;
  for (const auto& input : inputs) peak_demand += input.holds();
  if (peak_demand > array_.total_slots()) {
    throw std::invalid_argument(
        "Executor: aggregate holds (" + std::to_string(peak_demand) +
        ") exceed the array's " + std::to_string(array_.total_slots()) +
        " slots");
  }
  processes_.reserve(inputs.size());
  for (std::size_t pid = 0; pid < inputs.size(); ++pid) {
    processes_.emplace_back(inputs[pid],
                            rng::mix_seed(options_.seed, pid));
  }
}

void Executor::step(std::uint32_t pid) {
  if (pid >= processes_.size()) return;
  Process& p = processes_[pid];
  if (p.done) return;

  if (p.acquiring) {
    const GetResult r = array_.get(p.rng);
    get_stats_.record(r.probes);
    ++completed_gets_;
    if (r.used_backup) ++backup_gets_;
    for (std::uint32_t k = 0;
         k <= r.deepest_batch && k < reach_counts_.size(); ++k) {
      ++reach_counts_[k];
    }
    p.held.push_back(r.name);
    if (p.held.size() >= p.input.holds()) {
      if (p.input.frees()) {
        p.acquiring = false;
      } else {
        // One-shot style: names stay held; the round (and tape) ends.
        --p.rounds_left;
        if (p.rounds_left == 0) {
          p.done = true;
          ++done_count_;
        }
      }
    }
  } else {
    array_.free(p.held.back());
    p.held.pop_back();
    if (p.held.empty()) {
      p.acquiring = true;
      --p.rounds_left;
      if (p.rounds_left == 0) {
        p.done = true;
        ++done_count_;
      }
    }
  }
}

void Executor::run() {
  std::uint64_t steps_done = 0;
  for (const auto pid : schedule_.order()) {
    if (done_count_ == processes_.size()) break;
    step(pid);
    ++steps_done;
    if (observer_ && steps_done % observe_every_ == 0) {
      observer_(*this);
    }
  }
}

}  // namespace la::sim
