// Simulated executions against an oblivious adversary: n emulated
// processes, each with a tape of Get/Free work, advanced one atomic
// operation at a time in an order fixed by a Schedule *before* the random
// probe choices are drawn — exactly the adversary model of the paper's
// analysis. This is the theory-side harness (balance_check,
// oneshot_renaming); the wall-clock benches use real threads via
// bench_util instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "sim/metrics.hpp"
#include "stats/summary.hpp"

namespace la::sim {

struct ExecutorOptions {
  core::LevelArrayConfig config;
  std::uint64_t seed = 1;
};

// What one emulated process does over its lifetime.
class ProcessInput {
 public:
  // Exactly one Get, never freed — the Broder-Karlin one-shot setting.
  static ProcessInput one_shot() { return ProcessInput(1, 1, false); }

  // `rounds` rounds of (acquire `holds` names, then free them all).
  static ProcessInput churn(std::uint64_t rounds, std::uint64_t holds) {
    return ProcessInput(rounds == 0 ? 1 : rounds, holds == 0 ? 1 : holds,
                        true);
  }

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t holds() const { return holds_; }
  bool frees() const { return frees_; }

 private:
  ProcessInput(std::uint64_t rounds, std::uint64_t holds, bool frees)
      : rounds_(rounds), holds_(holds), frees_(frees) {}

  std::uint64_t rounds_;
  std::uint64_t holds_;
  bool frees_;
};

// A fixed order of process activations — the oblivious adversary's move,
// committed before any coin flips.
class Schedule {
 public:
  static Schedule uniform_random(std::uint32_t n, std::size_t steps,
                                 std::uint64_t seed);
  static Schedule round_robin(std::uint32_t n, std::size_t steps);
  // One random process runs `burst` consecutive steps, then the adversary
  // picks again.
  static Schedule bursty(std::uint32_t n, std::size_t steps,
                         std::uint32_t burst, std::uint64_t seed);
  // Zipf(exponent) over process ids: a few processes hog the schedule.
  static Schedule skewed(std::uint32_t n, std::size_t steps, double exponent,
                         std::uint64_t seed);

  const std::vector<std::uint32_t>& order() const { return order_; }

 private:
  explicit Schedule(std::vector<std::uint32_t> order)
      : order_(std::move(order)) {}

  std::vector<std::uint32_t> order_;
};

class Executor {
 public:
  Executor(ExecutorOptions options, std::vector<ProcessInput> inputs,
           Schedule schedule);

  void run();

  std::uint64_t completed_gets() const { return completed_gets_; }
  std::uint64_t backup_gets() const { return backup_gets_; }
  const stats::TrialStats& get_stats() const { return get_stats_; }
  const core::LevelArray& array() const { return array_; }

  // reach_counts()[k] = number of completed Gets whose probe sequence
  // reached batch k (so [0] counts every Get).
  const std::vector<std::uint64_t>& reach_counts() const {
    return reach_counts_;
  }

  BalanceReport balance() const {
    return evaluate_balance(array_.batch_occupancy(),
                            options_.config.capacity);
  }

  // Invoke fn(*this) every `every` schedule steps while running.
  void set_step_observer(std::function<void(const Executor&)> fn,
                         std::uint64_t every) {
    observer_ = std::move(fn);
    observe_every_ = every == 0 ? 1 : every;
  }

 private:
  struct Process {
    explicit Process(const ProcessInput& in, std::uint64_t seed)
        : input(in), rng(seed), rounds_left(in.rounds()) {}

    ProcessInput input;
    rng::MarsagliaXorshift rng;
    std::uint64_t rounds_left;
    std::vector<std::uint64_t> held;
    bool acquiring = true;
    bool done = false;
  };

  void step(std::uint32_t pid);

  ExecutorOptions options_;
  core::LevelArray array_;
  Schedule schedule_;
  std::vector<Process> processes_;
  std::uint64_t done_count_ = 0;

  stats::TrialStats get_stats_;
  std::uint64_t completed_gets_ = 0;
  std::uint64_t backup_gets_ = 0;
  std::vector<std::uint64_t> reach_counts_;

  std::function<void(const Executor&)> observer_;
  std::uint64_t observe_every_ = 1;
};

}  // namespace la::sim
