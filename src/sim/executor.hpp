// Simulated executions against an oblivious adversary: n emulated
// processes, each with a tape of Get/Free work, advanced one atomic
// operation at a time in an order fixed by a Schedule *before* the random
// probe choices are drawn — exactly the adversary model of the paper's
// analysis. This is the theory-side harness (balance_check,
// oneshot_renaming); the wall-clock benches use real threads via
// bench_util instead.
//
// BasicExecutor is templated over any structure satisfying the
// api::Renamer contract, so every registered comparison structure can be
// studied under the same adversarial Schedule. The caller owns the
// structure (construct it directly or through api::visit) and the
// executor steps it; the paper's balance metrics are available whenever
// the structure exposes the batch-occupancy introspection surface.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/renamer.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "sim/metrics.hpp"
#include "stats/summary.hpp"

namespace la::sim {

// What one emulated process does over its lifetime.
class ProcessInput {
 public:
  // Exactly one Get, never freed — the Broder-Karlin one-shot setting.
  static ProcessInput one_shot() { return ProcessInput(1, 1, false); }

  // `rounds` rounds of (acquire `holds` names, then free them all).
  static ProcessInput churn(std::uint64_t rounds, std::uint64_t holds) {
    return ProcessInput(rounds == 0 ? 1 : rounds, holds == 0 ? 1 : holds,
                        true);
  }

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t holds() const { return holds_; }
  bool frees() const { return frees_; }

 private:
  ProcessInput(std::uint64_t rounds, std::uint64_t holds, bool frees)
      : rounds_(rounds), holds_(holds), frees_(frees) {}

  std::uint64_t rounds_;
  std::uint64_t holds_;
  bool frees_;
};

// A fixed order of process activations — the oblivious adversary's move,
// committed before any coin flips. Copyable, so the identical order can
// be replayed against several structures.
class Schedule {
 public:
  static Schedule uniform_random(std::uint32_t n, std::size_t steps,
                                 std::uint64_t seed);
  static Schedule round_robin(std::uint32_t n, std::size_t steps);
  // One random process runs `burst` consecutive steps, then the adversary
  // picks again.
  static Schedule bursty(std::uint32_t n, std::size_t steps,
                         std::uint32_t burst, std::uint64_t seed);
  // Zipf(exponent) over process ids: a few processes hog the schedule.
  static Schedule skewed(std::uint32_t n, std::size_t steps, double exponent,
                         std::uint64_t seed);

  const std::vector<std::uint32_t>& order() const { return order_; }

 private:
  explicit Schedule(std::vector<std::uint32_t> order)
      : order_(std::move(order)) {}

  std::vector<std::uint32_t> order_;
};

// One executed operation of a simulated run: which process moved and what
// it did. The sequence of StepRecords is a function of the Schedule and
// the ProcessInput tapes alone — every Get returns exactly one name, so
// the process state machine advances identically no matter which names a
// structure hands out. Replaying one committed Schedule against two
// different structures therefore yields the same record sequence
// (test_schedule_replay pins this down).
struct StepRecord {
  std::uint32_t pid = 0;
  bool get = false;  // false = Free
};

inline bool operator==(const StepRecord& a, const StepRecord& b) {
  return a.pid == b.pid && a.get == b.get;
}
inline bool operator!=(const StepRecord& a, const StepRecord& b) {
  return !(a == b);
}

template <typename Structure>
class BasicExecutor {
  static_assert(api::is_renamer_v<Structure>,
                "BasicExecutor requires the api::Renamer contract");

 public:
  BasicExecutor(Structure& array, std::uint64_t seed,
                std::vector<ProcessInput> inputs, Schedule schedule)
      : array_(&array), schedule_(std::move(schedule)) {
    // A Get on a full array spins forever in this single-threaded
    // simulation (nobody else can free), so reject inputs whose
    // worst-case concurrent demand exceeds the slot count up front.
    std::uint64_t peak_demand = 0;
    for (const auto& input : inputs) peak_demand += input.holds();
    if (peak_demand > array_->total_slots()) {
      throw std::invalid_argument(
          "Executor: aggregate holds (" + std::to_string(peak_demand) +
          ") exceed the array's " + std::to_string(array_->total_slots()) +
          " slots");
    }
    if constexpr (api::has_batch_occupancy_v<Structure>) {
      reach_counts_.assign(array_->batch_occupancy().size(), 0);
    } else {
      reach_counts_.assign(1, 0);  // [0] still counts every Get
    }
    processes_.reserve(inputs.size());
    for (std::size_t pid = 0; pid < inputs.size(); ++pid) {
      processes_.emplace_back(inputs[pid], rng::mix_seed(seed, pid));
    }
  }

  void run() {
    std::uint64_t steps_done = 0;
    for (const auto pid : schedule_.order()) {
      if (done_count_ == processes_.size()) break;
      step(pid);
      ++steps_done;
      if (observer_ && steps_done % observe_every_ == 0) {
        observer_(*this);
      }
    }
  }

  std::uint64_t completed_gets() const { return completed_gets_; }
  std::uint64_t backup_gets() const { return backup_gets_; }
  const stats::TrialStats& get_stats() const { return get_stats_; }
  const Structure& array() const { return *array_; }

  // reach_counts()[k] = number of completed Gets whose probe sequence
  // reached batch k (so [0] counts every Get). Structures without a batch
  // partition only populate [0].
  const std::vector<std::uint64_t>& reach_counts() const {
    return reach_counts_;
  }

  // Definition 2 balance of the current occupancy snapshot. Only callable
  // for structures exposing the batch-occupancy introspection surface.
  BalanceReport balance() const {
    static_assert(api::has_batch_occupancy_v<Structure>,
                  "balance() needs the batch_occupancy() surface");
    return evaluate_balance(array_->batch_occupancy(), array_->capacity());
  }

  // Invoke fn(*this) every `every` schedule steps while running.
  void set_step_observer(std::function<void(const BasicExecutor&)> fn,
                         std::uint64_t every) {
    observer_ = std::move(fn);
    observe_every_ = every == 0 ? 1 : every;
  }

  // Append one StepRecord per *executed* operation to `out` (activations
  // of finished processes execute nothing and are not recorded). The
  // caller owns the vector; pass nullptr to stop recording.
  void set_step_recorder(std::vector<StepRecord>* out) { recorder_ = out; }

 private:
  struct Process {
    explicit Process(const ProcessInput& in, std::uint64_t seed)
        : input(in), rng(seed), rounds_left(in.rounds()) {}

    ProcessInput input;
    rng::MarsagliaXorshift rng;
    std::uint64_t rounds_left;
    std::vector<std::uint64_t> held;
    bool acquiring = true;
    bool done = false;
  };

  void step(std::uint32_t pid) {
    if (pid >= processes_.size()) return;
    Process& p = processes_[pid];
    if (p.done) return;

    if (recorder_) recorder_->push_back({pid, p.acquiring});
    if (p.acquiring) {
      const GetResult r = array_->get(p.rng);
      get_stats_.record(r.probes);
      ++completed_gets_;
      if (r.used_backup) ++backup_gets_;
      for (std::uint32_t k = 0;
           k <= r.deepest_batch && k < reach_counts_.size(); ++k) {
        ++reach_counts_[k];
      }
      p.held.push_back(r.name);
      if (p.held.size() >= p.input.holds()) {
        if (p.input.frees()) {
          p.acquiring = false;
        } else {
          // One-shot style: names stay held; the round (and tape) ends.
          --p.rounds_left;
          if (p.rounds_left == 0) {
            p.done = true;
            ++done_count_;
          }
        }
      }
    } else {
      array_->free(p.held.back());
      p.held.pop_back();
      if (p.held.empty()) {
        p.acquiring = true;
        --p.rounds_left;
        if (p.rounds_left == 0) {
          p.done = true;
          ++done_count_;
        }
      }
    }
  }

  Structure* array_;
  Schedule schedule_;
  std::vector<Process> processes_;
  std::uint64_t done_count_ = 0;

  stats::TrialStats get_stats_;
  std::uint64_t completed_gets_ = 0;
  std::uint64_t backup_gets_ = 0;
  std::vector<std::uint64_t> reach_counts_;

  std::function<void(const BasicExecutor&)> observer_;
  std::uint64_t observe_every_ = 1;
  std::vector<StepRecord>* recorder_ = nullptr;
};

// The historical name: the executor specialized to the paper's structure.
using Executor = BasicExecutor<core::LevelArray>;

}  // namespace la::sim
