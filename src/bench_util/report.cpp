#include "bench_util/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace la::bench {
namespace {

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string render_double(double value) {
  // JSON has no NaN/Inf; null keeps the document parseable and makes the
  // bad measurement impossible to mistake for a real zero.
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace

JsonObject& JsonObject::set_rendered(std::string key, std::string rendered) {
  for (const auto& [existing, value] : fields_) {
    if (existing == key) {
      throw std::logic_error("BenchReport: duplicate JSON key: " + key);
    }
  }
  fields_.emplace_back(std::move(key), std::move(rendered));
  return *this;
}

JsonObject& JsonObject::set(std::string key, std::string_view value) {
  return set_rendered(std::move(key), quote(value));
}

JsonObject& JsonObject::set(std::string key, const char* value) {
  return set(std::move(key), std::string_view(value));
}

JsonObject& JsonObject::set(std::string key, std::uint64_t value) {
  return set_rendered(std::move(key), std::to_string(value));
}

JsonObject& JsonObject::set(std::string key, std::uint32_t value) {
  return set(std::move(key), static_cast<std::uint64_t>(value));
}

JsonObject& JsonObject::set(std::string key, int value) {
  return set_rendered(std::move(key), std::to_string(value));
}

JsonObject& JsonObject::set(std::string key, double value) {
  return set_rendered(std::move(key), render_double(value));
}

JsonObject& JsonObject::set(std::string key, bool value) {
  return set_rendered(std::move(key), value ? "true" : "false");
}

JsonObject& JsonObject::set_object(std::string key, const JsonObject& value) {
  return set_rendered(std::move(key), value.render());
}

std::string JsonObject::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += quote(fields_[i].first);
    out += ": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

JsonObject probe_stats_json(const stats::TrialStats& trials) {
  JsonObject out;
  out.set("operations", trials.operations())
      .set("avg", trials.average())
      .set("stddev", trials.stddev())
      .set("worst", trials.worst_case())
      .set("p99", trials.p99())
      .set("p999", trials.p999());
  return out;
}

const std::string& git_describe() {
  static const std::string described = [] {
    std::string out = "unknown";
#if !defined(_WIN32)
    if (FILE* pipe =
            ::popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128];
      if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
        std::string line(buf);
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        if (!line.empty()) out = line;
      }
      ::pclose(pipe);
    }
#endif
    return out;
  }();
  return described;
}

BenchReport::BenchReport(std::string bench_name)
    : bench_(std::move(bench_name)) {}

JsonObject& BenchReport::add_run() {
  runs_.emplace_back();
  return runs_.back();
}

std::string BenchReport::render() const {
  std::string out = "{\n";
  out += "  \"schema\": \"levelarray-bench-v1\",\n";
  out += "  \"bench\": " + quote(bench_) + ",\n";
  out += "  \"git\": " + quote(git_describe()) + ",\n";
  out += "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    out += "    " + runs_[i].render();
    if (i + 1 != runs_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchReport::write_file(const std::string& path,
                             std::ostream& err) const {
  std::ofstream file(path);
  if (!file) {
    err << bench_ << ": cannot open --json path " << path << "\n";
    return false;
  }
  file << render();
  file.flush();
  if (!file) {
    err << bench_ << ": failed writing --json path " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace la::bench
