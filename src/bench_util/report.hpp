// Machine-readable bench output: every bench that takes --json=<path>
// writes one BenchReport — a flat, insertion-ordered JSON document — so
// the perf trajectory is comparable PR-over-PR (BENCH_*.json at the repo
// root, CI artifacts) instead of living in scrollback tables.
//
// Schema ("levelarray-bench-v1"):
//   {
//     "schema": "levelarray-bench-v1",
//     "bench":  "<driver name>",
//     "git":    "<git describe --always --dirty, or 'unknown'>",
//     "runs": [
//       {
//         "structure": "<registry key>", "rng": "<rng kind>",
//         "threads": N, "config": { ...driver-specific knobs... },
//         "ops_per_sec": X, ...driver-specific measurements...,
//         "probes": {"operations", "avg", "stddev", "worst", "p99", "p999"}
//       }, ...
//     ]
//   }
// Drivers own the per-run keys beyond the conventional ones above; the
// bench-smoke tier (scripts/check.sh) asserts the document parses and
// every run's ops_per_sec is nonzero.
//
// No external JSON dependency: values are rendered on insertion, so the
// writer is ~100 lines and emits deterministic key order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/summary.hpp"

namespace la::bench {

// One JSON object with insertion-ordered keys. Scalars are rendered
// immediately; nested objects come in via set_object(). A repeated key is
// a driver bug and throws.
class JsonObject {
 public:
  JsonObject& set(std::string key, std::string_view value);
  JsonObject& set(std::string key, const char* value);
  JsonObject& set(std::string key, std::uint64_t value);
  JsonObject& set(std::string key, std::uint32_t value);
  JsonObject& set(std::string key, int value);
  JsonObject& set(std::string key, double value);  // non-finite -> null
  JsonObject& set(std::string key, bool value);
  JsonObject& set_object(std::string key, const JsonObject& value);

  std::string render() const;

 private:
  JsonObject& set_rendered(std::string key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

// The conventional "probes" sub-object for a run.
JsonObject probe_stats_json(const stats::TrialStats& trials);

// `git describe --always --dirty`, cached per process; "unknown" when the
// bench runs outside a work tree (e.g. from an installed artifact).
const std::string& git_describe();

// One bench invocation's report: add_run() per measured point, then
// write_file() once at the end.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  JsonObject& add_run();
  std::size_t run_count() const { return runs_.size(); }

  std::string render() const;
  // Returns false (after explaining on err) if the file cannot be
  // written — benches turn that into a nonzero exit so CI notices.
  bool write_file(const std::string& path, std::ostream& err) const;

 private:
  std::string bench_;
  std::vector<JsonObject> runs_;
};

}  // namespace la::bench
