// The real-thread churn driver behind the Figure 2 family of benches.
// The workload follows the paper's §6 methodology: each of n threads
// emulates `mult` registrants (N = n*mult total), the array holds
// L = size_factor * N slots, a prefill fraction is registered up front,
// and the main loop is back-to-back Free+Get churn — either for a fixed
// op count (reproducible trial metrics) or a fixed wall-clock window
// (throughput).
//
// Structures are addressed by their api::registry name (or alias), so
// every registered Renamer — not a hard-coded enum — can be driven, under
// any of the registered probe RNGs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/renamer.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"

namespace la::bench {

struct DriverConfig {
  std::uint32_t threads = 1;
  std::uint64_t emulation_multiplier = 1000;  // registrants per thread
  double prefill = 0.5;                       // fraction of N held up front
  // Individual Get and Free operations per thread (a churn iteration
  // performs two), matching the paper's register/unregister accounting.
  // 0 = timed mode.
  std::uint64_t ops_per_thread = 0;
  double seconds = 0.0;                       // window for timed mode
  std::uint64_t seed = 42;
  // Probe RNG for the prefill and churn loops (paper §6 ablates this).
  rng::RngKind rng_kind = rng::RngKind::kMarsaglia;

  std::uint64_t emulated_registrants() const {
    return static_cast<std::uint64_t>(threads) * emulation_multiplier;
  }
};

struct SweepPoint {
  DriverConfig driver;
  double size_factor = 2.0;                    // L = size_factor * N
  std::vector<std::uint8_t> probes_per_batch;  // empty = LevelArray default
};

struct RunResult {
  stats::TrialStats trials;          // probes per main-loop Get, all threads
  std::uint64_t total_ops = 0;       // Gets + Frees completed in the loop
  double elapsed_seconds = 0.0;
  double throughput_ops_per_sec = 0.0;
  double mean_per_thread_worst = 0.0;  // worst case averaged over threads
  std::uint64_t backup_gets = 0;
};

// Canonical registry key for a structure name or alias; throws
// std::invalid_argument listing every accepted spelling (registry-derived).
std::string parse_algo(const std::string& name);

// Display label for a canonical registry key.
std::string_view algo_name(const std::string& canonical);

// Resolve a --algo list: expands "all" to every registered structure and
// canonicalizes names/aliases.
std::vector<std::string> expand_algos(const std::vector<std::string>& names);

// The api::RenamerConfig describing this sweep point (shared by benches
// that call api::visit directly).
api::RenamerConfig renamer_config(const SweepPoint& point);

// Build the structure registered under `name_or_alias` from `point` and
// run the churn workload under point.driver.rng_kind.
RunResult run_algo(const std::string& name_or_alias, const SweepPoint& point);

// Same workload against a caller-owned persistent LevelArray (longrun
// accumulates worst-case stats across chunks this way), honoring
// driver.rng_kind.
RunResult run_churn(core::LevelArray& array, const DriverConfig& driver);

}  // namespace la::bench
