// The real-thread churn driver behind the Figure 2 family of benches.
// The workload follows the paper's §6 methodology: each of n threads
// emulates `mult` registrants (N = n*mult total), the array holds
// L = size_factor * N slots, a prefill fraction is registered up front,
// and the main loop is back-to-back Free+Get churn — either for a fixed
// op count (reproducible trial metrics) or a fixed wall-clock window
// (throughput).
//
// Structures are addressed by their api::registry name (or alias), so
// every registered Renamer — not a hard-coded enum — can be driven, under
// any of the registered probe RNGs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/renamer.hpp"
#include "bench_util/timing.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "stats/welford.hpp"
#include "sync/cache.hpp"
#include "sync/futex.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace la::bench {

struct DriverConfig {
  std::uint32_t threads = 1;
  std::uint64_t emulation_multiplier = 1000;  // registrants per thread
  double prefill = 0.5;                       // fraction of N held up front
  // Individual Get and Free operations per thread (a churn iteration
  // performs two), matching the paper's register/unregister accounting.
  // 0 = timed mode.
  std::uint64_t ops_per_thread = 0;
  double seconds = 0.0;                       // window for timed mode
  std::uint64_t seed = 42;
  // Probe RNG for the prefill and churn loops (paper §6 ablates this).
  rng::RngKind rng_kind = rng::RngKind::kMarsaglia;
  // Names per batched Free/Get exchange in the churn loop. 1 = the
  // classic single-op loop; >1 routes through api::free_batch /
  // api::get_batch (native amortized paths where the structure has
  // them, the single-op fallback elsewhere). ops still counts
  // individual Gets and Frees.
  std::uint64_t batch = 1;
  // Per-exchange Get budget in nanoseconds (0 = wait forever). Routed
  // through api::get_for / api::get_batch_for on structures with
  // deadline ops (api::has_deadline_ops_v); an expired exchange is
  // abandoned and counted in RunResult::timeouts. Structures without
  // the native surface ignore it (their untimed fallback cannot refuse).
  std::uint64_t deadline_ns = 0;

  std::uint64_t emulated_registrants() const {
    return static_cast<std::uint64_t>(threads) * emulation_multiplier;
  }
};

struct SweepPoint {
  DriverConfig driver;
  double size_factor = 2.0;                    // L = size_factor * N
  std::vector<std::uint8_t> probes_per_batch;  // empty = LevelArray default
  // sharded:* variants only (see api::RenamerConfig).
  std::uint32_t shards = 8;
  std::uint32_t name_cache_capacity = 16;
};

struct RunResult {
  stats::TrialStats trials;          // probes per main-loop Get, all threads
  std::uint64_t total_ops = 0;       // Gets + Frees completed in the loop
  double elapsed_seconds = 0.0;
  double throughput_ops_per_sec = 0.0;
  double mean_per_thread_worst = 0.0;  // worst case averaged over threads
  std::uint64_t backup_gets = 0;
  // Gate-refusal waiting, summed across threads: retry rounds spent in
  // the drive loop's spin/yield tiers plus whatever the structure itself
  // reports (api::WaitStats), and futex parks taken once the waits
  // outlived both tiers.
  std::uint64_t gate_wait_rounds = 0;
  std::uint64_t gate_parks = 0;
  // Caller-observed timed-out refusals (deadline_ns exchanges that
  // expired). Deliberately NOT folded with the structure's own
  // WaitStats::timeouts — those count the same expiry events from the
  // other side of the api::get_for call.
  std::uint64_t timeouts = 0;
};

// Canonical registry key for a structure name or alias; throws
// std::invalid_argument listing every accepted spelling (registry-derived).
std::string parse_algo(const std::string& name);

// Display label for a canonical registry key.
std::string_view algo_name(const std::string& canonical);

// Resolve a --algo list: expands "all" to every registered structure and
// canonicalizes names/aliases.
std::vector<std::string> expand_algos(const std::vector<std::string>& names);

// The api::RenamerConfig describing this sweep point (shared by benches
// that call api::visit directly).
api::RenamerConfig renamer_config(const SweepPoint& point);

// Build the structure registered under `name_or_alias` from `point` and
// run the churn workload under point.driver.rng_kind.
RunResult run_algo(const std::string& name_or_alias, const SweepPoint& point);

namespace detail {

struct ThreadOutput {
  stats::TrialStats trials;
  std::uint64_t ops = 0;
  std::uint64_t backup_gets = 0;
  std::uint64_t wait_rounds = 0;  // batched-retry refusal rounds
  std::uint64_t parks = 0;        // futex parks on the free signal
  std::uint64_t timeouts = 0;     // deadline_ns exchanges that expired
  // The thread's stash of held names lives here so its header shares the
  // padded cache line with the thread's own counters, not a neighbor's.
  std::vector<std::uint64_t> held;
  // Barrier-to-loop-end time, so throughput excludes spawn/join/drain.
  double seconds_active = 0.0;
};

// The churn loop proper. Each thread owns a stash of held names (its
// share of the prefill, plus whatever it registers); every iteration
// frees one random stashed name and registers a new one — the paper's
// back-to-back register/deregister pattern at constant load.
template <typename Array, typename Rng>
RunResult drive(Array& array, const DriverConfig& d) {
  const std::uint32_t threads = d.threads == 0 ? 1 : d.threads;
  const std::uint64_t n = d.emulated_registrants();
  const bool timed = d.ops_per_thread == 0;

  RunResult result;
  if (timed && d.seconds <= 0.0) return result;

  std::vector<sync::CachePadded<ThreadOutput>> outputs(threads);

  // Prefill, dealt round-robin into per-thread stashes.
  double prefill = d.prefill;
  if (prefill < 0.0) prefill = 0.0;
  if (prefill > 1.0) prefill = 1.0;
  const auto target =
      static_cast<std::uint64_t>(prefill * static_cast<double>(n));
  {
    Rng prefill_rng(rng::mix_seed(d.seed, 0xF111u));
    for (std::uint64_t i = 0; i < target; ++i) {
      outputs[i % threads]->held.push_back(array.get(prefill_rng).name);
    }
  }

  const std::size_t batch =
      d.batch == 0 ? 1 : static_cast<std::size_t>(d.batch);

  sync::SpinBarrier barrier(threads);
  {
    sync::ThreadGroup group;
    group.spawn(threads, [&](std::uint32_t tid) {
      Rng rng(rng::mix_seed(d.seed, tid + 1));
      ThreadOutput& out = *outputs[tid];
      std::vector<std::uint64_t>& held = out.held;
      std::vector<std::uint64_t> victims(batch);
      std::vector<GetResult> got(batch);
      barrier.wait();
      Stopwatch local;
      if (batch == 1) {
        for (std::uint64_t iter = 0;; ++iter) {
          if (timed) {
            if ((iter & 63u) == 0 && local.elapsed_seconds() >= d.seconds) {
              break;
            }
          } else if (out.ops >= d.ops_per_thread) {
            // ops counts Gets and Frees individually, matching the
            // paper's "register and unregister operations" accounting.
            break;
          }
          if (!held.empty()) {
            const std::uint64_t victim = rng::bounded(rng, held.size());
            array.free(held[victim]);
            held[victim] = held.back();
            held.pop_back();
            ++out.ops;
          }
          GetResult r;
          bool granted = true;
          if constexpr (api::has_deadline_ops_v<Array>) {
            if (d.deadline_ns != 0) {
              granted = api::get_for(
                  array, rng, r,
                  sync::FutexWord::monotonic_now_ns() + d.deadline_ns);
            } else {
              r = array.get(rng);
            }
          } else {
            r = array.get(rng);
          }
          if (!granted) {
            // Timed-out refusal: the attempt still spends loop budget
            // (otherwise an ops-mode run on a saturated structure would
            // never terminate).
            ++out.timeouts;
            ++out.ops;
            continue;
          }
          out.trials.record(r.probes);
          if (r.used_backup) ++out.backup_gets;
          held.push_back(r.name);
          ++out.ops;
        }
      } else {
        // Batched churn: one Free-k/Get-k exchange per iteration (each
        // iteration is ~2*batch ops, so the clock poll every 8 is at
        // most one read per 16 ops even at batch=2).
        for (std::uint64_t iter = 0;; ++iter) {
          if (timed) {
            if ((iter & 7u) == 0 && local.elapsed_seconds() >= d.seconds) {
              break;
            }
          } else if (out.ops >= d.ops_per_thread) {
            break;
          }
          const std::size_t nfree =
              held.size() < batch ? held.size() : batch;
          for (std::size_t j = 0; j < nfree; ++j) {
            const std::uint64_t victim = rng::bounded(rng, held.size());
            victims[j] = held[victim];
            held[victim] = held.back();
            held.pop_back();
          }
          if (nfree != 0) {
            api::free_batch(array, victims.data(), nfree);
            out.ops += nfree;
          }
          // A gate-bounded structure may grant the batch partially —
          // retry the remainder under Backoff instead of busy-looping
          // the refusal path (oversubscribed runs would otherwise burn
          // whole timeslices spinning). Structures that publish a free
          // signal get the third tier too: once the spin and yield
          // budgets are spent, park on the signal with the eventcount
          // protocol (register, one re-check grab, then sleep) so a
          // refusal storm costs a futex wait instead of timeslices.
          std::size_t want = batch;
          bool timed_attempt = false;
          if constexpr (api::has_deadline_ops_v<Array>) {
            if (d.deadline_ns != 0) {
              // One whole-exchange deadline: retry partial grants until
              // the batch fills or the deadline expires, then abandon
              // the remainder as a timed-out refusal.
              timed_attempt = true;
              const std::uint64_t until =
                  sync::FutexWord::monotonic_now_ns() + d.deadline_ns;
              while (want != 0) {
                const std::size_t granted =
                    api::get_batch_for(array, rng, got.data(), want, until);
                if (granted == 0) {
                  ++out.timeouts;
                  ++out.ops;  // the refused remainder spends loop budget
                  break;
                }
                for (std::size_t j = 0; j < granted; ++j) {
                  out.trials.record(got[j].probes);
                  if (got[j].used_backup) ++out.backup_gets;
                  held.push_back(got[j].name);
                }
                out.ops += granted;
                want -= granted;
              }
            }
          }
          sync::Backoff backoff;
          while (!timed_attempt && want != 0) {
            std::size_t granted =
                api::get_batch(array, rng, got.data(), want);
            if constexpr (api::has_free_signal_v<Array>) {
              if (granted == 0 && backoff.should_park()) {
                auto& bell = array.free_signal();
                const std::uint32_t seen = bell.prepare_wait();
                granted = api::get_batch(array, rng, got.data(), want);
                if (granted != 0) {
                  bell.cancel_wait();
                } else if (timed &&
                           local.elapsed_seconds() >= d.seconds) {
                  bell.cancel_wait();
                  break;
                } else {
                  ++out.parks;
                  // Timed as a backstop; the release paths all signal,
                  // so the common wake is the eventcount bump.
                  bell.commit_wait_for(seen, 50'000'000ull);
                }
              }
            }
            for (std::size_t j = 0; j < granted; ++j) {
              out.trials.record(got[j].probes);
              if (got[j].used_backup) ++out.backup_gets;
              held.push_back(got[j].name);
            }
            out.ops += granted;
            want -= granted;
            if (want != 0) {
              if (timed && local.elapsed_seconds() >= d.seconds) break;
              ++out.wait_rounds;
              backoff.pause();
            }
          }
        }
      }
      out.seconds_active = local.elapsed_seconds();
      // Drain the stash so the array is empty for the next run/chunk.
      for (const auto name : held) array.free(name);
      held.clear();
    });
  }

  stats::Welford per_thread_worst;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    const ThreadOutput& out = *outputs[tid];
    result.trials.merge(out.trials);
    result.total_ops += out.ops;
    result.backup_gets += out.backup_gets;
    result.gate_wait_rounds += out.wait_rounds;
    result.gate_parks += out.parks;
    result.timeouts += out.timeouts;
    per_thread_worst.add(static_cast<double>(out.trials.worst_case()));
    // Slowest thread's barrier-to-loop-end time: excludes spawn, join,
    // and the untimed stash drain.
    if (out.seconds_active > result.elapsed_seconds) {
      result.elapsed_seconds = out.seconds_active;
    }
  }
  // Structures that track their own gate waiting (the scale layer's
  // blocking get, the svc client's response waits) fold into the same
  // counters — read here, while the structure is still alive.
  if constexpr (api::has_wait_stats_v<Array>) {
    const api::WaitStats waits = array.wait_stats();
    result.gate_wait_rounds += waits.wait_rounds;
    result.gate_parks += waits.parks;
  }
  result.mean_per_thread_worst = per_thread_worst.mean();
  result.throughput_ops_per_sec =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.total_ops) / result.elapsed_seconds
          : 0.0;
  return result;
}

template <typename Array>
RunResult drive_with_rng(Array& array, const DriverConfig& d) {
  return api::with_rng(d.rng_kind, [&](auto tag) {
    using Rng = typename decltype(tag)::type;
    return drive<Array, Rng>(array, d);
  });
}

}  // namespace detail

// Same workload against a caller-owned persistent structure (longrun
// accumulates worst-case stats across chunks this way), honoring
// driver.rng_kind. Generic over the Renamer contract — any registered
// structure (not just the LevelArray) churns under the same driver.
template <typename Structure>
RunResult run_churn(Structure& array, const DriverConfig& driver) {
  static_assert(api::is_renamer_v<Structure>,
                "run_churn drives the api::Renamer contract");
  return detail::drive_with_rng(array, driver);
}

}  // namespace la::bench
