// The real-thread churn driver behind the Figure 2 family of benches,
// plus the algorithm registry. The workload follows the paper's §6
// methodology: each of n threads emulates `mult` registrants (N = n*mult
// total), the array holds L = size_factor * N slots, a prefill fraction
// is registered up front, and the main loop is back-to-back Free+Get
// churn — either for a fixed op count (reproducible trial metrics) or a
// fixed wall-clock window (throughput).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arrays/linear_probing_array.hpp"
#include "arrays/random_array.hpp"
#include "arrays/sequential_scan_array.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"

namespace la::bench {

enum class AlgoKind { kLevelArray, kRandom, kLinearProbing, kSequentialScan };

AlgoKind parse_algo(const std::string& name);
std::string_view algo_name(AlgoKind kind);

struct DriverConfig {
  std::uint32_t threads = 1;
  std::uint64_t emulation_multiplier = 1000;  // registrants per thread
  double prefill = 0.5;                       // fraction of N held up front
  // Individual Get and Free operations per thread (a churn iteration
  // performs two), matching the paper's register/unregister accounting.
  // 0 = timed mode.
  std::uint64_t ops_per_thread = 0;
  double seconds = 0.0;                       // window for timed mode
  std::uint64_t seed = 42;

  std::uint64_t emulated_registrants() const {
    return static_cast<std::uint64_t>(threads) * emulation_multiplier;
  }
};

struct SweepPoint {
  DriverConfig driver;
  double size_factor = 2.0;                    // L = size_factor * N
  std::vector<std::uint8_t> probes_per_batch;  // empty = LevelArray default
  rng::RngKind rng_kind = rng::RngKind::kMarsaglia;
};

struct RunResult {
  stats::TrialStats trials;          // probes per main-loop Get, all threads
  std::uint64_t total_ops = 0;       // Gets + Frees completed in the loop
  double elapsed_seconds = 0.0;
  double throughput_ops_per_sec = 0.0;
  double mean_per_thread_worst = 0.0;  // worst case averaged over threads
  std::uint64_t backup_gets = 0;
};

// Build the array described by (kind, point) and run the churn workload.
RunResult run_algo(AlgoKind kind, const SweepPoint& point);

// Same workload against a caller-owned persistent LevelArray (longrun
// accumulates worst-case stats across chunks this way). Marsaglia probes.
RunResult run_churn(core::LevelArray& array, const DriverConfig& driver);

}  // namespace la::bench
