#include "bench_util/algos.hpp"

#include "api/registry.hpp"

namespace la::bench {

std::string parse_algo(const std::string& name) {
  return api::resolve_structure(name);
}

std::string_view algo_name(const std::string& canonical) {
  return api::structure_label(canonical);
}

std::vector<std::string> expand_algos(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  const auto add = [&out](std::string canonical) {
    // First mention wins: "all,level" or "level,levelarray" runs (and
    // prints) each structure once.
    for (const auto& existing : out) {
      if (existing == canonical) return;
    }
    out.push_back(std::move(canonical));
  };
  for (const auto& name : names) {
    if (name == "all") {
      for (auto& registered : api::registered_names()) {
        add(std::move(registered));
      }
    } else {
      add(api::resolve_structure(name));
    }
  }
  return out;
}

api::RenamerConfig renamer_config(const SweepPoint& point) {
  api::RenamerConfig config;
  config.capacity = point.driver.emulated_registrants();
  config.size_factor = point.size_factor;
  config.probes_per_batch = point.probes_per_batch;
  config.rng_kind = point.driver.rng_kind;
  config.shards = point.shards;
  config.name_cache_capacity = point.name_cache_capacity;
  return config;
}

RunResult run_algo(const std::string& name_or_alias, const SweepPoint& point) {
  return api::visit(name_or_alias, renamer_config(point), [&](auto& array) {
    return detail::drive_with_rng(array, point.driver);
  });
}

}  // namespace la::bench
