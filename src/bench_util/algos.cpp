#include "bench_util/algos.hpp"

#include <stdexcept>

#include "bench_util/timing.hpp"
#include "stats/welford.hpp"
#include "sync/cache.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace la::bench {
namespace {

struct ThreadOutput {
  stats::TrialStats trials;
  std::uint64_t ops = 0;
  std::uint64_t backup_gets = 0;
  // The thread's stash of held names lives here so its header shares the
  // padded cache line with the thread's own counters, not a neighbor's.
  std::vector<std::uint64_t> held;
  // Barrier-to-loop-end time, so throughput excludes spawn/join/drain.
  double seconds_active = 0.0;
};

// The churn loop proper. Each thread owns a stash of held names (its
// share of the prefill, plus whatever it registers); every iteration
// frees one random stashed name and registers a new one — the paper's
// back-to-back register/deregister pattern at constant load.
template <typename Array, typename Rng>
RunResult drive(Array& array, const DriverConfig& d) {
  const std::uint32_t threads = d.threads == 0 ? 1 : d.threads;
  const std::uint64_t n = d.emulated_registrants();
  const bool timed = d.ops_per_thread == 0;

  RunResult result;
  if (timed && d.seconds <= 0.0) return result;

  std::vector<sync::CachePadded<ThreadOutput>> outputs(threads);

  // Prefill, dealt round-robin into per-thread stashes.
  double prefill = d.prefill;
  if (prefill < 0.0) prefill = 0.0;
  if (prefill > 1.0) prefill = 1.0;
  const auto target =
      static_cast<std::uint64_t>(prefill * static_cast<double>(n));
  {
    Rng prefill_rng(rng::mix_seed(d.seed, 0xF111u));
    for (std::uint64_t i = 0; i < target; ++i) {
      outputs[i % threads]->held.push_back(array.get(prefill_rng).name);
    }
  }

  sync::SpinBarrier barrier(threads);
  {
    sync::ThreadGroup group;
    group.spawn(threads, [&](std::uint32_t tid) {
      Rng rng(rng::mix_seed(d.seed, tid + 1));
      ThreadOutput& out = *outputs[tid];
      std::vector<std::uint64_t>& held = out.held;
      barrier.wait();
      Stopwatch local;
      for (std::uint64_t iter = 0;; ++iter) {
        if (timed) {
          if ((iter & 63u) == 0 && local.elapsed_seconds() >= d.seconds) break;
        } else if (out.ops >= d.ops_per_thread) {
          // ops counts Gets and Frees individually, matching the paper's
          // "register and unregister operations" accounting.
          break;
        }
        if (!held.empty()) {
          const std::uint64_t victim = rng::bounded(rng, held.size());
          array.free(held[victim]);
          held[victim] = held.back();
          held.pop_back();
          ++out.ops;
        }
        const GetResult r = array.get(rng);
        out.trials.record(r.probes);
        if (r.used_backup) ++out.backup_gets;
        held.push_back(r.name);
        ++out.ops;
      }
      out.seconds_active = local.elapsed_seconds();
      // Drain the stash so the array is empty for the next run/chunk.
      for (const auto name : held) array.free(name);
      held.clear();
    });
  }

  stats::Welford per_thread_worst;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    const ThreadOutput& out = *outputs[tid];
    result.trials.merge(out.trials);
    result.total_ops += out.ops;
    result.backup_gets += out.backup_gets;
    per_thread_worst.add(static_cast<double>(out.trials.worst_case()));
    // Slowest thread's barrier-to-loop-end time: excludes spawn, join,
    // and the untimed stash drain.
    if (out.seconds_active > result.elapsed_seconds) {
      result.elapsed_seconds = out.seconds_active;
    }
  }
  result.mean_per_thread_worst = per_thread_worst.mean();
  result.throughput_ops_per_sec =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.total_ops) / result.elapsed_seconds
          : 0.0;
  return result;
}

template <typename Array>
RunResult drive_with_rng(Array& array, const DriverConfig& d,
                         rng::RngKind kind) {
  switch (kind) {
    case rng::RngKind::kMarsaglia:
      return drive<Array, rng::MarsagliaXorshift>(array, d);
    case rng::RngKind::kLehmer:
      return drive<Array, rng::Lehmer>(array, d);
    case rng::RngKind::kPcg32:
      return drive<Array, rng::Pcg32>(array, d);
  }
  throw std::logic_error("unhandled RngKind");
}

}  // namespace

AlgoKind parse_algo(const std::string& name) {
  if (name == "level" || name == "levelarray") return AlgoKind::kLevelArray;
  if (name == "random") return AlgoKind::kRandom;
  if (name == "linear" || name == "linearprobing") {
    return AlgoKind::kLinearProbing;
  }
  if (name == "seq" || name == "sequential") return AlgoKind::kSequentialScan;
  throw std::invalid_argument("unknown algorithm: " + name +
                              " (expected level|random|linear|seq)");
}

std::string_view algo_name(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kLevelArray: return "LevelArray";
    case AlgoKind::kRandom: return "Random";
    case AlgoKind::kLinearProbing: return "LinearProbing";
    case AlgoKind::kSequentialScan: return "SequentialScan";
  }
  return "?";
}

RunResult run_algo(AlgoKind kind, const SweepPoint& point) {
  const DriverConfig& d = point.driver;
  const std::uint64_t n = d.emulated_registrants();
  const auto total_slots = static_cast<std::uint64_t>(
      point.size_factor * static_cast<double>(n));

  switch (kind) {
    case AlgoKind::kLevelArray: {
      core::LevelArrayConfig config;
      config.capacity = n;
      config.size_multiplier = point.size_factor;
      if (!point.probes_per_batch.empty()) {
        config.probes_per_batch = point.probes_per_batch;
      }
      core::LevelArray array(config);
      return drive_with_rng(array, d, point.rng_kind);
    }
    case AlgoKind::kRandom: {
      arrays::RandomArray array(total_slots, n);
      return drive_with_rng(array, d, point.rng_kind);
    }
    case AlgoKind::kLinearProbing: {
      arrays::LinearProbingArray array(total_slots, n);
      return drive_with_rng(array, d, point.rng_kind);
    }
    case AlgoKind::kSequentialScan: {
      arrays::SequentialScanArray array(total_slots, n);
      return drive_with_rng(array, d, point.rng_kind);
    }
  }
  throw std::logic_error("unhandled AlgoKind");
}

RunResult run_churn(core::LevelArray& array, const DriverConfig& driver) {
  return drive<core::LevelArray, rng::MarsagliaXorshift>(array, driver);
}

}  // namespace la::bench
