#include "bench_util/algos.hpp"

#include "api/registry.hpp"
#include "bench_util/timing.hpp"
#include "stats/welford.hpp"
#include "sync/cache.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace la::bench {
namespace {

struct ThreadOutput {
  stats::TrialStats trials;
  std::uint64_t ops = 0;
  std::uint64_t backup_gets = 0;
  // The thread's stash of held names lives here so its header shares the
  // padded cache line with the thread's own counters, not a neighbor's.
  std::vector<std::uint64_t> held;
  // Barrier-to-loop-end time, so throughput excludes spawn/join/drain.
  double seconds_active = 0.0;
};

// The churn loop proper. Each thread owns a stash of held names (its
// share of the prefill, plus whatever it registers); every iteration
// frees one random stashed name and registers a new one — the paper's
// back-to-back register/deregister pattern at constant load.
template <typename Array, typename Rng>
RunResult drive(Array& array, const DriverConfig& d) {
  const std::uint32_t threads = d.threads == 0 ? 1 : d.threads;
  const std::uint64_t n = d.emulated_registrants();
  const bool timed = d.ops_per_thread == 0;

  RunResult result;
  if (timed && d.seconds <= 0.0) return result;

  std::vector<sync::CachePadded<ThreadOutput>> outputs(threads);

  // Prefill, dealt round-robin into per-thread stashes.
  double prefill = d.prefill;
  if (prefill < 0.0) prefill = 0.0;
  if (prefill > 1.0) prefill = 1.0;
  const auto target =
      static_cast<std::uint64_t>(prefill * static_cast<double>(n));
  {
    Rng prefill_rng(rng::mix_seed(d.seed, 0xF111u));
    for (std::uint64_t i = 0; i < target; ++i) {
      outputs[i % threads]->held.push_back(array.get(prefill_rng).name);
    }
  }

  sync::SpinBarrier barrier(threads);
  {
    sync::ThreadGroup group;
    group.spawn(threads, [&](std::uint32_t tid) {
      Rng rng(rng::mix_seed(d.seed, tid + 1));
      ThreadOutput& out = *outputs[tid];
      std::vector<std::uint64_t>& held = out.held;
      barrier.wait();
      Stopwatch local;
      for (std::uint64_t iter = 0;; ++iter) {
        if (timed) {
          if ((iter & 63u) == 0 && local.elapsed_seconds() >= d.seconds) break;
        } else if (out.ops >= d.ops_per_thread) {
          // ops counts Gets and Frees individually, matching the paper's
          // "register and unregister operations" accounting.
          break;
        }
        if (!held.empty()) {
          const std::uint64_t victim = rng::bounded(rng, held.size());
          array.free(held[victim]);
          held[victim] = held.back();
          held.pop_back();
          ++out.ops;
        }
        const GetResult r = array.get(rng);
        out.trials.record(r.probes);
        if (r.used_backup) ++out.backup_gets;
        held.push_back(r.name);
        ++out.ops;
      }
      out.seconds_active = local.elapsed_seconds();
      // Drain the stash so the array is empty for the next run/chunk.
      for (const auto name : held) array.free(name);
      held.clear();
    });
  }

  stats::Welford per_thread_worst;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    const ThreadOutput& out = *outputs[tid];
    result.trials.merge(out.trials);
    result.total_ops += out.ops;
    result.backup_gets += out.backup_gets;
    per_thread_worst.add(static_cast<double>(out.trials.worst_case()));
    // Slowest thread's barrier-to-loop-end time: excludes spawn, join,
    // and the untimed stash drain.
    if (out.seconds_active > result.elapsed_seconds) {
      result.elapsed_seconds = out.seconds_active;
    }
  }
  result.mean_per_thread_worst = per_thread_worst.mean();
  result.throughput_ops_per_sec =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.total_ops) / result.elapsed_seconds
          : 0.0;
  return result;
}

template <typename Array>
RunResult drive_with_rng(Array& array, const DriverConfig& d) {
  return api::with_rng(d.rng_kind, [&](auto tag) {
    using Rng = typename decltype(tag)::type;
    return drive<Array, Rng>(array, d);
  });
}

}  // namespace

std::string parse_algo(const std::string& name) {
  return api::resolve_structure(name);
}

std::string_view algo_name(const std::string& canonical) {
  return api::structure_label(canonical);
}

std::vector<std::string> expand_algos(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  const auto add = [&out](std::string canonical) {
    // First mention wins: "all,level" or "level,levelarray" runs (and
    // prints) each structure once.
    for (const auto& existing : out) {
      if (existing == canonical) return;
    }
    out.push_back(std::move(canonical));
  };
  for (const auto& name : names) {
    if (name == "all") {
      for (auto& registered : api::registered_names()) {
        add(std::move(registered));
      }
    } else {
      add(api::resolve_structure(name));
    }
  }
  return out;
}

api::RenamerConfig renamer_config(const SweepPoint& point) {
  api::RenamerConfig config;
  config.capacity = point.driver.emulated_registrants();
  config.size_factor = point.size_factor;
  config.probes_per_batch = point.probes_per_batch;
  config.rng_kind = point.driver.rng_kind;
  return config;
}

RunResult run_algo(const std::string& name_or_alias, const SweepPoint& point) {
  return api::visit(name_or_alias, renamer_config(point), [&](auto& array) {
    return drive_with_rng(array, point.driver);
  });
}

RunResult run_churn(core::LevelArray& array, const DriverConfig& driver) {
  return drive_with_rng(array, driver);
}

}  // namespace la::bench
