// Hold-time distributions for workload_trace: every distribution has the
// same mean (so by Little's law the same steady-state load), what varies
// is the shape of the occupancy fluctuation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rng/rng.hpp"

namespace la::bench {

enum class HoldDistribution {
  kFixed, kUniform, kExponential, kPareto, kBimodal, kZipf
};

inline HoldDistribution parse_hold_distribution(const std::string& name) {
  if (name == "fixed") return HoldDistribution::kFixed;
  if (name == "uniform") return HoldDistribution::kUniform;
  if (name == "exponential" || name == "exp") {
    return HoldDistribution::kExponential;
  }
  if (name == "pareto") return HoldDistribution::kPareto;
  if (name == "bimodal") return HoldDistribution::kBimodal;
  if (name == "zipf") return HoldDistribution::kZipf;
  throw std::invalid_argument("unknown hold distribution: " + name);
}

inline std::string_view hold_distribution_name(HoldDistribution dist) {
  switch (dist) {
    case HoldDistribution::kFixed: return "fixed";
    case HoldDistribution::kUniform: return "uniform";
    case HoldDistribution::kExponential: return "exponential";
    case HoldDistribution::kPareto: return "pareto";
    case HoldDistribution::kBimodal: return "bimodal";
    case HoldDistribution::kZipf: return "zipf";
  }
  return "?";
}

// Draws a hold duration (in iterations, >= 1) with the given mean.
template <typename Rng>
std::uint64_t draw_hold_time(Rng& rng, HoldDistribution dist, double mean) {
  if (mean < 1.0) mean = 1.0;
  double value = mean;
  switch (dist) {
    case HoldDistribution::kFixed:
      value = mean;
      break;
    case HoldDistribution::kUniform:
      // U{1 .. 2*mean - 1}: mean preserved exactly.
      return 1 + rng::bounded(
                     rng, static_cast<std::uint64_t>(2.0 * mean) - 1);
    case HoldDistribution::kExponential:
      value = -mean * std::log(1.0 - rng::canonical(rng));
      value = std::min(value, 50.0 * mean);
      break;
    case HoldDistribution::kPareto: {
      // alpha = 1.5, x_m = mean/3 so the uncapped mean equals `mean`;
      // capped at 16*mean to keep excursions inside the array headroom.
      const double alpha = 1.5;
      const double xm = mean * (alpha - 1.0) / alpha;
      const double u = 1.0 - rng::canonical(rng);  // (0, 1]
      value = xm / std::pow(u, 1.0 / alpha);
      value = std::min(value, 16.0 * mean);
      break;
    }
    case HoldDistribution::kBimodal:
      // 90% short (mean/2), 10% long (5.5*mean): mean preserved.
      value = rng::canonical(rng) < 0.9 ? 0.5 * mean : 5.5 * mean;
      break;
    case HoldDistribution::kZipf: {
      // Zipf(1.2)-distributed rank over 64 ranks, rescaled by
      // mean / E[rank] so the requested mean is preserved: most holds
      // land well under the mean, the top rank pins ~8x (64 / E[rank])
      // longer. Magic static: the table is built once.
      static const rng::ZipfTable table(64, 1.2);
      const double rank = static_cast<double>(table.draw(rng)) + 1.0;
      value = rank * mean / table.mean_rank();
      break;
    }
  }
  const double rounded = std::floor(value + 0.5);
  return rounded < 1.0 ? 1 : static_cast<std::uint64_t>(rounded);
}

}  // namespace la::bench
