// Hold-time distributions for workload_trace: every distribution has the
// same mean (so by Little's law the same steady-state load), what varies
// is the shape of the occupancy fluctuation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rng/rng.hpp"

namespace la::bench {

enum class HoldDistribution {
  kFixed, kUniform, kExponential, kPareto, kBimodal, kZipf
};

inline HoldDistribution parse_hold_distribution(const std::string& name) {
  if (name == "fixed") return HoldDistribution::kFixed;
  if (name == "uniform") return HoldDistribution::kUniform;
  if (name == "exponential" || name == "exp") {
    return HoldDistribution::kExponential;
  }
  if (name == "pareto") return HoldDistribution::kPareto;
  if (name == "bimodal") return HoldDistribution::kBimodal;
  if (name == "zipf") return HoldDistribution::kZipf;
  throw std::invalid_argument("unknown hold distribution: " + name);
}

inline std::string_view hold_distribution_name(HoldDistribution dist) {
  switch (dist) {
    case HoldDistribution::kFixed: return "fixed";
    case HoldDistribution::kUniform: return "uniform";
    case HoldDistribution::kExponential: return "exponential";
    case HoldDistribution::kPareto: return "pareto";
    case HoldDistribution::kBimodal: return "bimodal";
    case HoldDistribution::kZipf: return "zipf";
  }
  return "?";
}

namespace detail {

// Quantize a positive real duration to an integer, preserving the mean:
// floor(value) with probability 1 - frac, ceil(value) with probability
// frac, so E[quantized] = value. Plain round-to-nearest would pin a
// requested mean of, say, 2.7 to a realized 3.0 (an 11% drift); the
// dither keeps every distribution's realized mean at the request. Values
// below 1 clamp to 1 (holds last at least one iteration) — the one
// remaining bias, negligible once the mean is a few iterations.
template <typename Rng>
std::uint64_t dither_to_int(Rng& rng, double value) {
  if (!(value > 1.0)) return 1;
  const double whole = std::floor(value);
  const double frac = value - whole;
  auto ticks = static_cast<std::uint64_t>(whole);
  if (frac > 0.0 && rng::canonical(rng) < frac) ++ticks;
  return ticks;
}

// Pareto scale x_m, as a fraction of the mean, such that the draw capped
// at 16*mean realizes exactly the requested mean. For Pareto(alpha, x_m),
//   E[min(X, c)] = alpha/(alpha-1) * x_m - x_m^alpha * c^(1-alpha) / (alpha-1),
// so with alpha = 3/2, c = 16*mean and r = x_m/mean the condition
// E = mean reduces to 3r - r^1.5/2 = 1. The uncapped choice r = 1/3
// realizes only ~0.904*mean — the cap eats ~10% of the tail mass.
// Bisection once; f is increasing on [1/3, 1/2].
inline double pareto_capped_scale() {
  double lo = 1.0 / 3.0, hi = 0.5;
  for (int i = 0; i < 60; ++i) {
    const double r = 0.5 * (lo + hi);
    (3.0 * r - 0.5 * r * std::sqrt(r) < 1.0 ? lo : hi) = r;
  }
  return 0.5 * (lo + hi);
}

}  // namespace detail

// Draws a hold duration (in iterations, >= 1) with the given mean. Every
// case preserves the requested mean (the dithered quantization included);
// test_hold_times holds all six to within 2% over 1e6 draws.
template <typename Rng>
std::uint64_t draw_hold_time(Rng& rng, HoldDistribution dist, double mean) {
  if (mean < 1.0) mean = 1.0;
  double value = mean;
  switch (dist) {
    case HoldDistribution::kFixed:
      value = mean;
      break;
    case HoldDistribution::kUniform: {
      // U{1 .. w} has mean (w + 1) / 2, so the real-valued width
      // W = 2*mean - 1 is dithered between floor(W) and ceil(W):
      // E[(w + 1) / 2] = (W + 1) / 2 = mean for any real mean, where
      // truncating W (the old code) drifted non-half-integral means
      // (requested 2.7 realized 3.0).
      const std::uint64_t width =
          detail::dither_to_int(rng, 2.0 * mean - 1.0);
      return 1 + rng::bounded(rng, width);
    }
    case HoldDistribution::kExponential:
      value = -mean * std::log(1.0 - rng::canonical(rng));
      // The cap costs e^-50 of the mass — far below measurement noise.
      value = std::min(value, 50.0 * mean);
      break;
    case HoldDistribution::kPareto: {
      // alpha = 1.5, x_m chosen so the mean *after* the 16*mean cap
      // (which keeps excursions inside the array headroom) equals the
      // request — see pareto_capped_scale for the algebra.
      static const double scale = detail::pareto_capped_scale();
      const double xm = mean * scale;
      const double u = 1.0 - rng::canonical(rng);  // (0, 1]
      value = xm / std::pow(u, 1.0 / 1.5);
      value = std::min(value, 16.0 * mean);
      break;
    }
    case HoldDistribution::kBimodal:
      // 90% short (mean/2), 10% long (5.5*mean): mean preserved.
      value = rng::canonical(rng) < 0.9 ? 0.5 * mean : 5.5 * mean;
      break;
    case HoldDistribution::kZipf: {
      // Zipf(1.2)-distributed rank over 64 ranks, rescaled by
      // mean / E[rank] so the requested mean is preserved: most holds
      // land well under the mean, the top rank pins ~8x (64 / E[rank])
      // longer. Magic static: the table is built once.
      static const rng::ZipfTable table(64, 1.2);
      const double rank = static_cast<double>(table.draw(rng)) + 1.0;
      value = rank * mean / table.mean_rank();
      break;
    }
  }
  return detail::dither_to_int(rng, value);
}

}  // namespace la::bench
