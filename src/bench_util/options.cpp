#include "bench_util/options.hpp"

#include <stdexcept>

namespace la::bench {
namespace {

std::uint64_t parse_uint(const std::string& key, const std::string& text) {
  try {
    // std::stoull silently wraps a leading minus into a huge value.
    if (text.empty() || (text[0] < '0' || text[0] > '9')) {
      throw std::invalid_argument("not a digit");
    }
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": expected an unsigned integer, got \"" +
                                text + "\"");
  }
}

double parse_double(const std::string& key, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": expected a number, got \"" +
                                text + "\"");
  }
}

std::uint64_t parse_duration_ns(const std::string& key,
                                const std::string& text) {
  // Longest suffix first so "ms" is not read as "s" with trailing junk.
  static constexpr struct {
    const char* suffix;
    std::uint64_t scale;
  } kUnits[] = {
      {"ns", 1ull}, {"us", 1000ull}, {"ms", 1000000ull}, {"s", 1000000000ull}};
  for (const auto& unit : kUnits) {
    const std::string suffix(unit.suffix);
    if (text.size() > suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      const std::uint64_t value =
          parse_uint(key, text.substr(0, text.size() - suffix.size()));
      if (unit.scale != 0 &&
          value > ~std::uint64_t{0} / unit.scale) {
        throw std::invalid_argument("--" + key + ": duration overflows");
      }
      return value * unit.scale;
    }
  }
  return parse_uint(key, text);  // bare number = nanoseconds
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "";  // bare flag, e.g. --csv
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

const std::string* Options::lookup(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_.insert(key);
  return &it->second;
}

bool Options::has(const std::string& key) const {
  return lookup(key) != nullptr;
}

std::uint64_t Options::get_uint(const std::string& key,
                                std::uint64_t def) const {
  const auto* value = lookup(key);
  return value == nullptr ? def : parse_uint(key, *value);
}

double Options::get_double(const std::string& key, double def) const {
  const auto* value = lookup(key);
  return value == nullptr ? def : parse_double(key, *value);
}

std::uint64_t Options::get_duration_ns(const std::string& key,
                                       std::uint64_t def) const {
  const auto* value = lookup(key);
  return value == nullptr ? def : parse_duration_ns(key, *value);
}

std::string Options::get_string(const std::string& key,
                                std::string def) const {
  const auto* value = lookup(key);
  return value == nullptr ? std::move(def) : *value;
}

std::vector<std::uint64_t> Options::get_uint_list(
    const std::string& key, std::vector<std::uint64_t> def) const {
  const auto* value = lookup(key);
  if (value == nullptr) return def;
  std::vector<std::uint64_t> out;
  for (const auto& part : split_commas(*value)) {
    if (!part.empty()) out.push_back(parse_uint(key, part));
  }
  if (out.empty()) {
    // An explicitly passed but empty list (e.g. --n=$UNSET) must not
    // silently fall back to the defaults.
    throw std::invalid_argument("--" + key + ": expected a non-empty list");
  }
  return out;
}

std::vector<std::string> Options::get_string_list(
    const std::string& key, std::vector<std::string> def) const {
  const auto* value = lookup(key);
  if (value == nullptr) return def;
  std::vector<std::string> out;
  for (const auto& part : split_commas(*value)) {
    if (!part.empty()) out.push_back(part);
  }
  if (out.empty()) {
    throw std::invalid_argument("--" + key + ": expected a non-empty list");
  }
  return out;
}

std::vector<std::string> Options::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (used_.find(key) == used_.end()) out.push_back(key);
  }
  return out;
}

}  // namespace la::bench
