// Stopwatch over std::chrono::steady_clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace la::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace la::bench
