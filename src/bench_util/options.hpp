// Minimal --key=value / --flag command-line parser shared by all bench
// drivers. Accessors mark keys as used so drivers can warn about typos
// via unused_keys() — a sweep silently running defaults because of a
// misspelled flag is the most expensive bug a benchmark can have.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace la::bench {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const;

  std::uint64_t get_uint(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, std::string def) const;
  // Durations with an s/ms/us/ns suffix ("10ms", "250us", "1s"); a bare
  // number is nanoseconds. Returns nanoseconds.
  std::uint64_t get_duration_ns(const std::string& key,
                                std::uint64_t def) const;

  // Comma-separated lists: --n=1024,4096,16384
  std::vector<std::uint64_t> get_uint_list(
      const std::string& key, std::vector<std::uint64_t> def) const;
  std::vector<std::string> get_string_list(
      const std::string& key, std::vector<std::string> def) const;

  // Keys that were passed on the command line but never queried.
  std::vector<std::string> unused_keys() const;

 private:
  const std::string* lookup(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace la::bench
