#include "svc/segment.hpp"

#include <new>
#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define LA_SVC_HAVE_MMAP 1
#else
#define LA_SVC_HAVE_MMAP 0
#endif

namespace la::svc {

namespace {

SegmentConfig sanitized(SegmentConfig config) {
  if (config.max_clients == 0) config.max_clients = 1;
  if (!valid_ring_capacity(config.ring_depth)) {
    throw std::invalid_argument(
        "svc::Segment: ring_depth must be a power of two >= 2, got " +
        std::to_string(config.ring_depth));
  }
  return config;
}

}  // namespace

std::size_t SegmentView::bytes_required(const SegmentConfig& config) {
  const std::size_t rings = std::size_t{config.max_clients};
  return sizeof(Header) + sizeof(ClientSlot) * rings +
         sizeof(RequestSlot) * rings * config.ring_depth +
         sizeof(ResponseSlot) * rings * config.ring_depth;
}

Segment::Segment(const SegmentConfig& config) : config_(sanitized(config)) {
  bytes_ = SegmentView::bytes_required(config_);
#if LA_SVC_HAVE_MMAP
  // MAP_SHARED | MAP_ANONYMOUS: inherited by fork() at the same address,
  // with stores visible across the processes — exactly the lifetime the
  // daemon needs, with no filesystem name to leak on a crash.
  void* mapped = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapped == MAP_FAILED) {
    throw std::runtime_error("svc::Segment: mmap of " +
                             std::to_string(bytes_) + " bytes failed");
  }
  base_ = mapped;
#else
  // No mmap: plain heap memory. Single-process use (the registry's
  // in-process daemon) still works; fork-based harnesses do not.
  base_ = ::operator new(bytes_, std::align_val_t{sync::kCacheLineSize});
#endif

  // Placement-construct every structure once, creator-side, before any
  // endpoint attaches (fork or server start happens after construction).
  SegmentView v = view();
  Header* header = new (base_) Header{};
  header->max_clients = config_.max_clients;
  header->ring_depth = config_.ring_depth;
  for (std::uint32_t i = 0; i < config_.max_clients; ++i) {
    new (&v.client_slot(i)) ClientSlot{};
  }
  // Construct the ring payload slots directly off the raw arrays, then
  // lay down each ring's initial sequence numbers.
  auto* req_base = reinterpret_cast<RequestSlot*>(
      static_cast<char*>(base_) + sizeof(Header) +
      sizeof(ClientSlot) * config_.max_clients);
  auto* resp_base = reinterpret_cast<ResponseSlot*>(
      reinterpret_cast<char*>(req_base) +
      sizeof(RequestSlot) * std::size_t{config_.max_clients} *
          config_.ring_depth);
  const std::size_t total = std::size_t{config_.max_clients} * config_.ring_depth;
  for (std::size_t j = 0; j < total; ++j) new (req_base + j) RequestSlot{};
  for (std::size_t j = 0; j < total; ++j) new (resp_base + j) ResponseSlot{};
  for (std::uint32_t i = 0; i < config_.max_clients; ++i) {
    v.request_ring(i).initialize();
    v.response_ring(i).initialize();
  }
  header->magic = kSegmentMagic;
}

Segment::~Segment() {
#if LA_SVC_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, bytes_);
#else
  ::operator delete(base_, std::align_val_t{sync::kCacheLineSize});
#endif
}

}  // namespace la::svc
