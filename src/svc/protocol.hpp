// Wire protocol of the rename-service daemon: the opcodes and the two
// cache-padded slot layouts that travel through the shared-memory SPSC
// rings (see ring.hpp for the sequence-number handshake and segment.hpp
// for where the rings live).
//
// Design constraints, in order:
//   * one slot carries up to kMaxBatch (64) names, so the batched
//     Get-k/Free-k surface from PR 6 amortizes the ring round trip the
//     same way it amortizes the gate RMW;
//   * every field is a flat integer — slots are written in place in the
//     shared segment by one process and read by another, so the layout
//     must be trivially copyable with no pointers;
//   * each request carries the sender's pid: held-name accounting is per
//     client *process* (names legitimately migrate between the threads
//     of one process — prefill dealt to workers, reapers freeing
//     leftovers), and the pid is what the crash-reclaim sweep probes.
//
// Opcode semantics (server side):
//   kGetK    claim up to `count` names. The server answers as soon as it
//            can grant at least one; a request that can grant none parks
//            server-side on the pending list and is retried after every
//            capacity release — the client blocks, it does not spin. A
//            nonzero `deadline_ns` (absolute CLOCK_MONOTONIC, the
//            library-wide deadline clock — monotonic time is system-wide
//            on Linux, so an instant stamped by the client is meaningful
//            to the server) bounds the park: a pending request whose
//            deadline passes is answered kTimedOut with count 0.
//   kFreeK   free names[0..count). Processed in order; on the first bad
//            name the server stops and reports the index and class, with
//            the earlier names already freed (the api batch contract).
//   kCollect stream the logically-held name set in kMaxBatch-sized
//            chunks; `more` marks every chunk but the last.
//   kDetach  the sending thread is leaving: drop any per-ring state.
//            Fire-and-forget — no response slot is produced.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sync/cache.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <errno.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace la::svc {

inline constexpr std::uint32_t kMaxBatch = 64;

enum class Op : std::uint32_t {
  kNop = 0,
  kGetK = 1,
  kFreeK = 2,
  kCollect = 3,
  kDetach = 4,
};

enum class Status : std::uint32_t {
  kOk = 0,
  // FreeK error classes, mapped back to the contract's exception types
  // by the client (error_index names the offending position):
  kOutOfRange = 1,  // -> std::out_of_range
  kNotHeld = 2,     // -> std::logic_error (double free)
  kForeign = 3,     // held by another client process -> std::logic_error
  kShutdown = 4,    // server is stopping; no more responses will come
  kTimedOut = 5,    // GetK deadline_ns expired before any name freed up
};

// Client -> server. `seq` is the ring handshake word (ring.hpp); the
// payload is everything after it. `deadline_ns` is the kGetK park bound
// (absolute CLOCK_MONOTONIC ns; 0 = park until capacity or shutdown).
struct alignas(sync::kCacheLineSize) RequestSlot {
  std::atomic<std::uint32_t> seq{0};
  std::uint32_t pid = 0;
  Op op = Op::kNop;
  std::uint32_t count = 0;
  std::uint64_t deadline_ns = 0;
  std::uint64_t names[kMaxBatch] = {};
};

// Server -> client. GetK fills names[] and probes[] (the per-name trial
// counts the benches record); FreeK fills status/error_index; kCollect
// chunks fill names[] and set `more` on every chunk but the last.
struct alignas(sync::kCacheLineSize) ResponseSlot {
  std::atomic<std::uint32_t> seq{0};
  Status status = Status::kOk;
  std::uint32_t count = 0;
  std::uint32_t error_index = 0;
  std::uint32_t more = 0;
  std::uint32_t probes[kMaxBatch] = {};
  std::uint64_t names[kMaxBatch] = {};
};

static_assert(sizeof(RequestSlot) % sync::kCacheLineSize == 0);
static_assert(sizeof(ResponseSlot) % sync::kCacheLineSize == 0);

// --- process identity helpers (shared by server sweep + client probes) --

inline std::uint32_t this_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint32_t>(::getpid());
#else
  return 1;
#endif
}

inline bool pid_alive(std::uint32_t pid) {
#if defined(__unix__) || defined(__APPLE__)
  if (pid == 0) return true;  // not yet published; treat as live
  return !(::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH);
#else
  (void)pid;
  return true;
#endif
}

// The process's kernel start time (clock ticks since boot, field 22 of
// /proc/<pid>/stat), or 0 where unavailable. pid_alive is fooled by pid
// recycling — a new process under a dead client's pid keeps its slot
// "alive" and leaks its names forever — but (pid, start_time) is unique
// for the machine's uptime, so clients stamp their own start time as a
// claim generation token and the sweep compares tokens, not bare pids.
inline std::uint64_t pid_start_time(std::uint32_t pid) {
#if defined(__linux__)
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%u/stat", pid);
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return 0;
  buf[n] = '\0';
  // The comm field (2) is an arbitrary parenthesized string; parse from
  // the *last* ')' so a comm like "a) 1 (b" cannot shift the fields.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;
  // After ')': fields 3..N space-separated; start time is field 22, i.e.
  // the 20th token after comm.
  for (int field = 3; field < 22; ++field) {
    p = std::strchr(p + 1, ' ');
    if (p == nullptr) return 0;
  }
  return std::strtoull(p + 1, nullptr, 10);
#else
  (void)pid;
  return 0;
#endif
}

}  // namespace la::svc
