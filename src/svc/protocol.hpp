// Wire protocol of the rename-service daemon: the opcodes and the two
// cache-padded slot layouts that travel through the shared-memory SPSC
// rings (see ring.hpp for the sequence-number handshake and segment.hpp
// for where the rings live).
//
// Design constraints, in order:
//   * one slot carries up to kMaxBatch (64) names, so the batched
//     Get-k/Free-k surface from PR 6 amortizes the ring round trip the
//     same way it amortizes the gate RMW;
//   * every field is a flat integer — slots are written in place in the
//     shared segment by one process and read by another, so the layout
//     must be trivially copyable with no pointers;
//   * each request carries the sender's pid: held-name accounting is per
//     client *process* (names legitimately migrate between the threads
//     of one process — prefill dealt to workers, reapers freeing
//     leftovers), and the pid is what the crash-reclaim sweep probes.
//
// Opcode semantics (server side):
//   kGetK    claim up to `count` names. The server answers as soon as it
//            can grant at least one; a request that can grant none parks
//            server-side on the pending list and is retried after every
//            capacity release — the client blocks, it does not spin.
//   kFreeK   free names[0..count). Processed in order; on the first bad
//            name the server stops and reports the index and class, with
//            the earlier names already freed (the api batch contract).
//   kCollect stream the logically-held name set in kMaxBatch-sized
//            chunks; `more` marks every chunk but the last.
//   kDetach  the sending thread is leaving: drop any per-ring state.
//            Fire-and-forget — no response slot is produced.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/cache.hpp"

namespace la::svc {

inline constexpr std::uint32_t kMaxBatch = 64;

enum class Op : std::uint32_t {
  kNop = 0,
  kGetK = 1,
  kFreeK = 2,
  kCollect = 3,
  kDetach = 4,
};

enum class Status : std::uint32_t {
  kOk = 0,
  // FreeK error classes, mapped back to the contract's exception types
  // by the client (error_index names the offending position):
  kOutOfRange = 1,  // -> std::out_of_range
  kNotHeld = 2,     // -> std::logic_error (double free)
  kForeign = 3,     // held by another client process -> std::logic_error
  kShutdown = 4,    // server is stopping; no more responses will come
};

// Client -> server. `seq` is the ring handshake word (ring.hpp); the
// payload is everything after it.
struct alignas(sync::kCacheLineSize) RequestSlot {
  std::atomic<std::uint32_t> seq{0};
  std::uint32_t pid = 0;
  Op op = Op::kNop;
  std::uint32_t count = 0;
  std::uint64_t names[kMaxBatch] = {};
};

// Server -> client. GetK fills names[] and probes[] (the per-name trial
// counts the benches record); FreeK fills status/error_index; kCollect
// chunks fill names[] and set `more` on every chunk but the last.
struct alignas(sync::kCacheLineSize) ResponseSlot {
  std::atomic<std::uint32_t> seq{0};
  Status status = Status::kOk;
  std::uint32_t count = 0;
  std::uint32_t error_index = 0;
  std::uint32_t more = 0;
  std::uint32_t probes[kMaxBatch] = {};
  std::uint64_t names[kMaxBatch] = {};
};

static_assert(sizeof(RequestSlot) % sync::kCacheLineSize == 0);
static_assert(sizeof(ResponseSlot) % sync::kCacheLineSize == 0);

}  // namespace la::svc
