// The rename-service daemon's server side: worker threads drain the
// per-client request rings of a svc::Segment and apply the opcodes to
// one shared structure satisfying the api::Renamer contract (the
// registry fronts a scale::ShardedRenamer — its per-thread cache bins
// make the worker's Free->Get recycling a single RMW in steady state).
//
//   * Rings are statically partitioned: ring r belongs to worker
//     r % workers (default 1 worker). No cross-worker ring state.
//   * A GetK that can grant nothing parks *server-side* on the worker's
//     pending list and is retried after every capacity release — the
//     client blocks on its response bell instead of spin-retrying
//     across the segment. (Sound because every harness keeps aggregate
//     demand within the contention bound; a request that could never be
//     satisfied would be a caller bug, answered at shutdown with
//     kShutdown.)
//   * Held names are accounted per client *process* in dense bitmaps
//     (pid-keyed): Frees validate against them, which is what turns a
//     foreign or double free into a protocol error instead of silent
//     corruption, and what makes crash reclaim exact.
//   * Crash reclaim: a claimed client slot whose owner is provably gone
//     is swept: every bitmap-held name is freed back to the structure,
//     its rings are reset empty, its pending entries dropped, and the
//     slot returns to the free pool. "Provably gone" is token-based, not
//     bare-pid-based: clients stamp (pid, kernel start time) at claim
//     (segment.hpp claim_token), and the sweep reclaims when the pid is
//     dead (kill(pid, 0) == ESRCH — the harness must waitpid first,
//     zombies still "exist") OR the pid's current start time no longer
//     matches the stamped token — a recycled pid keeps kill() happy but
//     cannot fake the original claimant's start time. Sweeps run on the
//     idle heartbeat (the doorbell park has a timeout) and on demand via
//     request_sweep().
//
// Idle waiting is the eventcount protocol on the segment's global
// doorbell: register, rescan every owned ring, only then sleep — a
// request pushed between the scan and the sleep bumps the word and the
// sleep returns immediately (see sync/futex.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "api/renamer.hpp"
#include "rng/rng.hpp"
#include "svc/segment.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/spin_lock.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <errno.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace la::svc {

struct ServerStats {
  std::uint64_t requests = 0;        // ring slots consumed
  std::uint64_t names_granted = 0;   // names handed out by GetK
  std::uint64_t names_freed = 0;     // names released by FreeK
  std::uint64_t pending_parked = 0;  // GetKs that went to the pending list
  std::uint64_t pending_expired = 0; // pending GetKs answered kTimedOut
  std::uint64_t idle_parks = 0;      // worker doorbell parks
  std::uint64_t reclaims = 0;        // dead clients swept
  std::uint64_t reclaimed_names = 0; // names recovered from dead clients
  std::uint64_t detaches = 0;
  std::uint64_t migrations = 0;      // drain-and-migrate cycles completed
};

template <typename Structure>
class Server {
  static_assert(api::is_renamer_v<Structure>,
                "svc::Server fronts the api::Renamer contract");

 public:
  Server(SegmentView segment, Structure& structure,
         std::uint32_t workers = 1)
      : seg_(segment),
        structure_(structure),
        workers_(workers == 0 ? 1 : workers) {}

  ~Server() { stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Publish the structure's geometry, mark the segment ready, and launch
  // the workers. Call after fork()ing any client processes — the worker
  // threads must not exist across a fork.
  void start() {
    if (!threads_.empty()) return;
    Header& h = seg_.header();
    h.capacity.store(structure_.capacity(), std::memory_order_relaxed);
    h.total_slots.store(structure_.total_slots(), std::memory_order_relaxed);
    h.server_pid.store(this_pid(), std::memory_order_relaxed);
    hold_words_ = (structure_.total_slots() + 63) / 64;
    h.ready.store(1, std::memory_order_release);
    threads_.reserve(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  // Stop the workers (answering any parked GetKs with kShutdown) and
  // mark the segment shut down. Idempotent.
  void stop() {
    if (threads_.empty()) return;
    seg_.header().shutdown.store(1, std::memory_order_release);
    seg_.header().doorbell.signal();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  // Ask every worker to run a dead-client sweep now and wait until each
  // has (the deterministic reclaim hook for same-process harnesses; the
  // idle heartbeat sweeps on its own every ~50ms otherwise).
  void request_sweep() {
    const std::uint64_t target =
        sweeps_done_.load(std::memory_order_acquire) + workers_;
    sweep_epoch_.fetch_add(1, std::memory_order_release);
    seg_.header().doorbell.signal();
    sync::Backoff backoff;
    while (sweeps_done_.load(std::memory_order_acquire) < target &&
           !threads_.empty()) {
      backoff.pause();
    }
  }

  // Drain-and-migrate: quiesce every worker at its loop top (rings and
  // pending lists are *parked*, not dropped — a request pushed during
  // the pause is drained right after it), run fn(structure_) with
  // exclusive access to the structure, republish the possibly changed
  // geometry, and resume. fn is where the caller swaps shape — e.g.
  // save() the current impl, rebuild a differently configured one,
  // restore(), and ckpt::AnyRenamer::replace() — and the api::restore
  // name-identity contract is what keeps the per-pid held bitmaps and
  // every client's outstanding names valid across the swap. Clients
  // observe only latency: a worker already blocked in respond() to a
  // live client finishes that push before it reaches the checkpoint.
  // Call from one coordinating thread; not concurrent with stop().
  template <typename Fn>
  void migrate(Fn&& fn) {
    if (threads_.empty()) {
      // Not started: the caller owns the structure outright.
      fn(structure_);
      return;
    }
    const std::uint64_t target =
        migrate_checkins_.load(std::memory_order_acquire) + workers_;
    migrating_.store(1, std::memory_order_release);
    seg_.header().doorbell.signal();
    sync::Backoff backoff;
    while (migrate_checkins_.load(std::memory_order_acquire) < target &&
           !seg_.header().shutdown.load(std::memory_order_acquire)) {
      backoff.pause();
    }
    fn(structure_);
    Header& h = seg_.header();
    h.capacity.store(structure_.capacity(), std::memory_order_relaxed);
    h.total_slots.store(structure_.total_slots(), std::memory_order_relaxed);
    {
      // The held bitmaps are indexed by name; a grown name space needs
      // wider words. Never shrunk — adopted names already fit by the
      // restore contract, and stale high words are simply zero.
      sync::SpinLockGuard guard(holds_lock_);
      const std::uint64_t words = (structure_.total_slots() + 63) / 64;
      if (words > hold_words_) hold_words_ = words;
      for (auto& held : holds_) {
        if (held.words.size() < hold_words_) {
          held.words.resize(static_cast<std::size_t>(hold_words_));
        }
      }
    }
    migrations_.fetch_add(1, std::memory_order_relaxed);
    migrating_.store(0, std::memory_order_release);
  }

  ServerStats stats() const {
    ServerStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.names_granted = granted_.load(std::memory_order_relaxed);
    s.names_freed = freed_.load(std::memory_order_relaxed);
    s.pending_parked = pending_parked_.load(std::memory_order_relaxed);
    s.pending_expired = pending_expired_.load(std::memory_order_relaxed);
    s.idle_parks = idle_parks_.load(std::memory_order_relaxed);
    s.reclaims = reclaims_.load(std::memory_order_relaxed);
    s.reclaimed_names = reclaimed_names_.load(std::memory_order_relaxed);
    s.detaches = detaches_.load(std::memory_order_relaxed);
    s.migrations = migrations_.load(std::memory_order_relaxed);
    return s;
  }

  // First worker error, empty if none (a throwing structure poisons the
  // run; harnesses assert on this).
  std::string error() const {
    sync::SpinLockGuard guard(error_lock_);
    return error_;
  }

 private:
  struct Pending {
    std::uint32_t ring = 0;
    std::uint32_t pid = 0;
    std::uint32_t want = 0;
    std::uint64_t deadline_ns = 0;  // 0 = park until capacity/shutdown
  };

  // --- per-pid held bitmaps (lock-guarded; few pids, O(1) bit ops) ----

  struct PidHolds {
    std::uint32_t pid = 0;
    std::uint64_t count = 0;
    std::vector<std::uint64_t> words;
  };

  PidHolds& holds_for(std::uint32_t pid) {
    for (auto& h : holds_) {
      if (h.pid == pid) return h;
    }
    holds_.push_back(PidHolds{pid, 0, std::vector<std::uint64_t>(
                                          static_cast<std::size_t>(
                                              hold_words_))});
    return holds_.back();
  }

  void mark_held(std::uint32_t pid, std::uint64_t name) {
    sync::SpinLockGuard guard(holds_lock_);
    PidHolds& h = holds_for(pid);
    h.words[name >> 6] |= (std::uint64_t{1} << (name & 63));
    ++h.count;
  }

  bool clear_held(std::uint32_t pid, std::uint64_t name) {
    sync::SpinLockGuard guard(holds_lock_);
    PidHolds& h = holds_for(pid);
    const std::uint64_t bit = std::uint64_t{1} << (name & 63);
    if ((h.words[name >> 6] & bit) == 0) return false;
    h.words[name >> 6] &= ~bit;
    --h.count;
    return true;
  }

  bool held_by_other(std::uint32_t pid, std::uint64_t name) {
    if (name >= structure_.total_slots()) return false;
    sync::SpinLockGuard guard(holds_lock_);
    for (const auto& h : holds_) {
      if (h.pid == pid) continue;
      if ((h.words[name >> 6] & (std::uint64_t{1} << (name & 63))) != 0) {
        return true;
      }
    }
    return false;
  }

  std::vector<std::uint64_t> drain_holds(std::uint32_t pid) {
    sync::SpinLockGuard guard(holds_lock_);
    std::vector<std::uint64_t> names;
    for (auto& h : holds_) {
      if (h.pid != pid) continue;
      for (std::size_t w = 0; w < h.words.size(); ++w) {
        std::uint64_t word = h.words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          word &= word - 1;
          names.push_back((static_cast<std::uint64_t>(w) << 6) |
                          static_cast<std::uint64_t>(bit));
        }
        h.words[w] = 0;
      }
      h.count = 0;
    }
    return names;
  }

  // --- response push --------------------------------------------------

  template <typename Fill>
  bool respond(std::uint32_t r, Fill&& fill) {
    ClientSlot& cs = seg_.client_slot(r);
    auto ring = seg_.response_ring(r);
    const std::uint32_t pos = cs.resp_tail.load(std::memory_order_relaxed);
    sync::Backoff backoff;
    ResponseSlot* slot;
    while ((slot = ring.try_begin_push(pos)) == nullptr) {
      // Ring full: the client is not consuming. Either it is slow
      // (yield and retry) or it died mid-exchange (drop the response;
      // the sweep will reclaim the slot).
      if (backoff.should_park()) {
        if (!pid_alive(cs.pid.load(std::memory_order_relaxed))) return false;
        backoff.reset();
      }
      backoff.pause();
    }
    fill(*slot);
    ring.commit_push(*slot, pos);
    cs.resp_tail.store(pos + 1, std::memory_order_relaxed);
    cs.resp_bell.signal();
    return true;
  }

  // --- opcode handlers (all run on the ring's owning worker) ----------

  template <typename Rng>
  bool try_grant(std::uint32_t r, std::uint32_t pid, std::uint32_t want,
                 Rng& rng) {
    GetResult got[kMaxBatch];
    const std::size_t granted = api::get_batch(
        structure_, rng, got, static_cast<std::size_t>(want));
    if (granted == 0) return false;
    for (std::size_t i = 0; i < granted; ++i) mark_held(pid, got[i].name);
    granted_.fetch_add(granted, std::memory_order_relaxed);
    respond(r, [&](ResponseSlot& out) {
      out.status = Status::kOk;
      out.count = static_cast<std::uint32_t>(granted);
      out.error_index = 0;
      out.more = 0;
      for (std::size_t i = 0; i < granted; ++i) {
        out.names[i] = got[i].name;
        out.probes[i] = got[i].probes;
      }
    });
    return true;
  }

  // Frees names[0..count) in order, stopping at the first bad name with
  // its index and class. Returns how many were actually released.
  std::uint64_t handle_free(std::uint32_t r, std::uint32_t pid,
                            const std::uint64_t* names,
                            std::uint32_t count) {
    Status status = Status::kOk;
    std::uint32_t error_index = 0;
    std::uint64_t released = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t name = names[i];
      if (name >= structure_.total_slots()) {
        status = Status::kOutOfRange;
        error_index = i;
        break;
      }
      if (clear_held(pid, name)) {
        structure_.free(name);
        ++released;
        continue;
      }
      if (held_by_other(pid, name)) {
        status = Status::kForeign;
        error_index = i;
        break;
      }
      // Nobody's bitmap holds it: let the structure classify (its free
      // is guaranteed to throw — every grant marks a bitmap first).
      try {
        structure_.free(name);
        ++released;  // untracked-but-held: corruption upstream, but freed
      } catch (const std::out_of_range&) {
        status = Status::kOutOfRange;
        error_index = i;
        break;
      } catch (const std::logic_error&) {
        status = Status::kNotHeld;
        error_index = i;
        break;
      }
    }
    freed_.fetch_add(released, std::memory_order_relaxed);
    respond(r, [&](ResponseSlot& out) {
      out.status = status;
      out.count = static_cast<std::uint32_t>(released);
      out.error_index = error_index;
      out.more = 0;
    });
    return released;
  }

  void handle_collect(std::uint32_t r) {
    std::vector<std::uint64_t> held;
    structure_.collect(held);
    std::size_t sent = 0;
    do {
      const std::size_t chunk =
          held.size() - sent < kMaxBatch ? held.size() - sent : kMaxBatch;
      const bool last = sent + chunk == held.size();
      if (!respond(r, [&](ResponseSlot& out) {
            out.status = Status::kOk;
            out.count = static_cast<std::uint32_t>(chunk);
            out.error_index = 0;
            out.more = last ? 0 : 1;
            for (std::size_t i = 0; i < chunk; ++i) {
              out.names[i] = held[sent + i];
            }
          })) {
        return;  // client died mid-stream; sweep reclaims
      }
      sent += chunk;
    } while (sent < held.size());
  }

  // --- the worker loop ------------------------------------------------

  template <typename Rng>
  std::size_t drain_ring(std::uint32_t r, Rng& rng,
                         std::vector<Pending>& pending, bool& released) {
    ClientSlot& cs = seg_.client_slot(r);
    auto ring = seg_.request_ring(r);
    std::size_t processed = 0;
    for (;;) {
      const std::uint32_t pos = cs.req_head.load(std::memory_order_relaxed);
      RequestSlot* req = ring.try_begin_pop(pos);
      if (req == nullptr) break;
      // Copy the payload out before recycling the slot back.
      const std::uint32_t pid = req->pid;
      const Op op = req->op;
      std::uint32_t count = req->count;
      const std::uint64_t deadline_ns = req->deadline_ns;
      if (count > kMaxBatch) count = kMaxBatch;
      std::uint64_t names[kMaxBatch];
      if (op == Op::kFreeK) {
        std::memcpy(names, req->names, sizeof(std::uint64_t) * count);
      }
      ring.commit_pop(*req, pos);
      cs.req_head.store(pos + 1, std::memory_order_relaxed);
      ++processed;
      requests_.fetch_add(1, std::memory_order_relaxed);
      switch (op) {
        case Op::kGetK:
          if (!try_grant(r, pid, count, rng)) {
            if (deadline_ns != 0 &&
                sync::FutexWord::monotonic_now_ns() >= deadline_ns) {
              // Already expired on arrival (e.g. queued behind a slow
              // drain): refuse immediately rather than park for nothing.
              expire(r);
            } else {
              pending.push_back(Pending{r, pid, count, deadline_ns});
              pending_parked_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          break;
        case Op::kFreeK:
          if (handle_free(r, pid, names, count) != 0) released = true;
          break;
        case Op::kCollect:
          // collect() drains the per-thread caches, which can release
          // gate capacity the pending list is waiting on.
          handle_collect(r);
          released = true;
          break;
        case Op::kDetach:
          detaches_.fetch_add(1, std::memory_order_relaxed);
          break;
        case Op::kNop:
          break;
      }
    }
    return processed;
  }

  template <typename Rng>
  void retry_pending(std::vector<Pending>& pending, Rng& rng) {
    for (std::size_t i = 0; i < pending.size();) {
      if (try_grant(pending[i].ring, pending[i].pid, pending[i].want, rng)) {
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }

  // The timed-out refusal for one parked GetK.
  void expire(std::uint32_t r) {
    pending_expired_.fetch_add(1, std::memory_order_relaxed);
    respond(r, [&](ResponseSlot& out) {
      out.status = Status::kTimedOut;
      out.count = 0;
      out.error_index = 0;
      out.more = 0;
    });
  }

  // Answer every pending GetK whose deadline has passed with kTimedOut.
  // Runs after retry_pending so a request whose capacity arrived in the
  // same iteration is granted, not expired.
  void expire_pending(std::vector<Pending>& pending) {
    if (pending.empty()) return;
    const std::uint64_t now = sync::FutexWord::monotonic_now_ns();
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].deadline_ns != 0 && now >= pending[i].deadline_ns) {
        expire(pending[i].ring);
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }

  // Nanoseconds until the earliest pending deadline, clamped to the idle
  // heartbeat — so an expiry parked server-side is answered on time, not
  // at the next 50ms tick.
  std::uint64_t idle_park_ns(const std::vector<Pending>& pending) const {
    std::uint64_t park = 50'000'000ull;  // the liveness-sweep heartbeat
    if (pending.empty()) return park;
    const std::uint64_t now = sync::FutexWord::monotonic_now_ns();
    for (const auto& p : pending) {
      if (p.deadline_ns == 0) continue;
      const std::uint64_t left =
          p.deadline_ns > now ? p.deadline_ns - now : 1;
      if (left < park) park = left;
    }
    return park;
  }

  // Sweep the dead clients among this worker's rings.
  template <typename Rng>
  void sweep_own(std::uint32_t wid, std::vector<Pending>& pending,
                 bool& released, Rng&) {
    const std::uint32_t self = this_pid();
    for (std::uint32_t r = wid; r < seg_.config().max_clients;
         r += workers_) {
      ClientSlot& cs = seg_.client_slot(r);
      if (cs.state.load(std::memory_order_acquire) != ClientSlot::kClaimed) {
        continue;
      }
      const std::uint32_t pid = cs.pid.load(std::memory_order_acquire);
      if (pid == 0 || pid == self) continue;
      // Liveness is (pid, claim token), not bare pid: kill(pid, 0)
      // cannot tell the claimant from an unrelated process that was
      // assigned the recycled pid later, but the recycled process's
      // kernel start time differs from the one the claimant stamped at
      // claim. Token 0 (stamp unavailable) degrades to pid-only.
      if (pid_alive(pid)) {
        const std::uint64_t token =
            cs.claim_token.load(std::memory_order_acquire);
        if (token == 0 || token == pid_start_time(pid)) continue;
      }
      // Dead mid-hold: recover every name its bitmap still holds, then
      // reset the rings (the producer is provably gone, so half-written
      // requests are discarded wholesale) and free the slot.
      const auto names = drain_holds(pid);
      for (const auto name : names) structure_.free(name);
      if (!names.empty()) released = true;
      for (std::size_t i = 0; i < pending.size();) {
        if (pending[i].ring == r) {
          pending[i] = pending.back();
          pending.pop_back();
        } else {
          ++i;
        }
      }
      const std::uint32_t req_head =
          cs.req_head.load(std::memory_order_relaxed);
      seg_.request_ring(r).reset_empty_at(req_head);
      cs.req_tail.store(req_head, std::memory_order_relaxed);
      const std::uint32_t resp_tail =
          cs.resp_tail.load(std::memory_order_relaxed);
      seg_.response_ring(r).reset_empty_at(resp_tail);
      cs.resp_head.store(resp_tail, std::memory_order_relaxed);
      cs.pid.store(0, std::memory_order_relaxed);
      cs.claim_token.store(0, std::memory_order_relaxed);
      cs.state.store(ClientSlot::kFree, std::memory_order_release);
      reclaims_.fetch_add(1, std::memory_order_relaxed);
      reclaimed_names_.fetch_add(names.size(), std::memory_order_relaxed);
    }
  }

  void worker_loop(std::uint32_t wid) {
    rng::MarsagliaXorshift rng(rng::mix_seed(0x53564300ull, wid + 1));
    std::vector<Pending> pending;
    std::uint64_t seen_sweep_epoch = 0;
    Header& h = seg_.header();
    try {
      for (;;) {
        bool released = false;
        if (migrating_.load(std::memory_order_acquire)) {
          // Migration checkpoint: check in once, then hold at the loop
          // top — no ring is mid-drain, no response is mid-push — until
          // the coordinator swaps the structure and releases us. The
          // pending list is parked untouched; `released` below retries
          // it against the new shape (a migration usually grows
          // capacity, so parked GetKs may now be grantable).
          migrate_checkins_.fetch_add(1, std::memory_order_release);
          sync::Backoff migrate_backoff;
          while (migrating_.load(std::memory_order_acquire) &&
                 !h.shutdown.load(std::memory_order_acquire)) {
            migrate_backoff.pause();
          }
          released = true;
        }
        std::size_t processed = 0;
        for (std::uint32_t r = wid; r < seg_.config().max_clients;
             r += workers_) {
          processed += drain_ring(r, rng, pending, released);
        }
        const std::uint64_t epoch =
            sweep_epoch_.load(std::memory_order_acquire);
        if (epoch != seen_sweep_epoch) {
          seen_sweep_epoch = epoch;
          sweep_own(wid, pending, released, rng);
          sweeps_done_.fetch_add(1, std::memory_order_release);
        }
        if (released) {
          retry_pending(pending, rng);
          // Capacity we released may satisfy another worker's pending
          // list; nudge the fleet.
          if (workers_ > 1) h.doorbell.signal();
        }
        expire_pending(pending);
        if (h.shutdown.load(std::memory_order_acquire)) break;
        if (processed != 0) continue;
        // Idle: eventcount on the doorbell. The re-check between
        // prepare and commit is a full rescan of our rings; the timed
        // sleep doubles as the liveness-sweep heartbeat.
        const std::uint32_t seen = h.doorbell.prepare_wait();
        bool nonempty = false;
        for (std::uint32_t r = wid; r < seg_.config().max_clients;
             r += workers_) {
          ClientSlot& cs = seg_.client_slot(r);
          if (seg_.request_ring(r).try_begin_pop(
                  cs.req_head.load(std::memory_order_relaxed)) != nullptr) {
            nonempty = true;
            break;
          }
        }
        if (nonempty || h.shutdown.load(std::memory_order_acquire) ||
            migrating_.load(std::memory_order_acquire)) {
          // (migrating_ here keeps a worker that raced past the
          // coordinator's doorbell signal from sleeping out the whole
          // heartbeat while the migration waits on its checkin.)
          h.doorbell.cancel_wait();
          continue;
        }
        bool swept_released = false;
        sweep_own(wid, pending, swept_released, rng);
        if (swept_released) {
          h.doorbell.cancel_wait();
          retry_pending(pending, rng);
          continue;
        }
        idle_parks_.fetch_add(1, std::memory_order_relaxed);
        // The 50ms sweep heartbeat, shortened to the nearest pending
        // deadline so expiries are answered on time.
        h.doorbell.commit_wait_for(seen, idle_park_ns(pending));
      }
    } catch (const std::exception& e) {
      {
        sync::SpinLockGuard guard(error_lock_);
        if (error_.empty()) error_ = e.what();
      }
      h.shutdown.store(1, std::memory_order_release);
      h.doorbell.signal();
    }
    // Anyone still parked server-side gets a definitive no.
    for (const auto& p : pending) {
      respond(p.ring, [&](ResponseSlot& out) {
        out.status = Status::kShutdown;
        out.count = 0;
        out.error_index = 0;
        out.more = 0;
      });
    }
  }

  SegmentView seg_;
  Structure& structure_;
  std::uint32_t workers_;
  std::uint64_t hold_words_ = 0;
  std::vector<std::thread> threads_;

  sync::SpinLock holds_lock_;
  std::vector<PidHolds> holds_;

  mutable sync::SpinLock error_lock_;
  std::string error_;

  std::atomic<std::uint64_t> sweep_epoch_{0};
  std::atomic<std::uint64_t> sweeps_done_{0};
  std::atomic<std::uint32_t> migrating_{0};
  std::atomic<std::uint64_t> migrate_checkins_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> granted_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> pending_parked_{0};
  std::atomic<std::uint64_t> pending_expired_{0};
  std::atomic<std::uint64_t> idle_parks_{0};
  std::atomic<std::uint64_t> reclaims_{0};
  std::atomic<std::uint64_t> reclaimed_names_{0};
  std::atomic<std::uint64_t> detaches_{0};
};

}  // namespace la::svc
