// The rename-service daemon's client library: a process-wide handle over
// a svc::SegmentView that satisfies the api::Renamer contract, so every
// existing harness (bench drive loops, stress scenarios, the model
// fuzzer, the contract tests) can drive the daemon unmodified.
//
// Ring discipline — the rings are SPSC, so each OS thread needs a ring
// of its own:
//   * the Client claims one ring at construction (the *shared* ring);
//   * the first time a thread issues an operation it tries to claim a
//     dedicated ring (CAS kFree -> kClaimed in the segment's slot
//     table), registered with the scale layer's ThreadAttachments so
//     thread exit pushes a kDetach and releases the slot;
//   * threads that find no free slot fall back to the shared ring under
//     a process-local SpinLock held across the whole request/response
//     exchange (degraded but correct; size max_clients for the expected
//     thread count). The shared ring is *only* used under that lock.
//     Note the lock is process-local: a multi-process deployment must
//     size max_clients so no process overflows, since two processes
//     cannot share a ring.
//
// Waiting for a response escalates spin -> yield -> park on the ring's
// resp_bell (eventcount protocol, see sync/futex.hpp); parks are timed,
// and each expiry probes the server's liveness (the shutdown flag, then
// the published server pid) so a server that dies without answering —
// SIGKILL sets no flag — turns into a distinct "server process died"
// runtime_error instead of an unbounded re-park loop.
//
// Bounded-wait Gets (get_for / get_batch_for) stamp the caller's
// absolute CLOCK_MONOTONIC deadline into the request; the *server*
// enforces it (pending-list expiry -> Status::kTimedOut), which the
// client maps back to the api::get_for timed-out refusal and counts in
// wait_stats().timeouts.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/renamer.hpp"
#include "scale/thread_cache.hpp"
#include "svc/segment.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/spin_lock.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace la::svc {

class Client {
 public:
  explicit Client(SegmentView segment) : seg_(segment) {
#if defined(__unix__) || defined(__APPLE__)
    pid_ = static_cast<std::uint32_t>(::getpid());
#else
    pid_ = 1;
#endif
    // Wait for the server to publish geometry (a forked child can race
    // Server::start()).
    sync::Backoff backoff;
    while (seg_.header().ready.load(std::memory_order_acquire) == 0) {
      if (seg_.header().shutdown.load(std::memory_order_acquire) != 0) {
        throw std::runtime_error("svc::Client: server shut down before ready");
      }
      backoff.pause();
    }
    shared_ring_ = claim_ring();
    if (shared_ring_ == kNoRing) {
      throw std::runtime_error(
          "svc::Client: no free client slot in segment (max_clients too "
          "small for this many processes)");
    }
    control_ = std::make_shared<scale::CacheControl>();
    control_->owner.store(this, std::memory_order_release);
    control_->flush = [](void* owner, std::uint32_t ring) {
      static_cast<Client*>(owner)->release_ring(ring);
    };
  }

  ~Client() {
    // Late thread exits must not touch a dead Client.
    control_->owner.store(nullptr, std::memory_order_release);
    release_ring(shared_ring_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- api::Renamer contract ----------------------------------------
  // The Rng parameter is accepted for contract compatibility but unused:
  // the server rolls the dice.

  template <typename Rng>
  GetResult get(Rng&) {
    GetResult out[1];
    exchange_get(out, 1, 0);  // server parks zero-grant requests: never 0
    return out[0];
  }

  template <typename Rng>
  std::size_t get_batch(Rng&, GetResult* out, std::size_t k) {
    if (k == 0) return 0;
    if (k > kMaxBatch) k = kMaxBatch;  // caller retries per the contract
    return exchange_get(out, static_cast<std::uint32_t>(k), 0);
  }

  // Bounded-wait Get: the deadline travels in the request slot and the
  // server's pending list enforces it. false = Status::kTimedOut came
  // back (the server could grant nothing before the instant passed).
  template <typename Rng>
  bool get_for(Rng&, GetResult& out, std::uint64_t deadline_ns) {
    GetResult buf[1];
    if (exchange_get(buf, 1, wire_deadline(deadline_ns)) == 0) return false;
    out = buf[0];
    return true;
  }

  // Bounded-wait batch Get: up to k names, 0 on a timed-out refusal.
  template <typename Rng>
  std::size_t get_batch_for(Rng&, GetResult* out, std::size_t k,
                            std::uint64_t deadline_ns) {
    if (k == 0) return 0;
    if (k > kMaxBatch) k = kMaxBatch;
    return exchange_get(out, static_cast<std::uint32_t>(k),
                        wire_deadline(deadline_ns));
  }

  void free(std::uint64_t name) { free_batch(&name, 1); }

  void free_batch(const std::uint64_t* names, std::size_t k) {
    std::size_t done = 0;
    while (done < k) {
      const std::uint32_t chunk = static_cast<std::uint32_t>(
          k - done < kMaxBatch ? k - done : kMaxBatch);
      exchange_free(names + done, chunk, done);
      done += chunk;
    }
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    const_cast<Client*>(this)->exchange_collect(out);
    return out.size();
  }

  std::uint64_t capacity() const {
    return seg_.header().capacity.load(std::memory_order_relaxed);
  }

  std::uint64_t total_slots() const {
    return seg_.header().total_slots.load(std::memory_order_relaxed);
  }

  api::WaitStats wait_stats() const {
    api::WaitStats w;
    w.wait_rounds = wait_rounds_.load(std::memory_order_relaxed);
    w.parks = parks_.load(std::memory_order_relaxed);
    w.timeouts = timeouts_.load(std::memory_order_relaxed);
    return w;
  }

 private:
  static constexpr std::uint32_t kNoRing = 0xFFFFFFFFu;

  // api::kNoDeadline means "no deadline", which the wire encodes as 0.
  static std::uint64_t wire_deadline(std::uint64_t deadline_ns) {
    return deadline_ns == api::kNoDeadline ? 0 : deadline_ns;
  }

  // ---- ring claim / release -----------------------------------------

  std::uint32_t claim_ring() {
    for (std::uint32_t r = 0; r < seg_.config().max_clients; ++r) {
      ClientSlot& cs = seg_.client_slot(r);
      std::uint32_t expected = ClientSlot::kFree;
      if (cs.state.compare_exchange_strong(expected, ClientSlot::kClaimed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        // Generation token before pid: the sweep reads pid first, so a
        // published pid always has its token in place.
        cs.claim_token.store(pid_start_time(pid_), std::memory_order_release);
        cs.pid.store(pid_, std::memory_order_release);
        return r;
      }
    }
    return kNoRing;
  }

  void release_ring(std::uint32_t ring) {
    if (ring == kNoRing) return;
    ClientSlot& cs = seg_.client_slot(ring);
    // Best-effort detach notice; skipped if the server is gone or the
    // ring is full (nothing downstream depends on it — slot state is
    // the source of truth).
    if (seg_.header().shutdown.load(std::memory_order_acquire) == 0) {
      auto req_ring = seg_.request_ring(ring);
      const std::uint32_t pos = cs.req_tail.load(std::memory_order_relaxed);
      if (RequestSlot* slot = req_ring.try_begin_push(pos)) {
        slot->pid = pid_;
        slot->op = Op::kDetach;
        slot->count = 0;
        req_ring.commit_push(*slot, pos);
        cs.req_tail.store(pos + 1, std::memory_order_relaxed);
        seg_.header().doorbell.signal();
      }
    }
    cs.pid.store(0, std::memory_order_relaxed);
    cs.claim_token.store(0, std::memory_order_relaxed);
    cs.state.store(ClientSlot::kFree, std::memory_order_release);
  }

  // The calling thread's ring plus whether the shared-ring lock is held.
  struct Port {
    std::uint32_t ring;
    bool locked;
  };

  Port acquire_port() {
    auto& att = scale::ThreadAttachments::current();
    std::uint32_t ring = att.find(control_.get());
    if (ring == scale::ThreadAttachments::kNotAttached) {
      ring = claim_ring();
      att.attach(control_, ring == kNoRing
                               ? scale::ThreadAttachments::kNoCache
                               : ring);
    }
    if (ring == kNoRing || ring == scale::ThreadAttachments::kNoCache) {
      shared_lock_.lock();
      return Port{shared_ring_, true};
    }
    return Port{ring, false};
  }

  void release_port(const Port& port) {
    if (port.locked) shared_lock_.unlock();
  }

  // ---- the exchange primitives --------------------------------------

  void push_request(std::uint32_t r, Op op, std::uint32_t count,
                    const std::uint64_t* names,
                    std::uint64_t deadline_ns = 0) {
    ClientSlot& cs = seg_.client_slot(r);
    auto ring = seg_.request_ring(r);
    const std::uint32_t pos = cs.req_tail.load(std::memory_order_relaxed);
    sync::Backoff backoff;
    RequestSlot* slot;
    while ((slot = ring.try_begin_push(pos)) == nullptr) {
      // A full request ring normally clears in microseconds (the server
      // drains it), so spinning briefly is the fast path. But "briefly"
      // is unbounded if the server is gone: a multi-exchange stream
      // (collect's chunked drain) can re-enter here after the server
      // died between chunks, and a loop with no liveness probe wedges
      // forever. Same escalation as await_response: once the spin/yield
      // tiers are exhausted, probe shutdown and the published server
      // pid, then keep spinning.
      wait_rounds_.fetch_add(1, std::memory_order_relaxed);
      if (backoff.should_park()) {
        if (seg_.header().shutdown.load(std::memory_order_acquire) != 0) {
          throw std::runtime_error(
              "svc::Client: server shut down mid-request");
        }
        const std::uint32_t server =
            seg_.header().server_pid.load(std::memory_order_acquire);
        if (server != 0 && !pid_alive(server)) {
          throw std::runtime_error(
              "svc::Client: server process died mid-request (request ring "
              "full and server pid " +
              std::to_string(server) + " is gone)");
        }
        backoff.reset();
      }
      backoff.pause();
    }
    slot->pid = pid_;
    slot->op = op;
    slot->count = count;
    slot->deadline_ns = deadline_ns;
    if (names != nullptr) {
      std::memcpy(slot->names, names, sizeof(std::uint64_t) * count);
    }
    ring.commit_push(*slot, pos);
    cs.req_tail.store(pos + 1, std::memory_order_relaxed);
    seg_.header().doorbell.signal();
  }

  // Block until the response at this ring's head is published, park-tier
  // included. Returns the slot; caller copies out then calls
  // finish_response().
  ResponseSlot* await_response(std::uint32_t r) {
    ClientSlot& cs = seg_.client_slot(r);
    auto ring = seg_.response_ring(r);
    const std::uint32_t pos = cs.resp_head.load(std::memory_order_relaxed);
    sync::Backoff backoff;
    for (;;) {
      if (ResponseSlot* slot = ring.try_begin_pop(pos)) return slot;
      if (!backoff.should_park()) {
        wait_rounds_.fetch_add(1, std::memory_order_relaxed);
        backoff.pause();
        continue;
      }
      const std::uint32_t seen = cs.resp_bell.prepare_wait();
      if (ring.try_begin_pop(pos) != nullptr) {
        cs.resp_bell.cancel_wait();
        continue;
      }
      if (seg_.header().shutdown.load(std::memory_order_acquire) != 0) {
        cs.resp_bell.cancel_wait();
        // One last drain chance: the server answers parked requests with
        // kShutdown before exiting.
        if (ring.try_begin_pop(pos) != nullptr) continue;
        throw std::runtime_error("svc::Client: server shut down mid-request");
      }
      parks_.fetch_add(1, std::memory_order_relaxed);
      // Timed so a dead server is *detected*, not slept through. A
      // clean stop sets the shutdown flag (caught above); a SIGKILLed
      // or crashed server sets nothing, so every expired park probes
      // the published server pid and turns its death into a distinct
      // error instead of re-parking forever.
      if (cs.resp_bell.commit_wait_for(seen, 100'000'000ull) ==
          sync::WaitResult::kTimedOut) {
        if (ring.try_begin_pop(pos) != nullptr) continue;
        if (seg_.header().shutdown.load(std::memory_order_acquire) != 0) {
          continue;  // loop into the shutdown drain/throw above
        }
        const std::uint32_t server =
            seg_.header().server_pid.load(std::memory_order_acquire);
        if (server != 0 && !pid_alive(server)) {
          throw std::runtime_error(
              "svc::Client: server process died mid-request (no response "
              "and server pid " +
              std::to_string(server) + " is gone)");
        }
      }
    }
  }

  void finish_response(std::uint32_t r, ResponseSlot* slot) {
    ClientSlot& cs = seg_.client_slot(r);
    const std::uint32_t pos = cs.resp_head.load(std::memory_order_relaxed);
    seg_.response_ring(r).commit_pop(*slot, pos);
    cs.resp_head.store(pos + 1, std::memory_order_relaxed);
  }

  std::size_t exchange_get(GetResult* out, std::uint32_t want,
                           std::uint64_t deadline_ns) {
    const Port port = acquire_port();
    std::size_t granted = 0;
    try {
      push_request(port.ring, Op::kGetK, want, nullptr, deadline_ns);
      ResponseSlot* resp = await_response(port.ring);
      const Status status = resp->status;
      granted = resp->count;
      for (std::size_t i = 0; i < granted; ++i) {
        out[i].name = resp->names[i];
        out[i].probes = resp->probes[i];
        out[i].deepest_batch = 0;
        out[i].used_backup = false;
      }
      finish_response(port.ring, resp);
      if (status == Status::kShutdown) {
        throw std::runtime_error("svc::Client: get refused, server stopping");
      }
      if (status == Status::kTimedOut) {
        // The timed-out refusal, not an error: get_for/get_batch_for
        // surface it as false/0 per the api contract.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        granted = 0;
      }
    } catch (...) {
      release_port(port);
      throw;
    }
    release_port(port);
    return granted;
  }

  void exchange_free(const std::uint64_t* names, std::uint32_t count,
                     std::size_t base_index) {
    const Port port = acquire_port();
    Status status = Status::kOk;
    std::size_t bad = 0;
    try {
      push_request(port.ring, Op::kFreeK, count, names);
      ResponseSlot* resp = await_response(port.ring);
      status = resp->status;
      bad = base_index + resp->error_index;
      finish_response(port.ring, resp);
    } catch (...) {
      release_port(port);
      throw;
    }
    release_port(port);
    switch (status) {
      case Status::kOk:
        return;
      case Status::kOutOfRange:
        throw std::out_of_range(
            "svc::Client: free of out-of-range name (batch index " +
            std::to_string(bad) + ")");
      case Status::kNotHeld:
        throw std::logic_error(
            "svc::Client: double free (batch index " + std::to_string(bad) +
            ")");
      case Status::kForeign:
        throw std::logic_error(
            "svc::Client: free of a name held by another client (batch "
            "index " +
            std::to_string(bad) + ")");
      case Status::kShutdown:
        throw std::runtime_error("svc::Client: free refused, server stopping");
      case Status::kTimedOut:
        // Frees carry no deadline; a kTimedOut here is a server bug.
        throw std::logic_error("svc::Client: unexpected kTimedOut on free");
    }
  }

  void exchange_collect(std::vector<std::uint64_t>& out) {
    out.clear();
    const Port port = acquire_port();
    try {
      push_request(port.ring, Op::kCollect, 0, nullptr);
      for (;;) {
        ResponseSlot* resp = await_response(port.ring);
        for (std::uint32_t i = 0; i < resp->count; ++i) {
          out.push_back(resp->names[i]);
        }
        const bool more = resp->more != 0;
        finish_response(port.ring, resp);
        if (!more) break;
      }
    } catch (...) {
      release_port(port);
      throw;
    }
    release_port(port);
  }

  SegmentView seg_;
  std::uint32_t pid_ = 0;
  std::uint32_t shared_ring_ = kNoRing;
  std::shared_ptr<scale::CacheControl> control_;
  sync::SpinLock shared_lock_;
  mutable std::atomic<std::uint64_t> wait_rounds_{0};
  mutable std::atomic<std::uint64_t> parks_{0};
  mutable std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace la::svc
