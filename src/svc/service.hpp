// In-process packaging of the whole rename-service stack: one object
// that owns the shared-memory segment, the backing structure, the
// server workers, and a client — and exposes the client's
// api::Renamer surface. This is what the registry instantiates for the
// `svc:sharded:*` entries, so every existing harness (benches, stress
// matrix, model fuzzer, contract tests) drives the daemon through the
// real wire protocol without knowing it: the "structure" they call
// get()/free() on is a svc::Client round-tripping cache-padded slots
// through the segment to a worker thread.
//
// Multi-process deployments skip this wrapper and compose the pieces
// directly (create Segment, fork, Server::start() in the parent,
// svc::Client in the children) — see bench/svc_churn.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/renamer.hpp"
#include "svc/client.hpp"
#include "svc/segment.hpp"
#include "svc/server.hpp"

namespace la::svc {

struct ServiceConfig {
  SegmentConfig segment{};
  std::uint32_t server_threads = 1;
};

template <typename Inner>
class ServiceRenamer {
  static_assert(api::is_renamer_v<Inner>,
                "ServiceRenamer fronts the api::Renamer contract");

 public:
  template <typename Factory>
  ServiceRenamer(const ServiceConfig& config, Factory&& make_inner)
      : segment_(config.segment),
        inner_(std::forward<Factory>(make_inner)()),
        server_(segment_.view(), *inner_, config.server_threads) {
    server_.start();
    client_ = std::make_unique<Client>(segment_.view());
  }

  ~ServiceRenamer() {
    client_.reset();  // detaches while the server still drains rings
    server_.stop();
  }

  ServiceRenamer(const ServiceRenamer&) = delete;
  ServiceRenamer& operator=(const ServiceRenamer&) = delete;

  // ---- api::Renamer contract, delegated over the wire ----------------

  template <typename Rng>
  GetResult get(Rng& rng) {
    return client_->get(rng);
  }

  template <typename Rng>
  std::size_t get_batch(Rng& rng, GetResult* out, std::size_t k) {
    return client_->get_batch(rng, out, k);
  }

  template <typename Rng>
  bool get_for(Rng& rng, GetResult& out, std::uint64_t deadline_ns) {
    return client_->get_for(rng, out, deadline_ns);
  }

  template <typename Rng>
  std::size_t get_batch_for(Rng& rng, GetResult* out, std::size_t k,
                            std::uint64_t deadline_ns) {
    return client_->get_batch_for(rng, out, k, deadline_ns);
  }

  void free(std::uint64_t name) { client_->free(name); }

  void free_batch(const std::uint64_t* names, std::size_t k) {
    client_->free_batch(names, k);
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    return client_->collect(out);
  }

  std::uint64_t capacity() const { return client_->capacity(); }
  std::uint64_t total_slots() const { return client_->total_slots(); }

  // Client-side response waiting plus the inner structure's gate waits
  // (the latter accumulate on the server workers).
  api::WaitStats wait_stats() const {
    api::WaitStats w = client_->wait_stats();
    if constexpr (api::has_wait_stats_v<Inner>) {
      const api::WaitStats inner = inner_->wait_stats();
      w.wait_rounds += inner.wait_rounds;
      w.parks += inner.parks;
      // Not inner.timeouts: the server's GetKs carry no deadline (the
      // pending list enforces expiry), so inner timeouts can't occur;
      // the client's count is the caller-facing one either way.
    }
    return w;
  }

  ServerStats server_stats() const { return server_.stats(); }
  Server<Inner>& server() { return server_; }
  Client& client() { return *client_; }

 private:
  Segment segment_;
  std::unique_ptr<Inner> inner_;
  Server<Inner> server_;
  std::unique_ptr<Client> client_;
};

}  // namespace la::svc
