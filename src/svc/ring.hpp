// Single-producer single-consumer ring over raw (shared-memory) slots,
// synchronized per slot by an acquire/release sequence number — the
// Vyukov handshake restricted to SPSC:
//
//   init:      slot[i].seq = i                      (i in [0, capacity))
//   producer:  wait slot[p & mask].seq == p         (acquire: slot free)
//              write payload
//              slot.seq.store(p + 1, release)       (publish), p += 1
//   consumer:  wait slot[c & mask].seq == c + 1     (acquire: published)
//              read payload
//              slot.seq.store(c + capacity, release) (recycle), c += 1
//
// The slot's seq is the only shared synchronization word: the producer's
// release store publishes the payload, the consumer's acquire load
// receives it, and the recycle store hands the slot back for lap p/cap+1.
// Positions are free-running uint32s; with power-of-two capacities the
// mod-2^32 arithmetic stays exact across wraparound (test_svc_ring spins
// multiple laps at capacities 2 and 64, straight through the uint32
// boundary, to pin this).
//
// Capacity 1 is rejected: with one slot, "published at p" (seq == p+1)
// and "free for p+1" (seq == p+1) are the same value, so a producer one
// position ahead would overwrite the unconsumed slot and the consumer
// would wedge. The handshake needs capacity >= 2 to keep the two states
// a lap apart (test_svc_ring pins the rejection too).
//
// The ring view is stateless over the slot array — cursors belong to the
// endpoints. Each endpoint persists its cursor in shared memory (see
// segment.hpp RingCursors) so a ring can be handed from one claimant to
// the next (thread exit -> new thread, dead process -> reclaim) without
// resetting slots mid-stream.
//
// Blocking is the callers' business (the client parks on the response
// bell, the server on the global doorbell): the view only offers
// try_/commit_ pairs so it composes with the eventcount protocol.
#pragma once

#include <atomic>
#include <cstdint>

namespace la::svc {

// True iff `capacity` is a usable ring size: a power of two >= 2 (one
// slot cannot distinguish published-at-p from free-for-p+1; see above).
constexpr bool valid_ring_capacity(std::uint32_t capacity) {
  return capacity >= 2 && (capacity & (capacity - 1)) == 0;
}

// Slot must expose an atomic `seq` word with the std::atomic<uint32_t>
// interface (protocol.hpp). The verify harness instantiates this very
// template over a slot whose seq is a verify::atom<uint32_t>, so the
// cursor handshake below — including the uint32 wraparound arithmetic —
// is model-checked exactly as written, not via a hand-copied model.
template <typename Slot>
class RingView {
 public:
  RingView(Slot* slots, std::uint32_t capacity)
      : slots_(slots), mask_(capacity - 1), capacity_(capacity) {}

  std::uint32_t capacity() const { return capacity_; }

  // Called once by the segment creator before any endpoint attaches.
  void initialize() {
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  // Reset to "empty at position `pos`" — the dead-client reclaim path,
  // where the producer is provably gone and half-written slots must be
  // discarded. Never valid while the producer lives.
  void reset_empty_at(std::uint32_t pos) {
    for (std::uint32_t j = 0; j < capacity_; ++j) {
      slots_[(pos + j) & mask_].seq.store(pos + j, std::memory_order_relaxed);
    }
  }

  // Producer: the slot to fill at position `pos`, or nullptr while the
  // consumer is still a full lap behind (ring full).
  Slot* try_begin_push(std::uint32_t pos) {
    Slot& slot = slots_[pos & mask_];
    return slot.seq.load(std::memory_order_acquire) == pos ? &slot : nullptr;
  }

  // Publish the payload written into `slot` (from try_begin_push(pos)).
  void commit_push(Slot& slot, std::uint32_t pos) {
    slot.seq.store(pos + 1, std::memory_order_release);
  }

  // Consumer: the published slot at position `pos`, or nullptr while the
  // producer has not reached it.
  Slot* try_begin_pop(std::uint32_t pos) {
    Slot& slot = slots_[pos & mask_];
    return slot.seq.load(std::memory_order_acquire) == pos + 1 ? &slot
                                                               : nullptr;
  }

  // Recycle the slot read at `pos` back to the producer for the next lap.
  void commit_pop(Slot& slot, std::uint32_t pos) {
    slot.seq.store(pos + capacity_, std::memory_order_release);
  }

 private:
  Slot* slots_;
  std::uint32_t mask_;
  std::uint32_t capacity_;
};

}  // namespace la::svc
