// The shared-memory segment behind the rename-service daemon: one
// anonymous MAP_SHARED mapping holding a header, a claim table of client
// slots, and per-client SPSC request/response ring storage. The segment
// is created by the server process *before* it forks clients, so every
// child inherits the mapping at the same address and simply constructs a
// svc::Client view over it — no name registration or path handshake.
//
// Layout (all offsets cache-line aligned, computed from SegmentConfig):
//
//   [Header              ]  magic/version/geometry, ready + shutdown
//                           flags, the global server doorbell, and a
//                           small scratch array harnesses use to
//                           coordinate across fork()
//   [ClientSlot x max    ]  claim state, owning pid, persisted ring
//                           cursors, and the per-ring response bell
//   [RequestSlot  x max * depth]   client -> server ring storage
//   [ResponseSlot x max * depth]   server -> client ring storage
//
// Claiming: a thread CASes a slot's state kFree -> kClaimed, stores its
// pid, and adopts the persisted cursors — rings survive claimant
// turnover (thread exit, slot reuse by a later thread or process)
// without slot resets, because cursors are continuous across claimants.
// Only the dead-client reclaim path (server-side, producer provably
// gone) ever rewrites ring slots wholesale.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "svc/protocol.hpp"
#include "svc/ring.hpp"
#include "sync/cache.hpp"
#include "sync/futex.hpp"

namespace la::svc {

inline constexpr std::uint64_t kSegmentMagic = 0x4C41'5356'4331ull;  // LASVC1
inline constexpr std::uint32_t kScratchWords = 16;

struct SegmentConfig {
  std::uint32_t max_clients = 16;   // client rings in the segment
  std::uint32_t ring_depth = 8;     // slots per ring (power of two)
};

struct alignas(sync::kCacheLineSize) Header {
  std::uint64_t magic = 0;
  std::uint32_t version = 1;
  std::uint32_t max_clients = 0;
  std::uint32_t ring_depth = 0;
  // Structure geometry, published by the server before `ready` so a
  // forked client can answer capacity()/total_slots() locally.
  std::atomic<std::uint64_t> capacity{0};
  std::atomic<std::uint64_t> total_slots{0};
  std::atomic<std::uint32_t> ready{0};
  std::atomic<std::uint32_t> shutdown{0};
  // The server process, published at start(): clients whose timed
  // response park expires probe it to distinguish "slow server" from
  // "server died without setting shutdown" (SIGKILL, crash).
  std::atomic<std::uint32_t> server_pid{0};
  // The server's eventcount: clients signal after every request push;
  // idle server workers park here (with a timeout, doubling as the
  // liveness-sweep heartbeat).
  sync::FutexWord doorbell{true};
  // Free-form cross-process coordination for harnesses (svc_churn's
  // "child is holding" flags, op totals). Not used by the protocol.
  std::atomic<std::uint64_t> scratch[kScratchWords] = {};
};

struct alignas(sync::kCacheLineSize) ClientSlot {
  static constexpr std::uint32_t kFree = 0;
  static constexpr std::uint32_t kClaimed = 1;

  std::atomic<std::uint32_t> state{kFree};
  std::atomic<std::uint32_t> pid{0};
  // Claim generation token: the claimant's kernel start time
  // (svc::pid_start_time), stamped with the pid at claim. The dead-client
  // sweep treats a mismatch between this and the *current* owner of the
  // pid as proof of death — a recycled pid fools kill(pid, 0) but gets a
  // fresh start time. 0 = token unavailable (non-Linux); pid-only
  // liveness then applies.
  std::atomic<std::uint64_t> claim_token{0};
  // Persisted ring cursors (see ring.hpp): each is written only by its
  // endpoint; the claim CAS publishes them to the next claimant.
  std::atomic<std::uint32_t> req_tail{0};   // producer: client
  std::atomic<std::uint32_t> req_head{0};   // consumer: server
  std::atomic<std::uint32_t> resp_tail{0};  // producer: server
  std::atomic<std::uint32_t> resp_head{0};  // consumer: client
  // The client's eventcount: the server signals after every response
  // push; a client out of spin/yield budget parks here.
  sync::FutexWord resp_bell{true};
};

// A non-owning, trivially copyable window onto a mapped segment. Both
// sides of a fork hold the same view (same base address).
class SegmentView {
 public:
  SegmentView() = default;
  SegmentView(void* base, const SegmentConfig& config)
      : base_(static_cast<char*>(base)), config_(config) {}

  Header& header() const { return *reinterpret_cast<Header*>(base_); }
  const SegmentConfig& config() const { return config_; }

  ClientSlot& client_slot(std::uint32_t i) const {
    return reinterpret_cast<ClientSlot*>(base_ + client_slots_offset())[i];
  }

  RingView<RequestSlot> request_ring(std::uint32_t i) const {
    auto* slots = reinterpret_cast<RequestSlot*>(base_ + request_offset());
    return RingView<RequestSlot>(slots + std::size_t{i} * config_.ring_depth,
                                 config_.ring_depth);
  }

  RingView<ResponseSlot> response_ring(std::uint32_t i) const {
    auto* slots = reinterpret_cast<ResponseSlot*>(base_ + response_offset());
    return RingView<ResponseSlot>(slots + std::size_t{i} * config_.ring_depth,
                                  config_.ring_depth);
  }

  static std::size_t bytes_required(const SegmentConfig& config);

 private:
  std::size_t client_slots_offset() const { return sizeof(Header); }
  std::size_t request_offset() const {
    return client_slots_offset() + sizeof(ClientSlot) * config_.max_clients;
  }
  std::size_t response_offset() const {
    return request_offset() +
           sizeof(RequestSlot) * std::size_t{config_.max_clients} *
               config_.ring_depth;
  }

  char* base_ = nullptr;
  SegmentConfig config_{};
};

// The owning side: creates (and on destruction unmaps) the anonymous
// shared mapping and placement-initializes every structure in it.
// Create the Segment, fork clients, then start the Server — children
// spin on header().ready before touching the rings.
class Segment {
 public:
  explicit Segment(const SegmentConfig& config);
  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  SegmentView view() const { return SegmentView(base_, config_); }

 private:
  SegmentConfig config_;
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace la::svc
