// Probe-sequence random number generators. The paper's implementation
// uses Marsaglia xorshift and Park-Miller (Lehmer), "alternatively, and
// found no difference between the results" (§6); PCG32 is carried as a
// modern control for the ablation bench.
//
// All generators expose the std-style static min()/max() and a
// std::uint64_t operator(), so bounded() / canonical() work generically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace la::rng {

// Marsaglia xorshift64*, period 2^64 - 1. The multiplier scrambles the
// low bits, which bounded() feeds straight into batch offsets.
class MarsagliaXorshift {
 public:
  using result_type = std::uint64_t;

  explicit MarsagliaXorshift(std::uint64_t seed)
      : state_(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}

  std::uint64_t operator()() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

// Park-Miller minimal standard generator (Lehmer): x <- 48271 x mod M31.
class Lehmer {
 public:
  using result_type = std::uint64_t;

  explicit Lehmer(std::uint64_t seed) : state_(seed % kModulus) {
    if (state_ == 0) state_ = 1;
  }

  std::uint64_t operator()() {
    state_ = (state_ * 48271ull) % kModulus;
    return state_;
  }

  static constexpr std::uint64_t min() { return 1; }
  static constexpr std::uint64_t max() { return kModulus - 1; }

 private:
  static constexpr std::uint64_t kModulus = 2147483647ull;  // 2^31 - 1
  std::uint64_t state_;
};

// PCG32 (O'Neill): 64-bit LCG state, xorshift-rotate output.
class Pcg32 {
 public:
  using result_type = std::uint64_t;

  explicit Pcg32(std::uint64_t seed,
                 std::uint64_t stream = 0xDA3E39CB94B95BDBull)
      : state_(0), inc_((stream << 1) | 1) {
    (*this)();
    state_ += seed;
    (*this)();
  }

  std::uint64_t operator()() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return 0xFFFFFFFFull; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

// Uniform draw in [0, n). Multiply-shift instead of modulo: no divide on
// the Get hot path. Bias is <= n / range, negligible for every array size
// the benches use.
template <typename Rng>
std::uint64_t bounded(Rng& rng, std::uint64_t n) {
  if (n <= 1) return 0;
  constexpr std::uint64_t range = Rng::max() - Rng::min();
  if constexpr (range == std::numeric_limits<std::uint64_t>::max()) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(rng()) * n) >> 64);
  } else {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(rng() - Rng::min()) * n) /
        (range + 1));
  }
}

// Uniform double in [0, 1).
template <typename Rng>
double canonical(Rng& rng) {
  const double range = static_cast<double>(Rng::max() - Rng::min()) + 1.0;
  double u = static_cast<double>(rng() - Rng::min()) / range;
  if (u >= 1.0) u = 0.99999999999999989;
  return u;
}

// Zipf(s) rank sampler: inverse CDF over a cumulative 1/rank^s weight
// table, built once, O(log ranks) per draw. The one implementation of
// this math — sim::Schedule::skewed draws process ids from it and the
// bench hold-time workloads draw durations.
class ZipfTable {
 public:
  ZipfTable(std::uint32_t ranks, double exponent) {
    if (ranks == 0) ranks = 1;
    cumulative_.reserve(ranks);
    double total = 0.0;
    double weighted = 0.0;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      const double rank = static_cast<double>(r) + 1.0;
      const double w = 1.0 / std::pow(rank, exponent);
      total += w;
      weighted += rank * w;
      cumulative_.push_back(total);
    }
    mean_rank_ = weighted / total;
  }

  // Rank index in [0, ranks); 0 is the hottest rank.
  template <typename Rng>
  std::uint32_t draw(Rng& rng) const {
    const double u = canonical(rng) * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::uint32_t>(it - cumulative_.begin());
  }

  // E[rank] with ranks counted from 1 — what draw() + 1 averages to;
  // lets callers rescale draws to a requested mean.
  double mean_rank() const { return mean_rank_; }

 private:
  std::vector<double> cumulative_;
  double mean_rank_ = 0.0;
};

// SplitMix64 finalizer — decorrelates (seed, salt) pairs so per-thread /
// per-trial streams never overlap even for adjacent seeds.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

enum class RngKind { kMarsaglia, kLehmer, kPcg32 };

inline const char* rng_kind_name(RngKind kind) {
  switch (kind) {
    case RngKind::kMarsaglia: return "marsaglia";
    case RngKind::kLehmer: return "lehmer";
    case RngKind::kPcg32: return "pcg32";
  }
  return "?";
}

inline RngKind parse_rng_kind(const std::string& name) {
  if (name == "marsaglia" || name == "xorshift") return RngKind::kMarsaglia;
  if (name == "lehmer" || name == "park-miller" || name == "parkmiller") {
    return RngKind::kLehmer;
  }
  if (name == "pcg32" || name == "pcg") return RngKind::kPcg32;
  throw std::invalid_argument("unknown rng kind: " + name);
}

}  // namespace la::rng
