// Checkpoint/restore over the Renamer contract: api::save captures a
// structure's logical hold set into a ckpt::Image; api::restore adopts
// an image into a freshly built structure — possibly one with a
// *different* configuration (more shards, bigger capacity, different
// inner structure), which is what makes live re-sharding migration a
// save + rebuild + restore (src/ckpt/any_renamer.hpp drives exactly
// that inside svc::Server::migrate).
//
// The contract restore depends on is name identity: an adopted name
// keeps its numeric value, decomposed by the *target's* geometry. A
// holder that got name 37 before a migration frees name 37 after it —
// traces that span the boundary replay cleanly through
// stress::check_trace. The flip side: an image only fits targets where
// every held name still routes to a real slot (name < total_slots and,
// for sharded targets, the per-shard local bound); restore rejects a
// misfit with ckpt::ImageError before or while adopting, never UB.
//
// Trait surface:
//   has_adopt_held_v<T>  T::adopt_held(uint64_t) exists — the structure
//                        can re-seed one held slot by name.
//   has_snapshot_v<T>    full Renamer + adoption: save *and* restore
//                        apply. SplitterRenamer has no adoption path
//                        (a fresh grid walk would re-issue adopted
//                        cells), so it and sharded:splitter are
//                        non-restorable by construction; svc clients
//                        snapshot on the server side.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "api/renamer.hpp"
#include "ckpt/image.hpp"

namespace la::api {

template <typename T, typename = void>
struct has_adopt_held : std::false_type {};

template <typename T>
struct has_adopt_held<
    T, std::void_t<decltype(std::declval<T&>().adopt_held(std::uint64_t{}))>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_adopt_held_v = has_adopt_held<T>::value;

template <typename T>
inline constexpr bool has_snapshot_v = is_renamer_v<T> && has_adopt_held_v<T>;

// Optional shard-geometry surface (the scale layer); recorded in the
// image for diagnostics and early misfit rejection.
template <typename T, typename = void>
struct has_shard_geometry : std::false_type {};

template <typename T>
struct has_shard_geometry<
    T, std::void_t<decltype(std::declval<const T&>().num_shards()),
                   decltype(std::declval<const T&>().shard_stride())>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_shard_geometry_v = has_shard_geometry<T>::value;

// Capture the structure's logical hold set. Exact at quiescence; under
// concurrent churn it is the same racy snapshot collect() gives — a
// migration path must quiesce writers first (svc::Server::migrate
// parks its workers before calling this). `structure_tag` is the
// registry key recorded in the image for provenance.
template <typename Structure>
ckpt::Image save(const Structure& structure, std::string structure_tag = {}) {
  static_assert(is_renamer_v<Structure>,
                "api::save requires the Renamer contract");
  ckpt::Image image;
  image.structure = std::move(structure_tag);
  image.capacity = structure.capacity();
  image.total_slots = structure.total_slots();
  if constexpr (has_shard_geometry_v<Structure>) {
    image.shards = structure.num_shards();
    image.shard_stride = structure.shard_stride();
  }
  structure.collect(image.held);
  std::sort(image.held.begin(), image.held.end());
  return image;
}

// Adopt every held name of `image` into `structure`, which must be
// freshly built (empty). Throws ckpt::ImageError when the image cannot
// fit the target — too many holds for its capacity, a name that does
// not route to any slot, a duplicate, a shard gate overflow — and
// leaves the target in an unspecified partially adopted state on
// failure (rebuild it; nothing was shared yet by precondition).
template <typename Structure>
void restore(Structure& structure, const ckpt::Image& image) {
  static_assert(has_snapshot_v<Structure>,
                "api::restore requires a Renamer with an adoption path "
                "(has_snapshot_v)");
  if (image.held.size() > structure.capacity()) {
    throw ckpt::ImageError(
        "ckpt: image holds " + std::to_string(image.held.size()) +
        " names, target capacity is " +
        std::to_string(structure.capacity()));
  }
  const std::uint64_t bound = structure.total_slots();
  const std::uint64_t* prev = nullptr;
  for (const std::uint64_t& name : image.held) {
    if (name >= bound) {
      throw ckpt::ImageError("ckpt: held name " + std::to_string(name) +
                             " outside target total_slots " +
                             std::to_string(bound));
    }
    if (prev != nullptr && name <= *prev) {
      throw ckpt::ImageError("ckpt: held name " + std::to_string(name) +
                             " duplicate or unsorted in image");
    }
    prev = &name;
  }
  std::vector<std::uint64_t> existing;
  if (structure.collect(existing) != 0) {
    throw ckpt::ImageError("ckpt: restore target is not empty (" +
                           std::to_string(existing.size()) +
                           " names already held)");
  }
  try {
    for (const std::uint64_t name : image.held) structure.adopt_held(name);
  } catch (const std::logic_error& e) {
    // out_of_range (per-shard local bound), length_error (gate
    // overflow), duplicate-grant logic errors: all mean the image does
    // not fit this target configuration.
    throw ckpt::ImageError(std::string("ckpt: restore failed: ") + e.what());
  }
}

}  // namespace la::api
