#include "api/registry.hpp"

#include <utility>

namespace la::api {
namespace {

template <typename Entry>
StructureInfo info_for() {
  return StructureInfo{Entry::kName, Entry::kLabel,
                       std::vector<std::string_view>(Entry::kAliases.begin(),
                                                     Entry::kAliases.end()),
                       Entry::kSummary};
}

template <std::size_t... Is>
std::vector<StructureInfo> build_infos(std::index_sequence<Is...>) {
  return {info_for<std::tuple_element_t<Is, detail::Entries>>()...};
}

}  // namespace

const std::vector<StructureInfo>& registered_structures() {
  static const std::vector<StructureInfo> infos =
      build_infos(std::make_index_sequence<detail::kEntryCount>{});
  return infos;
}

std::vector<std::string> registered_names() {
  std::vector<std::string> names;
  names.reserve(registered_structures().size());
  for (const auto& info : registered_structures()) {
    names.emplace_back(info.name);
  }
  return names;
}

std::string accepted_names_text() {
  std::string text;
  for (const auto& info : registered_structures()) {
    if (!text.empty()) text += "|";
    text += info.name;
  }
  text += "; aliases:";
  for (const auto& info : registered_structures()) {
    for (const auto alias : info.aliases) {
      text += " ";
      text += alias;
    }
  }
  return text;
}

std::string resolve_structure(const std::string& name_or_alias) {
  for (const auto& info : registered_structures()) {
    if (name_or_alias == info.name) return std::string(info.name);
    for (const auto alias : info.aliases) {
      if (name_or_alias == alias) return std::string(info.name);
    }
  }
  throw std::invalid_argument("unknown structure: " + name_or_alias +
                              " (expected " + accepted_names_text() + ")");
}

std::string_view structure_label(std::string_view canonical) {
  for (const auto& info : registered_structures()) {
    if (canonical == info.name) return info.label;
  }
  return "?";
}

}  // namespace la::api
