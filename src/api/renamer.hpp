// The unified Renamer API: the static-interface contract every renaming
// structure in this library conforms to, the RenamerConfig all factories
// construct from, and the RNG-kind dispatcher.
//
// A Renamer is any type providing
//
//   GetResult    get(Rng&)                       (templated over Rng)
//   void         free(std::uint64_t name)        (throws std::out_of_range
//                                                 on bad names and
//                                                 std::logic_error on
//                                                 double-free)
//   std::size_t  collect(std::vector<std::uint64_t>&) const
//   std::uint64_t capacity() const               (contention bound n)
//   std::uint64_t total_slots() const            (names are < total_slots)
//
// The contract is *static* — checked with the detection idiom below and
// enforced by the registry — so the bench drivers' inner loops stay fully
// templated with zero virtual calls. Structures may additionally expose a
// batch-occupancy introspection surface (batch_occupancy()); harnesses
// detect it via has_batch_occupancy_v and enable the paper's balance
// metrics only where it exists.
//
// Batch operations (optional overrides, generic fallback below):
//
//   std::size_t get_batch(Rng&, GetResult* out, std::size_t k)
//   void        free_batch(const std::uint64_t* names, std::size_t k)
//
// get_batch claims *up to* k names and returns how many it granted.
// Structures whose Get is total (every flat array) always grant k; a
// gate-bounded structure (the sharded scale layer) may grant fewer —
// even zero — when its shards refuse, after refunding any reserved gate
// capacity exactly. Callers own the retry loop and must back off between
// rounds (sync::Backoff) instead of busy-looping the refusal path.
// free_batch frees all k names; it throws on the first bad name, at
// which point the earlier names in the batch are already freed (callers
// treating a throw as fatal — every harness here — need no rollback).
// Structures without native overrides are served by the single-op
// fallback loops in api::get_batch / api::free_batch, so every
// registered structure accepts batched traffic; has_batch_ops_v reports
// whether the amortized native path is underneath.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/geometry.hpp"
#include "core/types.hpp"
#include "rng/rng.hpp"

namespace la::api {

// One configuration for every registered structure. Factories pick the
// knobs that apply to them and ignore the rest.
struct RenamerConfig {
  // Contention bound n: maximum number of concurrently held names.
  std::uint64_t capacity = 1024;
  // L = size_factor * capacity for the array-shaped structures
  // (paper: 2.0; §6 sweeps 2N..4N).
  double size_factor = 2.0;
  // LevelArray only: c_i probes per batch. Empty = structure default.
  std::vector<std::uint8_t> probes_per_batch;
  // Which probe RNG the driver should instantiate (carried alongside the
  // structural knobs so one config describes a full run point).
  rng::RngKind rng_kind = rng::RngKind::kMarsaglia;
  // IdIndexedArray only: the id space is id_space_factor * capacity —
  // deliberately larger than L, which is footnote 1's trade (trivial Get,
  // Theta(N) Collect and memory).
  double id_space_factor = 16.0;
  // sharded:* variants only: shard count S (each shard gets
  // ceil(capacity / S) of the contention bound) and the per-thread
  // free-name cache capacity (0 disables the cache; affinity remains).
  std::uint32_t shards = 8;
  std::uint32_t name_cache_capacity = 16;
  // svc:* variants only: the in-process rename-service daemon's shape —
  // request/response slots per client ring (power of two), client rings
  // in the segment (threads beyond this share ring 0 under a lock), and
  // server worker threads draining the rings.
  std::uint32_t svc_ring_depth = 8;
  std::uint32_t svc_max_clients = 16;
  std::uint32_t svc_server_threads = 1;

  // Both sizes go through core::scaled_slots, which rejects NaN/negative
  // factors and products past 2^53 instead of hitting the UB of an
  // out-of-range double -> integer cast.
  std::uint64_t total_slots() const {
    return core::scaled_slots(size_factor, capacity);
  }

  std::uint64_t id_space() const {
    const auto space = core::scaled_slots(id_space_factor, capacity);
    return space < total_slots() ? total_slots() : space;
  }
};

// --- contract detection -------------------------------------------------

template <typename T, typename = void>
struct is_renamer : std::false_type {};

template <typename T>
struct is_renamer<
    T, std::void_t<
           decltype(std::declval<T&>().get(
               std::declval<rng::MarsagliaXorshift&>())),
           decltype(std::declval<T&>().free(std::uint64_t{})),
           decltype(std::declval<const T&>().collect(
               std::declval<std::vector<std::uint64_t>&>())),
           decltype(std::declval<const T&>().capacity()),
           decltype(std::declval<const T&>().total_slots())>>
    : std::is_same<decltype(std::declval<T&>().get(
                       std::declval<rng::MarsagliaXorshift&>())),
                   GetResult> {};

template <typename T>
inline constexpr bool is_renamer_v = is_renamer<T>::value;

// --- batch operations ---------------------------------------------------

// Native batch-claim surface: get_batch(Rng&, GetResult*, size_t).
template <typename T, typename = void>
struct has_native_get_batch : std::false_type {};

template <typename T>
struct has_native_get_batch<
    T, std::void_t<decltype(std::declval<T&>().get_batch(
           std::declval<rng::MarsagliaXorshift&>(),
           std::declval<GetResult*>(), std::size_t{}))>>
    : std::is_same<decltype(std::declval<T&>().get_batch(
                       std::declval<rng::MarsagliaXorshift&>(),
                       std::declval<GetResult*>(), std::size_t{})),
                   std::size_t> {};

template <typename T>
inline constexpr bool has_native_get_batch_v = has_native_get_batch<T>::value;

// Native batch-release surface: free_batch(const uint64_t*, size_t).
template <typename T, typename = void>
struct has_native_free_batch : std::false_type {};

template <typename T>
struct has_native_free_batch<
    T, std::void_t<decltype(std::declval<T&>().free_batch(
           std::declval<const std::uint64_t*>(), std::size_t{}))>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_native_free_batch_v =
    has_native_free_batch<T>::value;

// True when the structure amortizes batches natively (both directions);
// false means api::get_batch / api::free_batch fall back to k single ops.
template <typename T>
inline constexpr bool has_batch_ops_v =
    has_native_get_batch_v<T> && has_native_free_batch_v<T>;

// Claim up to k names into out[0..k). Returns the number granted — k for
// total structures, possibly fewer for gate-bounded ones (see the batch
// contract in the header comment). The generic path is the per-op loop,
// so every Renamer takes batched traffic.
template <typename Structure, typename Rng>
std::size_t get_batch(Structure& structure, Rng& rng, GetResult* out,
                      std::size_t k) {
  if constexpr (has_native_get_batch_v<Structure>) {
    return structure.get_batch(rng, out, k);
  } else {
    for (std::size_t i = 0; i < k; ++i) out[i] = structure.get(rng);
    return k;
  }
}

// Free names[0..k). Throws on the first bad name (earlier names in the
// batch are already freed by then).
template <typename Structure>
void free_batch(Structure& structure, const std::uint64_t* names,
                std::size_t k) {
  if constexpr (has_native_free_batch_v<Structure>) {
    structure.free_batch(names, k);
  } else {
    for (std::size_t i = 0; i < k; ++i) structure.free(names[i]);
  }
}

// --- bounded-wait (deadline) operations ---------------------------------
//
// Deadlines are *absolute* CLOCK_MONOTONIC instants in nanoseconds, per
// sync::FutexWord::monotonic_now_ns() — comparable across threads and
// (on one host) across processes, which is what lets a svc client stamp
// a deadline into a request slot that the server enforces. kNoDeadline
// means wait forever (get_for degenerates to get).

inline constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

// Native bounded-wait surface: bool get_for(Rng&, GetResult&, deadline).
// true = granted (result written); false = the deadline passed while the
// structure was at capacity — a *timed-out refusal*, distinct from the
// gate-bounded batch refusal (which says "retry now"), and counted in
// WaitStats::timeouts by structures that track waiting.
template <typename T, typename = void>
struct has_native_get_for : std::false_type {};

template <typename T>
struct has_native_get_for<
    T, std::void_t<decltype(std::declval<T&>().get_for(
           std::declval<rng::MarsagliaXorshift&>(),
           std::declval<GetResult&>(), std::uint64_t{}))>>
    : std::is_same<decltype(std::declval<T&>().get_for(
                       std::declval<rng::MarsagliaXorshift&>(),
                       std::declval<GetResult&>(), std::uint64_t{})),
                   bool> {};

template <typename T>
inline constexpr bool has_native_get_for_v = has_native_get_for<T>::value;

// Native bounded-wait batch surface:
// size_t get_batch_for(Rng&, GetResult*, k, deadline) — claims up to k,
// returns how many were granted before the deadline (possibly 0).
template <typename T, typename = void>
struct has_native_get_batch_for : std::false_type {};

template <typename T>
struct has_native_get_batch_for<
    T, std::void_t<decltype(std::declval<T&>().get_batch_for(
           std::declval<rng::MarsagliaXorshift&>(),
           std::declval<GetResult*>(), std::size_t{}, std::uint64_t{}))>>
    : std::is_same<decltype(std::declval<T&>().get_batch_for(
                       std::declval<rng::MarsagliaXorshift&>(),
                       std::declval<GetResult*>(), std::size_t{},
                       std::uint64_t{})),
                   std::size_t> {};

template <typename T>
inline constexpr bool has_native_get_batch_for_v =
    has_native_get_batch_for<T>::value;

// True when the structure can refuse by deadline natively. For
// structures without it the free functions below fall back to the
// untimed ops — correct only where those cannot block (the flat arrays'
// Get is total below capacity); harnesses that *oversubscribe* demand to
// force timeouts must gate that on has_deadline_ops_v, because a flat
// array's Get spins forever once aggregate demand exceeds capacity.
template <typename T>
inline constexpr bool has_deadline_ops_v =
    has_native_get_for_v<T> && has_native_get_batch_for_v<T>;

// Claim one name, waiting at most until deadline_ns. Returns false only
// on a timed-out refusal (native path); the fallback is the untimed get.
template <typename Structure, typename Rng>
bool get_for(Structure& structure, Rng& rng, GetResult& out,
             std::uint64_t deadline_ns) {
  if constexpr (has_native_get_for_v<Structure>) {
    return structure.get_for(rng, out, deadline_ns);
  } else {
    out = structure.get(rng);
    return true;
  }
}

// Claim up to k names, waiting at most until deadline_ns. Returns how
// many were granted (0 on a pure timeout); the fallback is the untimed
// batch path.
template <typename Structure, typename Rng>
std::size_t get_batch_for(Structure& structure, Rng& rng, GetResult* out,
                          std::size_t k, std::uint64_t deadline_ns) {
  if constexpr (has_native_get_batch_for_v<Structure>) {
    return structure.get_batch_for(rng, out, k, deadline_ns);
  } else {
    (void)deadline_ns;
    return get_batch(structure, rng, out, k);
  }
}

// Optional introspection surface: per-batch occupancy counts, used by the
// sim harness for the paper's Definition 2 balance metrics.
template <typename T, typename = void>
struct has_batch_occupancy : std::false_type {};

template <typename T>
struct has_batch_occupancy<
    T, std::void_t<decltype(std::declval<const T&>().batch_occupancy())>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_batch_occupancy_v = has_batch_occupancy<T>::value;

// Optional bad-state construction surface: force slots of one batch into
// the held state (LevelArray's seed_batch_occupancy). The stress driver
// uses it to rebuild Fig. 3's overcrowded initial distribution before its
// healing-window check.
template <typename T, typename = void>
struct has_seed_batch_occupancy : std::false_type {};

template <typename T>
struct has_seed_batch_occupancy<
    T, std::void_t<decltype(std::declval<T&>().seed_batch_occupancy(
           std::uint32_t{}, std::uint64_t{}))>> : std::true_type {};

template <typename T>
inline constexpr bool has_seed_batch_occupancy_v =
    has_seed_batch_occupancy<T>::value;

// Optional geometry surface: the batch partition behind batch_occupancy()
// (LevelArray's Geometry). Harnesses need it to turn occupancy counts
// into fill ratios — the stress driver's healing verdict and
// fig3_healing's per-batch columns both gate on it.
template <typename T, typename = void>
struct has_geometry : std::false_type {};

template <typename T>
struct has_geometry<
    T, std::void_t<decltype(std::declval<const T&>().geometry())>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_geometry_v = has_geometry<T>::value;

// --- waiting surfaces ---------------------------------------------------

// Cumulative waiting totals for structures with a blocking tier: how
// many retry rounds outlived the spin/yield tiers (wait_rounds), how
// many ended in a futex park (parks), and how many deadline-bounded
// acquisitions (get_for / get_batch_for) expired into a timed-out
// refusal (timeouts). Harness reports surface all three so the
// parked-vs-spinning-vs-refused tradeoff is visible, not inferred.
struct WaitStats {
  std::uint64_t wait_rounds = 0;
  std::uint64_t parks = 0;
  std::uint64_t timeouts = 0;
};

// Optional: T::wait_stats() -> WaitStats (racy monotonic snapshot).
template <typename T, typename = void>
struct has_wait_stats : std::false_type {};

template <typename T>
struct has_wait_stats<
    T, std::void_t<decltype(std::declval<const T&>().wait_stats())>>
    : std::is_same<decltype(std::declval<const T&>().wait_stats()),
                   WaitStats> {};

template <typename T>
inline constexpr bool has_wait_stats_v = has_wait_stats<T>::value;

// Optional: T::free_signal() -> sync::FutexWord&, an eventcount every
// capacity-releasing path signals. Callers that see a refused batch may
// park on it (prepare_wait, re-attempt, commit_wait) instead of
// spin-retrying — see bench_util::detail::drive's gate-refusal loop.
template <typename T, typename = void>
struct has_free_signal : std::false_type {};

template <typename T>
struct has_free_signal<
    T, std::void_t<decltype(std::declval<T&>().free_signal())>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_free_signal_v = has_free_signal<T>::value;

// --- RNG dispatch -------------------------------------------------------

// Type tag handed to the callable so it can name the generator type
// without constructing one (seeding stays with the caller).
template <typename T>
struct RngTag {
  using type = T;
};

// The one place an RngKind becomes a concrete generator type. fn receives
// RngTag<Generator> and is instantiated per generator — the inner loops
// stay monomorphic.
template <typename Fn>
decltype(auto) with_rng(rng::RngKind kind, Fn&& fn) {
  switch (kind) {
    case rng::RngKind::kMarsaglia: return fn(RngTag<rng::MarsagliaXorshift>{});
    case rng::RngKind::kLehmer: return fn(RngTag<rng::Lehmer>{});
    case rng::RngKind::kPcg32: return fn(RngTag<rng::Pcg32>{});
  }
  throw std::logic_error("unhandled RngKind");
}

}  // namespace la::api
