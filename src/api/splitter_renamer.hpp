// SplitterRenamer — the long-lived facade that lets the one-shot
// Moir-Anderson SplitterGrid run under every harness in this library.
//
// First acquisition of a name walks the grid with a fresh process id (the
// grid's own one-shot protocol, untouched). Free releases the name's
// activity cell and pushes it onto a tagged Treiber free-list; later Gets
// pop the list and re-acquire in O(1). This is the standard
// one-shot -> long-lived recycling wrapper: at most `capacity` names are
// ever walked for (the high-water mark of concurrent holds), so the
// grid's <= n one-shot-processes precondition is preserved, while churn
// workloads see a steady-state Get of one probe. The structure keeps the
// splitter's signature costs — Theta(n^2) memory, O(n) worst-case walk —
// which is exactly what the comparison benches are after.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arrays/splitter_grid.hpp"
#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "sync/tas_cell.hpp"

namespace la::api {

class SplitterRenamer {
 public:
  // The triangle is Theta(n^2) cells; past this bound a sweep would die
  // in std::bad_alloc / OOM, so refuse loudly instead (8192 keeps the
  // structure under ~0.5 GB).
  static constexpr std::uint64_t kMaxCapacity = 8192;

  explicit SplitterRenamer(std::uint64_t capacity)
      : grid_(checked_capacity(capacity)),
        // Grid names are 1..namespace_size, overflow names continue for
        // another contention_bound entries; slot 0 is never issued.
        name_bound_(grid_.namespace_size() + grid_.contention_bound() + 1),
        active_(name_bound_),
        next_(name_bound_) {
    for (auto& n : next_) n.store(kNull, std::memory_order_relaxed);
  }

  SplitterRenamer(const SplitterRenamer&) = delete;
  SplitterRenamer& operator=(const SplitterRenamer&) = delete;

  template <typename Rng>
  GetResult get(Rng& rng) {
    (void)rng;  // the MA walk is deterministic; Rng is API shape only
    const std::uint32_t recycled = pop();
    if (recycled != kNull) {
      GetResult result;
      result.probes = 1;
      result.name = recycled;
      if (!active_[recycled].try_acquire()) {
        // A popped name was released before it was pushed; only list
        // corruption can make this fire.
        throw std::logic_error("SplitterRenamer: recycled name still held");
      }
      return result;
    }
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    const GetResult result = grid_.get(id);
    if (!active_[result.name].try_acquire()) {
      // The grid's one-shot protocol guarantees distinct names per
      // process id; a name that is already active means the grid walk
      // handed out a duplicate, and ignoring it would silently corrupt
      // occupancy (two holders, one cell).
      throw std::logic_error("SplitterRenamer: grid issued a held name");
    }
    return result;
  }

  void free(std::uint64_t name) {
    if (name >= name_bound_) {
      throw std::out_of_range("SplitterRenamer::free: name out of range");
    }
    if (name == 0 || !active_[name].held()) {
      throw std::logic_error(
          "SplitterRenamer::free: name not held (double free?)");
    }
    active_[name].release();
    push(static_cast<std::uint32_t>(name));
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    // Slot 0 is never issued; word-scan the issuable range and shift the
    // indices back into name space.
    std::size_t found = 0;
    core::slot_scan::for_each_held(active_.data() + 1, name_bound_ - 1,
                                   [&](std::uint64_t offset) {
                                     out.push_back(offset + 1);
                                     ++found;
                                   });
    return found;
  }

  std::uint64_t capacity() const { return grid_.contention_bound(); }
  std::uint64_t total_slots() const { return name_bound_; }
  const arrays::SplitterGrid& grid() const { return grid_; }

 private:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

  static std::uint32_t checked_capacity(std::uint64_t capacity) {
    if (capacity > kMaxCapacity) {
      throw std::invalid_argument(
          "SplitterRenamer: capacity " + std::to_string(capacity) +
          " exceeds the Theta(n^2)-memory cap of " +
          std::to_string(kMaxCapacity) +
          " (shrink the workload, e.g. --mult, or drop 'splitter')");
    }
    return static_cast<std::uint32_t>(capacity < 1 ? 1 : capacity);
  }

  // Tagged Treiber stack of released names: the 32-bit generation tag in
  // the head's upper half makes the pop CAS ABA-safe.
  static constexpr std::uint64_t pack(std::uint64_t tag, std::uint32_t idx) {
    return (tag << 32) | idx;
  }

  void push(std::uint32_t name) {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      next_[name].store(static_cast<std::uint32_t>(head),
                        std::memory_order_relaxed);
      const std::uint64_t next_head = pack((head >> 32) + 1, name);
      if (head_.compare_exchange_weak(head, next_head,
                                      std::memory_order_release,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  std::uint32_t pop() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const auto idx = static_cast<std::uint32_t>(head);
      if (idx == kNull) return kNull;
      const std::uint32_t after = next_[idx].load(std::memory_order_relaxed);
      const std::uint64_t next_head = pack((head >> 32) + 1, after);
      if (head_.compare_exchange_weak(head, next_head,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return idx;
      }
    }
  }

  arrays::SplitterGrid grid_;
  std::uint64_t name_bound_;
  std::vector<sync::TasCell> active_;
  std::vector<std::atomic<std::uint32_t>> next_;
  std::atomic<std::uint64_t> head_{pack(0, kNull)};
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace la::api
