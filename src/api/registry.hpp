// String-keyed registry of every renaming structure in the library, and
// the visit() dispatcher that instantiates the concrete type and invokes
// a generic callable on it.
//
// Each entry is a small factory struct: a canonical name, display label,
// aliases, a one-line summary, and with(config, fn) which constructs the
// structure on the stack and calls fn(structure&). visit() resolves a
// name-or-alias and walks the compile-time entry list — so dispatch costs
// one string compare per entry, after which the callable is instantiated
// against the concrete type and the inner loop is fully monomorphic (no
// virtual calls, same codegen as naming the type directly). Adding a
// structure = one entry struct + one line in the Entries tuple; the
// runtime metadata (registered_structures, accepted-name lists, error
// messages) is generated from the same tuple, so it cannot drift.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <vector>

#include "api/renamer.hpp"
#include "api/splitter_renamer.hpp"
#include "arrays/bitmap_array.hpp"
#include "arrays/id_array.hpp"
#include "arrays/linear_probing_array.hpp"
#include "arrays/random_array.hpp"
#include "arrays/sequential_scan_array.hpp"
#include "core/level_array.hpp"

namespace la::api {

struct StructureInfo {
  std::string_view name;   // canonical registry key (what visit() resolves to)
  std::string_view label;  // display label for tables
  std::vector<std::string_view> aliases;
  std::string_view summary;
};

// Runtime metadata, generated from the Entries tuple below.
const std::vector<StructureInfo>& registered_structures();
std::vector<std::string> registered_names();
// Canonical key for a name or alias; throws std::invalid_argument listing
// every accepted spelling.
std::string resolve_structure(const std::string& name_or_alias);
std::string_view structure_label(std::string_view canonical);
std::string accepted_names_text();

namespace detail {

struct LevelEntry {
  static constexpr std::string_view kName = "level";
  static constexpr std::string_view kLabel = "LevelArray";
  static constexpr std::array<std::string_view, 1> kAliases = {"levelarray"};
  static constexpr std::string_view kSummary =
      "the paper's algorithm: doubly-exponential batches over L = 2n TAS "
      "slots";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    core::LevelArrayConfig config;
    config.capacity = c.capacity;
    config.size_multiplier = c.size_factor;
    if (!c.probes_per_batch.empty()) {
      config.probes_per_batch = c.probes_per_batch;
    }
    core::LevelArray array(config);
    return fn(array);
  }
};

struct RandomEntry {
  static constexpr std::string_view kName = "random";
  static constexpr std::string_view kLabel = "Random";
  static constexpr std::array<std::string_view, 1> kAliases = {"randomarray"};
  static constexpr std::string_view kSummary =
      "uniform random probes over the whole array (comparison #1)";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    arrays::RandomArray array(c.total_slots(), c.capacity);
    return fn(array);
  }
};

struct LinearEntry {
  static constexpr std::string_view kName = "linear";
  static constexpr std::string_view kLabel = "LinearProbing";
  static constexpr std::array<std::string_view, 1> kAliases =
      {"linearprobing"};
  static constexpr std::string_view kSummary =
      "random start then sequential scan (comparison #2)";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    arrays::LinearProbingArray array(c.total_slots(), c.capacity);
    return fn(array);
  }
};

struct SequentialEntry {
  static constexpr std::string_view kName = "seq";
  static constexpr std::string_view kLabel = "SequentialScan";
  static constexpr std::array<std::string_view, 2> kAliases =
      {"sequential", "sequentialscan"};
  static constexpr std::string_view kSummary =
      "deterministic first-fit scan from slot 0 (strawman)";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    arrays::SequentialScanArray array(c.total_slots(), c.capacity);
    return fn(array);
  }
};

struct BitmapEntry {
  static constexpr std::string_view kName = "bitmap";
  static constexpr std::string_view kLabel = "BitmapActivity";
  static constexpr std::array<std::string_view, 2> kAliases =
      {"bitmaparray", "bit"};
  static constexpr std::string_view kSummary =
      "bit-per-slot layout ablation: random probing over packed words";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    arrays::BitmapActivityArray array(c.total_slots(), c.capacity);
    return fn(array);
  }
};

struct IdEntry {
  static constexpr std::string_view kName = "id";
  static constexpr std::string_view kLabel = "IdIndexed";
  static constexpr std::array<std::string_view, 2> kAliases =
      {"idindexed", "idarray"};
  static constexpr std::string_view kSummary =
      "footnote-1 strawman: array indexed by id, sized by the id space N";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    arrays::IdIndexedArray array(c.id_space(), c.capacity);
    return fn(array);
  }
};

struct SplitterEntry {
  static constexpr std::string_view kName = "splitter";
  static constexpr std::string_view kLabel = "SplitterGrid";
  static constexpr std::array<std::string_view, 3> kAliases =
      {"ma", "moir-anderson", "splittergrid"};
  static constexpr std::string_view kSummary =
      "deterministic Moir-Anderson splitter grid behind the long-lived "
      "recycling facade";
  template <typename Fn>
  static decltype(auto) with(const RenamerConfig& c, Fn&& fn) {
    SplitterRenamer array(c.capacity);
    return fn(array);
  }
};

using Entries = std::tuple<LevelEntry, RandomEntry, LinearEntry,
                           SequentialEntry, BitmapEntry, IdEntry,
                           SplitterEntry>;

inline constexpr std::size_t kEntryCount = std::tuple_size_v<Entries>;

// Every registered structure must satisfy the static Renamer contract.
static_assert(is_renamer_v<core::LevelArray>);
static_assert(is_renamer_v<arrays::RandomArray>);
static_assert(is_renamer_v<arrays::LinearProbingArray>);
static_assert(is_renamer_v<arrays::SequentialScanArray>);
static_assert(is_renamer_v<arrays::BitmapActivityArray>);
static_assert(is_renamer_v<arrays::IdIndexedArray>);
static_assert(is_renamer_v<SplitterRenamer>);

// The callable's result type must not depend on the structure; anchor the
// deduction on the first entry's type.
template <typename Fn>
using VisitResult = std::invoke_result_t<Fn&, core::LevelArray&>;

template <std::size_t I, typename Fn>
VisitResult<Fn> visit_at(std::string_view canonical, const RenamerConfig& cfg,
                         Fn&& fn) {
  if constexpr (I < kEntryCount) {
    using Entry = std::tuple_element_t<I, Entries>;
    if (canonical == Entry::kName) {
      return Entry::with(cfg, std::forward<Fn>(fn));
    }
    return visit_at<I + 1>(canonical, cfg, std::forward<Fn>(fn));
  } else {
    throw std::invalid_argument("unknown structure: " +
                                std::string(canonical) + " (expected " +
                                accepted_names_text() + ")");
  }
}

}  // namespace detail

// Instantiate the structure registered under `name_or_alias` from `cfg`
// and invoke fn(structure&), returning fn's result. The structure lives
// on the stack for the duration of the call.
template <typename Fn>
detail::VisitResult<Fn> visit(const std::string& name_or_alias,
                              const RenamerConfig& cfg, Fn&& fn) {
  return detail::visit_at<0>(resolve_structure(name_or_alias), cfg,
                             std::forward<Fn>(fn));
}

}  // namespace la::api
