// String-keyed registry of every renaming structure in the library, and
// the visit() dispatcher that instantiates the concrete type and invokes
// a generic callable on it.
//
// Each entry is a small factory struct: a canonical name, display label,
// aliases, a one-line summary, a concrete `Structure` type, and
// make(config) -> unique_ptr<Structure>. visit() resolves a name-or-alias
// and walks the compile-time entry list — so dispatch costs one string
// compare per entry, after which the callable is instantiated against
// the concrete type and the inner loop is fully monomorphic (no virtual
// calls, same codegen as naming the type directly). Adding a structure =
// one entry struct + one line in the Entries tuple; the runtime metadata
// (registered_structures, accepted-name lists, error messages) is
// generated from the same tuple, so it cannot drift.
//
// The scale layer is registered generically: ShardedEntry<Base> wraps
// any flat entry as `sharded:<name>` (ShardedRenamer over S instances of
// the base structure, each holding ceil(capacity / S) of the contention
// bound), so every bench, the stress matrix, the model fuzz suite, and
// the sim executor cover the sharded variants with no per-harness code.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <vector>

#include "api/renamer.hpp"
#include "api/snapshot.hpp"
#include "api/splitter_renamer.hpp"
#include "arrays/bitmap_array.hpp"
#include "arrays/id_array.hpp"
#include "arrays/linear_probing_array.hpp"
#include "arrays/random_array.hpp"
#include "arrays/sequential_scan_array.hpp"
#include "core/level_array.hpp"
#include "scale/sharded.hpp"
#include "svc/service.hpp"

namespace la::api {

struct StructureInfo {
  std::string_view name;   // canonical registry key (what visit() resolves to)
  std::string_view label;  // display label for tables
  std::vector<std::string_view> aliases;
  std::string_view summary;
};

// Runtime metadata, generated from the Entries tuple below.
const std::vector<StructureInfo>& registered_structures();
std::vector<std::string> registered_names();
// Canonical key for a name or alias; throws std::invalid_argument listing
// every accepted spelling.
std::string resolve_structure(const std::string& name_or_alias);
std::string_view structure_label(std::string_view canonical);
std::string accepted_names_text();

namespace detail {

// How visit_at() runs a callable against an entry: build via the
// entry's make() and hand the reference over. The structure lives for
// the duration of the call — entries only provide metadata + make().
template <typename Entry, typename Fn>
decltype(auto) with_made(const RenamerConfig& c, Fn&& fn) {
  auto array = Entry::make(c);
  return fn(*array);
}

struct LevelEntry {
  static constexpr std::string_view kName = "level";
  static constexpr std::string_view kLabel = "LevelArray";
  static constexpr std::array<std::string_view, 1> kAliases = {"levelarray"};
  static constexpr std::string_view kSummary =
      "the paper's algorithm: doubly-exponential batches over L = 2n TAS "
      "slots";
  using Structure = core::LevelArray;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    core::LevelArrayConfig config;
    config.capacity = c.capacity;
    config.size_multiplier = c.size_factor;
    if (!c.probes_per_batch.empty()) {
      config.probes_per_batch = c.probes_per_batch;
    }
    return std::make_unique<Structure>(config);
  }
};

struct RandomEntry {
  static constexpr std::string_view kName = "random";
  static constexpr std::string_view kLabel = "Random";
  static constexpr std::array<std::string_view, 1> kAliases = {"randomarray"};
  static constexpr std::string_view kSummary =
      "uniform random probes over the whole array (comparison #1)";
  using Structure = arrays::RandomArray;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    return std::make_unique<Structure>(c.total_slots(), c.capacity);
  }
};

struct LinearEntry {
  static constexpr std::string_view kName = "linear";
  static constexpr std::string_view kLabel = "LinearProbing";
  static constexpr std::array<std::string_view, 1> kAliases =
      {"linearprobing"};
  static constexpr std::string_view kSummary =
      "random start then sequential scan (comparison #2)";
  using Structure = arrays::LinearProbingArray;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    return std::make_unique<Structure>(c.total_slots(), c.capacity);
  }
};

struct SequentialEntry {
  static constexpr std::string_view kName = "seq";
  static constexpr std::string_view kLabel = "SequentialScan";
  static constexpr std::array<std::string_view, 2> kAliases =
      {"sequential", "sequentialscan"};
  static constexpr std::string_view kSummary =
      "deterministic first-fit scan from slot 0 (strawman)";
  using Structure = arrays::SequentialScanArray;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    return std::make_unique<Structure>(c.total_slots(), c.capacity);
  }
};

struct BitmapEntry {
  static constexpr std::string_view kName = "bitmap";
  static constexpr std::string_view kLabel = "BitmapActivity";
  static constexpr std::array<std::string_view, 2> kAliases =
      {"bitmaparray", "bit"};
  static constexpr std::string_view kSummary =
      "bit-per-slot layout ablation: random probing over packed words";
  using Structure = arrays::BitmapActivityArray;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    return std::make_unique<Structure>(c.total_slots(), c.capacity);
  }
};

struct IdEntry {
  static constexpr std::string_view kName = "id";
  static constexpr std::string_view kLabel = "IdIndexed";
  static constexpr std::array<std::string_view, 2> kAliases =
      {"idindexed", "idarray"};
  static constexpr std::string_view kSummary =
      "footnote-1 strawman: array indexed by id, sized by the id space N";
  using Structure = arrays::IdIndexedArray;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    return std::make_unique<Structure>(c.id_space(), c.capacity);
  }
};

struct SplitterEntry {
  static constexpr std::string_view kName = "splitter";
  static constexpr std::string_view kLabel = "SplitterGrid";
  static constexpr std::array<std::string_view, 3> kAliases =
      {"ma", "moir-anderson", "splittergrid"};
  static constexpr std::string_view kSummary =
      "deterministic Moir-Anderson splitter grid behind the long-lived "
      "recycling facade";
  using Structure = SplitterRenamer;
  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    return std::make_unique<Structure>(c.capacity);
  }
};

// --- sharded variants ---------------------------------------------------

// Compile-time "prefix + base name" so the sharded entries' registry keys
// live in static storage like every hand-written kName.
template <std::size_t N>
struct NameBuffer {
  char data[N] = {};
  std::size_t len = 0;
  constexpr std::string_view view() const { return {data, len}; }
};

template <std::size_t N>
constexpr NameBuffer<N> concat_names(std::string_view a, std::string_view b) {
  NameBuffer<N> out{};
  for (const char c : a) out.data[out.len++] = c;
  for (const char c : b) out.data[out.len++] = c;
  return out;
}

template <typename Base>
struct ShardedEntry {
  static constexpr auto kNameBuf = concat_names<24>("sharded:", Base::kName);
  static constexpr std::string_view kName = kNameBuf.view();
  static constexpr auto kLabelBuf = concat_names<32>("Sharded/", Base::kLabel);
  static constexpr std::string_view kLabel = kLabelBuf.view();
  static constexpr auto kAliasBuf = concat_names<24>("sharded-", Base::kName);
  static constexpr std::array<std::string_view, 1> kAliases = {
      kAliasBuf.view()};
  static constexpr std::string_view kSummary =
      "scale layer: thread-affine shards of the base structure with "
      "per-thread free-name caches";
  using Structure = scale::ShardedRenamer<typename Base::Structure>;

  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    scale::ShardedConfig sharded;
    sharded.shards = c.shards == 0 ? 1 : c.shards;
    sharded.cache_capacity = c.name_cache_capacity;
    RenamerConfig inner = c;
    inner.capacity =
        (c.capacity + sharded.shards - 1) / sharded.shards;
    if (inner.capacity == 0) inner.capacity = 1;
    return std::make_unique<Structure>(
        sharded, [&inner](std::uint32_t) { return Base::make(inner); });
  }
};

// --- service variants ---------------------------------------------------

// `svc:sharded:<name>`: the full rename-service daemon stack, in-process
// (svc::ServiceRenamer owns segment + sharded structure + server workers
// + client, and the harness talks to the client). Every op round-trips
// the real shared-memory wire protocol, so the whole harness suite
// doubles as a daemon soak.
template <typename Base>
struct SvcEntry {
  static constexpr auto kNameBuf =
      concat_names<24>("svc:sharded:", Base::kName);
  static constexpr std::string_view kName = kNameBuf.view();
  static constexpr auto kLabelBuf =
      concat_names<32>("Svc/Sharded/", Base::kLabel);
  static constexpr std::string_view kLabel = kLabelBuf.view();
  static constexpr auto kAliasBuf =
      concat_names<24>("svc-sharded-", Base::kName);
  static constexpr std::array<std::string_view, 1> kAliases = {
      kAliasBuf.view()};
  static constexpr std::string_view kSummary =
      "svc layer: rename-service daemon over the sharded structure, "
      "driven through shared-memory SPSC rings";
  using Structure =
      svc::ServiceRenamer<typename ShardedEntry<Base>::Structure>;

  static std::unique_ptr<Structure> make(const RenamerConfig& c) {
    svc::ServiceConfig config;
    config.segment.max_clients = c.svc_max_clients;
    config.segment.ring_depth = c.svc_ring_depth;
    config.server_threads = c.svc_server_threads;
    return std::make_unique<Structure>(
        config, [&c] { return ShardedEntry<Base>::make(c); });
  }
};

using Entries =
    std::tuple<LevelEntry, RandomEntry, LinearEntry, SequentialEntry,
               BitmapEntry, IdEntry, SplitterEntry,
               ShardedEntry<LevelEntry>, ShardedEntry<RandomEntry>,
               ShardedEntry<LinearEntry>, ShardedEntry<SequentialEntry>,
               ShardedEntry<BitmapEntry>, ShardedEntry<IdEntry>,
               ShardedEntry<SplitterEntry>,
               SvcEntry<LevelEntry>, SvcEntry<RandomEntry>,
               SvcEntry<LinearEntry>, SvcEntry<SequentialEntry>,
               SvcEntry<BitmapEntry>, SvcEntry<IdEntry>,
               SvcEntry<SplitterEntry>>;

inline constexpr std::size_t kEntryCount = std::tuple_size_v<Entries>;

// Every registered structure must satisfy the static Renamer contract.
static_assert(is_renamer_v<core::LevelArray>);
static_assert(is_renamer_v<arrays::RandomArray>);
static_assert(is_renamer_v<arrays::LinearProbingArray>);
static_assert(is_renamer_v<arrays::SequentialScanArray>);
static_assert(is_renamer_v<arrays::BitmapActivityArray>);
static_assert(is_renamer_v<arrays::IdIndexedArray>);
static_assert(is_renamer_v<SplitterRenamer>);
static_assert(is_renamer_v<scale::ShardedRenamer<core::LevelArray>>);
static_assert(is_renamer_v<scale::ShardedRenamer<arrays::RandomArray>>);
static_assert(is_renamer_v<scale::ShardedRenamer<SplitterRenamer>>);
// The sharded wrapper must not accidentally expose the batch-occupancy
// surfaces — per-shard batches are not the paper's Fig. 3 object, and the
// harnesses would otherwise compute nonsense balance metrics on it.
static_assert(!has_batch_occupancy_v<scale::ShardedRenamer<core::LevelArray>>);
static_assert(!has_geometry_v<scale::ShardedRenamer<core::LevelArray>>);
// The batch fast path: the paper's structure and the scale layer carry
// native get_batch/free_batch; everything else rides the api fallback
// loop (so batched harness traffic covers all 14 registry entries).
static_assert(has_batch_ops_v<core::LevelArray>);
static_assert(has_batch_ops_v<scale::ShardedRenamer<core::LevelArray>>);
static_assert(has_batch_ops_v<scale::ShardedRenamer<arrays::RandomArray>>);
static_assert(has_batch_ops_v<scale::ShardedRenamer<SplitterRenamer>>);
static_assert(!has_batch_ops_v<arrays::RandomArray>);  // fallback-served
// The service wrapper satisfies the full contract (get over the wire)
// and carries the native batch surface — one slot ferries up to
// svc::kMaxBatch names, so batched harness traffic amortizes the ring
// round trip exactly like it amortizes the gate RMW.
static_assert(
    is_renamer_v<svc::ServiceRenamer<scale::ShardedRenamer<core::LevelArray>>>);
static_assert(
    has_batch_ops_v<
        svc::ServiceRenamer<scale::ShardedRenamer<core::LevelArray>>>);
static_assert(
    !has_batch_occupancy_v<
        svc::ServiceRenamer<scale::ShardedRenamer<core::LevelArray>>>);
// Checkpoint/restore (src/api/snapshot.hpp): the core, every flat array,
// and the sharded wrapper over adoptable inners can save *and* restore.
// SplitterRenamer has no adoption path (a fresh grid walk would re-issue
// adopted cells), so it — and sharded:splitter, via the SFINAE gate on
// ShardedRenamer::adopt_held — is save-only; svc clients snapshot on
// the server side, not over the wire.
static_assert(has_snapshot_v<core::LevelArray>);
static_assert(has_snapshot_v<arrays::RandomArray>);
static_assert(has_snapshot_v<arrays::LinearProbingArray>);
static_assert(has_snapshot_v<arrays::SequentialScanArray>);
static_assert(has_snapshot_v<arrays::BitmapActivityArray>);
static_assert(has_snapshot_v<arrays::IdIndexedArray>);
static_assert(has_snapshot_v<scale::ShardedRenamer<core::LevelArray>>);
static_assert(has_snapshot_v<scale::ShardedRenamer<arrays::LinearProbingArray>>);
static_assert(!has_adopt_held_v<SplitterRenamer>);
static_assert(!has_snapshot_v<SplitterRenamer>);
static_assert(!has_snapshot_v<scale::ShardedRenamer<SplitterRenamer>>);
static_assert(
    !has_snapshot_v<
        svc::ServiceRenamer<scale::ShardedRenamer<core::LevelArray>>>);

// The callable's result type must not depend on the structure; anchor the
// deduction on the first entry's type.
template <typename Fn>
using VisitResult = std::invoke_result_t<Fn&, core::LevelArray&>;

template <std::size_t I, typename Fn>
VisitResult<Fn> visit_at(std::string_view canonical, const RenamerConfig& cfg,
                         Fn&& fn) {
  if constexpr (I < kEntryCount) {
    using Entry = std::tuple_element_t<I, Entries>;
    if (canonical == Entry::kName) {
      return with_made<Entry>(cfg, std::forward<Fn>(fn));
    }
    return visit_at<I + 1>(canonical, cfg, std::forward<Fn>(fn));
  } else {
    throw std::invalid_argument("unknown structure: " +
                                std::string(canonical) + " (expected " +
                                accepted_names_text() + ")");
  }
}

}  // namespace detail

// Instantiate the structure registered under `name_or_alias` from `cfg`
// and invoke fn(structure&), returning fn's result. The structure lives
// on the stack for the duration of the call.
template <typename Fn>
detail::VisitResult<Fn> visit(const std::string& name_or_alias,
                              const RenamerConfig& cfg, Fn&& fn) {
  return detail::visit_at<0>(resolve_structure(name_or_alias), cfg,
                             std::forward<Fn>(fn));
}

}  // namespace la::api
