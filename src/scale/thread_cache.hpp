// Thread-to-cache attachment registry for the scale layer.
//
// A ShardedRenamer owns a fixed table of per-thread name-cache slots; the
// piece that cannot live inside the (templated) structure is the mapping
// from "this OS thread" to "my slot in that instance", and the guarantee
// that a thread's parked names are flushed back when the thread exits.
// Both lifetimes occur in practice: worker threads join before the
// structure is destroyed (bench/stress harnesses), and the main thread
// outlives stack-constructed structures. This registry handles both:
//
//   * each instance publishes one heap-allocated CacheControl holding an
//     atomic owner pointer and a type-erased flush callback;
//   * each thread keeps a thread_local list of (control, slot) pairs;
//   * on thread exit the list's destructor flushes every attachment whose
//     owner is still alive;
//   * on instance destruction the owner pointer is nulled, so a later
//     thread exit skips it — the shared_ptr keeps the control block's
//     memory valid either way, so there is no dangling dereference.
//
// Destroying an instance while other threads are still calling into it is
// (as everywhere in this library) undefined; the registry only has to be
// safe for the join-then-destroy and destroy-then-main-exit orders.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sync/atomic_select.hpp"

namespace la::scale {

struct CacheControl {
  // The owning structure, or nullptr once it has been destroyed. The
  // thread-exit hook loads this before flushing.
  la::detail::atomic<void*> owner{nullptr};
  // Type-erased "flush and release cache slot `slot` of `owner`".
  void (*flush)(void* owner, std::uint32_t slot) = nullptr;
};

class ThreadAttachments {
 public:
  // find() result when this thread has never touched the instance.
  static constexpr std::uint32_t kNotAttached = 0xFFFFFFFFu;
  // Recorded slot when the instance had no cache slot left (the thread
  // runs uncached); remembered so the claim is not retried on every op.
  static constexpr std::uint32_t kNoCache = 0xFFFFFFFEu;

#if defined(LEVELARRAY_VERIFY)
  // Fibers share the one real thread's TLS, so `static thread_local`
  // would alias every model-checked thread onto one registry. The verify
  // runtime provides per-fiber TLS whose destructors run when the fiber
  // body returns — *inside* scheduled execution, so the exit-flush
  // ordering is itself explored by the checker.
  static ThreadAttachments& current() {
    static const unsigned key = ::la::verify::tls_key();
    void* p = ::la::verify::tls_get(key);
    if (p == nullptr) {
      p = new ThreadAttachments();
      ::la::verify::tls_set(key, p, [](void* q) {
        delete static_cast<ThreadAttachments*>(q);
      });
    }
    return *static_cast<ThreadAttachments*>(p);
  }
#else
  static ThreadAttachments& current() {
    static thread_local ThreadAttachments self;
    return self;
  }
#endif

  std::uint32_t find(const CacheControl* control) const {
    for (const auto& entry : entries_) {
      if (entry.control.get() == control) return entry.slot;
    }
    return kNotAttached;
  }

  void attach(std::shared_ptr<CacheControl> control, std::uint32_t slot) {
    // Prune attachments whose instance is gone — long-lived threads (the
    // main thread, test loops) would otherwise accumulate one dead entry
    // per structure they ever touched.
    for (std::size_t i = 0; i < entries_.size();) {
      if (entries_[i].control->owner.load(std::memory_order_acquire) ==
          nullptr) {
        entries_[i] = std::move(entries_.back());
        entries_.pop_back();
      } else {
        ++i;
      }
    }
    entries_.push_back(Entry{std::move(control), slot});
  }

  ~ThreadAttachments() {
    for (const auto& entry : entries_) {
      if (entry.slot == kNoCache) continue;
      void* owner = entry.control->owner.load(std::memory_order_acquire);
      if (owner != nullptr) entry.control->flush(owner, entry.slot);
    }
  }

 private:
  struct Entry {
    std::shared_ptr<CacheControl> control;
    std::uint32_t slot = 0;
  };

  std::vector<Entry> entries_;
};

}  // namespace la::scale
