// ShardedRenamer<Inner> — the scaling layer: partitions the name space
// into S shards, each backed by an independent instance of any structure
// satisfying the api::Renamer contract, and puts a per-thread free-name
// cache in front of the shards so steady churn runs uncontended.
//
//   * Affinity: each thread gets a home shard (round-robin over cache
//     slots, so threads spread evenly). Get tries the home shard first
//     and overflow-probes the neighbors in ring order when a shard
//     refuses.
//   * Refusal: the wrapper gates each shard with an occupancy counter at
//     the shard's own contention bound. The gate is what makes a shard
//     able to "refuse" at all — every inner structure's Get is total and
//     would otherwise spin on a full shard — and it preserves the inner
//     structure's contention precondition (holds <= capacity), so the
//     inner Get always terminates.
//   * Caching: Free parks the name in the calling thread's cache (the
//     underlying slot stays acquired, the name is logically free); Get
//     pops a recently parked name in O(cache) with no shared-state
//     traffic. The cache is bounded: overflow flushes a batch of the
//     oldest names back to their shards. Caches drain on thread exit
//     (see thread_cache.hpp), on collect(), and when every shard refuses
//     a Get (parked names are reclaimable capacity — draining restores
//     the global progress guarantee).
//   * Batching: get_batch/free_batch amortize the shared-state traffic
//     across k names — one gate fetch_add(k) per shard sweep (with an
//     exact refund on partial refusal), one cache-stack walk to pop or
//     park the whole batch, and shard-grouped direct releases taking one
//     gate fetch_sub per run. A batch may be granted partially when
//     every shard refuses (see the api batch contract); free_batch
//     validates the whole batch against the held-bitmap before touching
//     any shared state.
//
// The cache is deliberately not a locked container: each entry ("bin")
// is a single std::atomic<uint64_t> holding name+1, 0 when empty. The
// owning thread is the only writer of nonzero values (single producer),
// so parking is one release store; popping and cross-thread stealing
// (collect()/global-miss drains) race each other with exchange(0) —
// whoever reads the nonzero token owns the name. The owner's approximate
// stack discipline (push above, pop below a private top hint) keeps
// reuse hot without any cross-bin invariant that steals could break.
// The hot Free+Get pair therefore costs one atomic RMW (the pop), where
// a mutex-protected cache costs four (lock+unlock twice) — measured 2.5x
// on the scaling_sweep churn workload.
//
// Names are globally unique: global = shard * stride + local, where
// stride is the max inner slot count rounded up to a power of two (shard
// and local are one shift/mask on the Free path). The wrapper keeps a
// dense held-bitmap of *logically* held names — marked on Get, cleared
// on Free, both non-RMW (the name's exclusivity already rides on the bin
// exchange or the inner TAS) — which gives exact double-free detection
// even for parked names and makes collect() one word-scan over a dense
// TasCell array, identical in shape to the LevelArray's own Collect.
//
// Happens-before ledger (what makes the above sound):
//   park(release store of the bin)  ->  steal/pop(acquire exchange):
//     covers the parker's held-bitmap clear and everything before it;
//   drain's inner free(release)     ->  any later inner get(acquire RMW):
//     covers re-issue of a drained name to another thread;
//   fork/join in the harnesses      ->  reaper frees and final collect.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/renamer.hpp"
#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "scale/thread_cache.hpp"
#include "sync/atomic_select.hpp"
#include "sync/cache.hpp"
#include "sync/futex.hpp"
#include "sync/spin_lock.hpp"
#include "sync/tas_cell.hpp"
#include "sync/wait_queue.hpp"

namespace la::scale {

struct ShardedConfig {
  // Number of shards S; 0 is promoted to 1.
  std::uint32_t shards = 8;
  // Per-thread free-name cache bins; 0 disables caching (shard affinity
  // and overflow probing still apply).
  std::uint32_t cache_capacity = 16;
  // Oldest names flushed back to their shards when a cache overflows.
  std::uint32_t cache_flush_batch = 8;
  // Cache slots available; threads beyond this run uncached (correct,
  // just slower). Slots freed by exited threads are reused.
  std::uint32_t max_threads = 128;
};

// Running totals. Per-thread counters are owner-written (plain
// load+store on owner-only atomics) and summed racily; treat as a
// monotonic snapshot.
struct ShardedStats {
  std::uint64_t cache_hits = 0;      // Gets served from the local cache
  std::uint64_t shared_gets = 0;     // Gets that went to a shard
  std::uint64_t parked_frees = 0;    // Frees parked locally
  std::uint64_t direct_frees = 0;    // Frees released straight to a shard
  std::uint64_t shard_refusals = 0;  // overflow probes past a full shard
  std::uint64_t cache_drains = 0;    // drains for capacity (global miss,
                                     // exit flush, explicit drain_caches)
  std::uint64_t collect_drains = 0;  // drains forced by collect()'s
                                     // exactness requirement — separated
                                     // so drain-*pressure* metrics are
                                     // not inflated by observers
};

namespace detail {

// One thread's cache header: its `cache_capacity` bins start at `first`
// in the shared bin array. `top` is the owner's private stack hint;
// `hits`/`parked` are owner-written stats (single writer, so a non-RMW
// load+store increment is race-free; readers take racy snapshots).
struct CacheSlot {
  std::uint32_t home_shard = 0;
  std::uint32_t first = 0;
  std::uint32_t top = 0;  // owner-only
  la::detail::atomic<std::uint64_t> hits{0};
  la::detail::atomic<std::uint64_t> parked{0};
};

// One shard's gate + statistics, padded together: the gate RMW already
// owns this line on every shard-path op, so the stat increments ride on
// it for free instead of bouncing a separate global line (which would
// bias the very cross-thread traffic scaling_sweep measures).
struct ShardCounters {
  la::detail::atomic<std::uint64_t> occupancy{0};  // the refusal gate
  la::detail::atomic<std::uint64_t> shared_gets{0};
  la::detail::atomic<std::uint64_t> direct_frees{0};
  la::detail::atomic<std::uint64_t> refusals{0};
};

inline std::uint64_t next_instance_id() {
  static la::detail::atomic<std::uint64_t> source{1};
  return source.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

template <typename Inner>
class ShardedRenamer {
 public:
  // make_shard(index) -> std::unique_ptr<Inner>, called S times. The
  // caller decides how the global contention bound splits across shards
  // (the registry gives every shard ceil(capacity / S)).
  template <typename Factory>
  ShardedRenamer(const ShardedConfig& config, Factory&& make_shard)
      : config_(sanitized(config)), id_(detail::next_instance_id()) {
    shards_.reserve(config_.shards);
    for (std::uint32_t s = 0; s < config_.shards; ++s) {
      shards_.push_back(make_shard(s));
      if (shards_.back() == nullptr) {
        throw std::invalid_argument("ShardedRenamer: null shard factory");
      }
    }
    std::uint64_t max_slots = 1;
    for (const auto& shard : shards_) {
      gates_.push_back(shard->capacity());
      local_bounds_.push_back(shard->total_slots());
      capacity_ += shard->capacity();
      if (shard->total_slots() > max_slots) max_slots = shard->total_slots();
    }
    while ((std::uint64_t{1} << stride_shift_) < max_slots) ++stride_shift_;
    if (stride_shift_ >= 53) {
      throw std::invalid_argument("ShardedRenamer: shard stride overflows");
    }
    stride_ = std::uint64_t{1} << stride_shift_;
    total_slots_ = static_cast<std::uint64_t>(config_.shards) * stride_;
    held_ = std::vector<sync::TasCell>(total_slots_);
    counts_ = std::vector<sync::CachePadded<detail::ShardCounters>>(
        config_.shards);
    caches_ = std::vector<sync::CachePadded<detail::CacheSlot>>(
        config_.max_threads);
    bins_ = std::vector<la::detail::atomic<std::uint64_t>>(
        static_cast<std::size_t>(config_.max_threads) *
        config_.cache_capacity);
    for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
    for (std::uint32_t slot = 0; slot < config_.max_threads; ++slot) {
      caches_[slot]->home_shard = slot % config_.shards;
      caches_[slot]->first = slot * config_.cache_capacity;
    }
    control_ = std::make_shared<CacheControl>();
    control_->flush = &ShardedRenamer::flush_thunk;
    control_->owner.store(this, std::memory_order_release);
  }

  ShardedRenamer(const ShardedRenamer&) = delete;
  ShardedRenamer& operator=(const ShardedRenamer&) = delete;

  ~ShardedRenamer() {
    // Threads that already exited have flushed; the current thread's (and
    // any future) exit hook sees the null owner and skips. Destroying the
    // structure while other threads still operate on it is UB, as for
    // every structure in this library.
    control_->owner.store(nullptr, std::memory_order_release);
  }

  template <typename Rng>
  GetResult get(Rng& rng) {
    GetResult out;
    // With no deadline get_for_impl cannot refuse, only block.
    (void)get_for_impl(rng, out, api::kNoDeadline);
    return out;
  }

  // Bounded-wait Get: park at most until the absolute CLOCK_MONOTONIC
  // deadline (api::kNoDeadline = forever), then refuse with false — the
  // timed-out refusal the api::get_for contract defines. Counted in
  // wait_stats().timeouts.
  template <typename Rng>
  bool get_for(Rng& rng, GetResult& out, std::uint64_t deadline_ns) {
    return get_for_impl(rng, out, deadline_ns);
  }

  // Batch claim: pop parked names in one walk down the cache stack, then
  // reserve each shard's gate with a single fetch_add(k) — refunding the
  // unused remainder exactly on partial refusal — and claim the accepted
  // count through the inner structure's own batch surface (the gate
  // reservation is what lets the inner total claim run to completion).
  // May grant fewer than k (even zero) when every shard refuses after a
  // cache drain: partial batches hand the retry decision to the caller
  // instead of spinning here, which is the api batch contract.
  template <typename Rng>
  std::size_t get_batch(Rng& rng, GetResult* out, std::size_t k) {
    if (k == 0) return 0;
    detail::CacheSlot* cache =
        config_.cache_capacity != 0 ? cache_slot() : nullptr;
    std::size_t granted = 0;
    if (cache != nullptr) {
      granted = pop_parked_batch(*cache, out, k);
      if (granted == k) return granted;
    }
    const std::uint32_t home =
        cache != nullptr ? cache->home_shard : hashed_home();
    const std::size_t first_shared = granted;
    bool drained = false;
    for (;;) {
      std::uint32_t refusals = 0;
      for (std::uint32_t i = 0; i < config_.shards && granted < k; ++i) {
        const std::uint32_t s = ring(home, i);
        detail::ShardCounters& count = *counts_[s];
        const std::uint64_t want = k - granted;
        const std::uint64_t prev =
            count.occupancy.fetch_add(want, std::memory_order_relaxed);
        const std::uint64_t room = prev < gates_[s] ? gates_[s] - prev : 0;
        const std::uint64_t accepted = room < want ? room : want;
        if (accepted < want) {
          // Exact refund of the unclaimable remainder; the gate never
          // drifts past what this sweep actually takes.
          count.occupancy.fetch_sub(want - accepted,
                                    std::memory_order_relaxed);
          count.refusals.fetch_add(1, std::memory_order_relaxed);
          ++refusals;
        }
        if (accepted == 0) continue;
        std::size_t got = 0;
        try {
          got = api::get_batch(*shards_[s], rng, out + granted,
                               static_cast<std::size_t>(accepted));
        } catch (...) {
          count.occupancy.fetch_sub(accepted, std::memory_order_relaxed);
          throw;
        }
        if (got < accepted) {
          count.occupancy.fetch_sub(accepted - got,
                                    std::memory_order_relaxed);
        }
        count.shared_gets.fetch_add(got, std::memory_order_relaxed);
        for (std::size_t g = 0; g < got; ++g) {
          GetResult inner = out[granted + g];
          out[granted + g] = grant(
              (static_cast<std::uint64_t>(s) << stride_shift_) | inner.name,
              inner.probes, inner);
        }
        granted += got;
      }
      if (granted > first_shared && refusals != 0) {
        // Same accounting as get(): overflow probes past full shards ride
        // on the sweep's first shard-claimed result.
        out[first_shared].probes += refusals;
      }
      if (granted > 0) return granted;
      if (drained) return 0;
      // Every shard refused and the cache had nothing: parked names are
      // the reclaimable capacity — drain once, sweep again, and only
      // then report the refusal upward.
      drain_caches();
      drained = true;
    }
  }

  // Bounded-wait batch claim: retries get_batch through the same
  // spin/yield/park ladder as get_for until *something* is granted or
  // the deadline passes. Returns the granted count — a partial grant
  // returns immediately (the api batch contract hands the top-up retry
  // to the caller); 0 means the deadline expired with every shard at
  // its bound (counted in wait_stats().timeouts).
  template <typename Rng>
  std::size_t get_batch_for(Rng& rng, GetResult* out, std::size_t k,
                            std::uint64_t deadline_ns) {
    if (k == 0) return 0;
    sync::Backoff backoff;
    bool handoff = false;
    for (;;) {
      const std::size_t granted = get_batch(rng, out, k);
      if (granted != 0) return granted;
      gate_wait_rounds_.fetch_add(1, std::memory_order_relaxed);
      if (deadline_ns != api::kNoDeadline &&
          sync::FutexWord::monotonic_now_ns() >= deadline_ns) {
        gate_timeouts_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      if (!backoff.should_park()) {
        backoff.pause();
        continue;
      }
      sync::WaitQueue::Waiter waiter;
      wait_queue_.prepare_wait(waiter, handoff);
      if (probe_capacity()) {
        wait_queue_.cancel_wait(waiter);
        continue;
      }
      gate_parks_.fetch_add(1, std::memory_order_relaxed);
      if (wait_queue_.commit_wait(waiter, deadline_ns) ==
          sync::WaitResult::kTimedOut) {
        gate_timeouts_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      handoff = true;  // granted a wake: keep queue position on re-park
    }
  }

  void free(std::uint64_t name) {
    if (name >= total_slots_ ||
        (name & (stride_ - 1)) >=
            local_bounds_[static_cast<std::size_t>(name >> stride_shift_)]) {
      throw std::out_of_range("ShardedRenamer::free: name out of range");
    }
    // Only the holder may free, so the read is race-free (same argument
    // as LevelArray::free); parked names have this bit clear, so a
    // double free of a parked name fails here, loudly.
    if (!held_[name].held()) {
      throw std::logic_error(
          "ShardedRenamer::free: name not held (double free?)");
    }
    held_[name].release();
    if (config_.cache_capacity != 0) {
      if (detail::CacheSlot* cache = cache_slot()) {
        park(*cache, name);
        notify_one_release();
        return;
      }
    }
    release_to_shard(name);
    counts_[static_cast<std::size_t>(name >> stride_shift_)]
        ->direct_frees.fetch_add(1, std::memory_order_relaxed);
    notify_one_release();
  }

  // Batch free: validate and clear every held bit first — catching
  // out-of-range names, double frees, and duplicates inside the batch —
  // then distribute the whole batch at once: one walk parks into the
  // cache with a single stats update, and the overflow releases straight
  // to the shards in shard-grouped runs so each gate takes one fetch_sub
  // per run instead of one per name. On a bad name the already-cleared
  // prefix is distributed before the throw, so a throwing batch has
  // freed exactly the names before the one it reports (the api batch
  // contract, matching the single-op fallback loop).
  void free_batch(const std::uint64_t* names, std::size_t k) {
    std::size_t cleared = 0;
    try {
      for (; cleared < k; ++cleared) {
        const std::uint64_t name = names[cleared];
        if (name >= total_slots_ ||
            (name & (stride_ - 1)) >=
                local_bounds_[static_cast<std::size_t>(name >>
                                                       stride_shift_)]) {
          throw std::out_of_range(
              "ShardedRenamer::free_batch: name out of range");
        }
        // Clearing as we validate is also the duplicate detector: the
        // second occurrence of a name inside the batch reads clear here.
        if (!held_[name].held()) {
          throw std::logic_error(
              "ShardedRenamer::free_batch: name not held (double free?)");
        }
        held_[name].release();
      }
    } catch (...) {
      distribute_freed(names, cleared);
      throw;
    }
    distribute_freed(names, k);
  }

  // Logically held names: drains every cache first (so the shards' own
  // state agrees with the logical state at the audit point), then
  // word-scans the dense held-bitmap. The drain is deliberate — it is
  // what makes the scan *exact* against the shards at quiescence — but
  // it perturbs the structure (destroys cache locality for every
  // thread), so observability paths that only need the logical hold set
  // must use peek_held() instead. Collect-forced drains are counted in
  // ShardedStats::collect_drains, not cache_drains, so the
  // drain-pressure metric still measures capacity pressure alone.
  std::size_t collect(std::vector<std::uint64_t>& out) const {
    drain_bins(bins_.data(), bins_.size());
    collect_drains_.fetch_add(1, std::memory_order_relaxed);
    notify_bulk_release();
    return peek_held(out);
  }

  // Non-perturbing hold-set scan: the dense held-bitmap alone, no cache
  // drain. This is still *exact* for logical holds — free() clears the
  // held bit before parking the name, so a parked (logically free) name
  // never appears here — but unlike collect() it leaves the shards' own
  // occupancy out of sync with the logical state (parked names stay
  // acquired inside their shard). Monitoring, stats, and snapshot
  // paths that tolerate racy-snapshot semantics use this.
  std::size_t peek_held(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    core::slot_scan::for_each_held(held_.data(), held_.size(),
                                   [&](std::uint64_t name) {
                                     out.push_back(name);
                                     ++found;
                                   });
    return found;
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t total_slots() const { return total_slots_; }

  std::uint32_t num_shards() const { return config_.shards; }
  std::uint64_t shard_stride() const { return stride_; }
  // Shard `index`'s current gate reservation (racy snapshot). At
  // quiescence with drained caches it must equal the shard's true holds
  // — the batch tests pin the no-drift acceptance criterion on it.
  std::uint64_t gate_occupancy(std::uint32_t index) const {
    return counts_[index]->occupancy.load(std::memory_order_relaxed);
  }
  const Inner& shard(std::uint32_t index) const { return *shards_[index]; }
  const ShardedConfig& config() const { return config_; }

  // Flush every thread's parked names back to their shards. Safe against
  // concurrent owners (bins hand off by exchange); called by collect(),
  // the global-miss path, thread exit, and tests.
  void drain_caches() const {
    drain_bins(bins_.data(), bins_.size());
    drains_.fetch_add(1, std::memory_order_relaxed);
    notify_bulk_release();
  }

  // The eventcount every capacity-releasing path signals; gate-refused
  // callers (see get() above and bench_util::detail::drive) park on it.
  sync::FutexWord& free_signal() const { return free_signal_; }

  api::WaitStats wait_stats() const {
    api::WaitStats stats;
    stats.wait_rounds = gate_wait_rounds_.load(std::memory_order_relaxed);
    stats.parks = gate_parks_.load(std::memory_order_relaxed);
    stats.timeouts = gate_timeouts_.load(std::memory_order_relaxed);
    return stats;
  }

  ShardedStats stats() const {
    ShardedStats totals;
    for (auto& padded : caches_) {
      totals.cache_hits += padded->hits.load(std::memory_order_relaxed);
      totals.parked_frees += padded->parked.load(std::memory_order_relaxed);
    }
    for (auto& padded : counts_) {
      totals.shared_gets +=
          padded->shared_gets.load(std::memory_order_relaxed);
      totals.direct_frees +=
          padded->direct_frees.load(std::memory_order_relaxed);
      totals.shard_refusals +=
          padded->refusals.load(std::memory_order_relaxed);
    }
    totals.cache_drains = drains_.load(std::memory_order_relaxed);
    totals.collect_drains = collect_drains_.load(std::memory_order_relaxed);
    return totals;
  }

  // Checkpoint adoption (src/api/snapshot.hpp): re-seed one held name on
  // restore, decomposing the *global* name by this instance's stride —
  // which is how a restored image re-routes names into a different shard
  // count: the same numeric name lands in its new home shard. Reserves
  // the shard's gate (length_error past the bound — the image does not
  // fit this configuration), marks the logical held bit (logic_error on
  // a duplicate), and adopts the local slot inside the inner structure,
  // unwinding both on an inner throw. Available only when the Inner can
  // adopt (SFINAE on Inner::adopt_held — SplitterRenamer cannot, so
  // sharded:splitter is non-restorable by construction).
  template <typename I = Inner>
  auto adopt_held(std::uint64_t name) -> std::void_t<
      decltype(std::declval<I&>().adopt_held(std::uint64_t{}))> {
    const auto s = static_cast<std::size_t>(name >> stride_shift_);
    if (name >= total_slots_ || (name & (stride_ - 1)) >= local_bounds_[s]) {
      throw std::out_of_range(
          "ShardedRenamer::adopt_held: name does not route to any shard "
          "slot in this configuration");
    }
    if (!held_[name].try_acquire()) {
      throw std::logic_error(
          "ShardedRenamer::adopt_held: name already held (duplicate name)");
    }
    detail::ShardCounters& count = *counts_[s];
    if (count.occupancy.fetch_add(1, std::memory_order_relaxed) >=
        gates_[s]) {
      count.occupancy.fetch_sub(1, std::memory_order_relaxed);
      held_[name].release();
      throw std::length_error(
          "ShardedRenamer::adopt_held: shard gate at capacity (image does "
          "not fit this configuration)");
    }
    try {
      shards_[s]->adopt_held(name & (stride_ - 1));
    } catch (...) {
      count.occupancy.fetch_sub(1, std::memory_order_relaxed);
      held_[name].release();
      throw;
    }
  }

 private:
  static ShardedConfig sanitized(ShardedConfig config) {
    if (config.shards == 0) config.shards = 1;
    if (config.max_threads == 0) config.max_threads = 1;
    if (config.cache_flush_batch == 0) config.cache_flush_batch = 1;
    if (config.cache_flush_batch > config.cache_capacity &&
        config.cache_capacity != 0) {
      config.cache_flush_batch = config.cache_capacity;
    }
    return config;
  }

  std::uint32_t ring(std::uint32_t home, std::uint32_t step) const {
    const std::uint32_t s = home + step;
    return s < config_.shards ? s : s - config_.shards;
  }

  std::uint32_t hashed_home() const {
#if defined(LEVELARRAY_VERIFY)
    // Every fiber shares the one real thread's id; the runtime's logical
    // thread id keeps homes distinct per model-checked thread.
    return ::la::verify::current_thread_id() % config_.shards;
#else
    return static_cast<std::uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        config_.shards);
#endif
  }

  GetResult grant(std::uint64_t name, std::uint32_t probes,
                  GetResult from_inner = GetResult{}) {
    if (held_[name].held()) {
      // Either an inner structure issued a name it already issued, or a
      // cache bin handed out a name twice — both corrupt occupancy.
      throw std::logic_error("ShardedRenamer: duplicate grant of name " +
                             std::to_string(name));
    }
    held_[name].mark_held();
    GetResult result = from_inner;
    result.name = name;
    result.probes = probes;
    return result;
  }

  // The one Get slow path (get and get_for are thin wrappers): cache
  // pop, then shard sweep, then the spin/yield/park ladder. Returns
  // false only on a timed-out refusal (impossible with kNoDeadline).
  template <typename Rng>
  bool get_for_impl(Rng& rng, GetResult& out, std::uint64_t deadline_ns) {
    detail::CacheSlot* cache =
        config_.cache_capacity != 0 ? cache_slot() : nullptr;
    if (cache != nullptr) {
      const std::uint64_t token = pop_parked(*cache);
      if (token != 0) {
        out = grant(token - 1, /*probes=*/1);
        return true;
      }
    }
    const std::uint32_t home =
        cache != nullptr ? cache->home_shard : hashed_home();
    std::uint32_t refusals = 0;
    sync::Backoff backoff;
    bool handoff = false;
    for (;;) {
      for (std::uint32_t i = 0; i < config_.shards; ++i) {
        const std::uint32_t s = ring(home, i);
        detail::ShardCounters& count = *counts_[s];
        if (count.occupancy.fetch_add(1, std::memory_order_relaxed) >=
            gates_[s]) {
          count.occupancy.fetch_sub(1, std::memory_order_relaxed);
          count.refusals.fetch_add(1, std::memory_order_relaxed);
          ++refusals;
          continue;
        }
        GetResult result;
        try {
          result = shards_[s]->get(rng);
        } catch (...) {
          count.occupancy.fetch_sub(1, std::memory_order_relaxed);
          throw;
        }
        count.shared_gets.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t name =
            (static_cast<std::uint64_t>(s) << stride_shift_) | result.name;
        result.probes += refusals;
        out = grant(name, result.probes, result);
        return true;
      }
      // Every shard refused: parked names are the reclaimable capacity.
      // Drain them back to the shards and retry — with true holds below
      // the contention bound, some shard must then accept. Back off
      // between rounds: a refusal storm can also be transient gate
      // reservations by peers who need the timeslice to finish. Once the
      // spin/yield tiers are exhausted (genuine oversubscription at the
      // contention bound), park on the FIFO wait queue instead of
      // burning CPU: register as a waiter first, re-probe, and only then
      // sleep — the eventcount protocol, so a Free between the probe and
      // the sleep wakes us immediately (zero lost wakeups; see
      // wait_queue.hpp). Single Frees wake exactly the oldest waiter
      // (wake-one + handoff: a woken waiter that loses the sweep race
      // re-enqueues at the *front*), so starvation is bounded by queue
      // position instead of scheduler luck.
      drain_caches();
      gate_wait_rounds_.fetch_add(1, std::memory_order_relaxed);
      if (deadline_ns != api::kNoDeadline &&
          sync::FutexWord::monotonic_now_ns() >= deadline_ns) {
        gate_timeouts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (!backoff.should_park()) {
        backoff.pause();
        continue;
      }
      sync::WaitQueue::Waiter waiter;
      wait_queue_.prepare_wait(waiter, handoff);
      if (probe_capacity()) {
        wait_queue_.cancel_wait(waiter);
        continue;
      }
      gate_parks_.fetch_add(1, std::memory_order_relaxed);
      if (wait_queue_.commit_wait(waiter, deadline_ns) ==
          sync::WaitResult::kTimedOut) {
        gate_timeouts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      handoff = true;  // granted a wake: keep queue position on re-park
    }
  }

  // Release notification, both flavors. Internal waiters sleep on the
  // FIFO wait_queue_ (wake-one keeps releases from stampeding the whole
  // queue at one freed slot); external callers — the drive loop parked
  // via free_signal() — still sleep on the plain eventcount, so every
  // release signals both. Both no-waiter fast paths are fence+load.
  void notify_one_release() const {
    wait_queue_.wake_one();
    free_signal_.signal();
  }

  void notify_bulk_release() const {
    wait_queue_.wake_all();
    free_signal_.signal();
  }

  // Release `name`'s underlying slot back to its shard. Gate decrement
  // strictly after the inner free: the gate must always upper-bound the
  // shard's true holds, or the inner Get termination argument breaks.
  void release_to_shard(std::uint64_t name) const {
    const std::uint32_t s = static_cast<std::uint32_t>(name >> stride_shift_);
    shards_[s]->free(name & (stride_ - 1));
    counts_[s]->occupancy.fetch_sub(1, std::memory_order_relaxed);
  }

  // The one copy of the steal protocol: exchange each bin out and
  // release whatever was parked there. Used by the full drain and by the
  // thread-exit flush (a one-slot restriction of the same loop).
  void drain_bins(la::detail::atomic<std::uint64_t>* bins, std::size_t count) const {
    for (std::size_t i = 0; i < count; ++i) {
      if (bins[i].load(std::memory_order_relaxed) == 0) continue;
      const std::uint64_t token =
          bins[i].exchange(0, std::memory_order_acquire);
      if (token != 0) release_to_shard(token - 1);
    }
  }

  // Owner-only: pop the most recently parked name still present, walking
  // down from the stack hint over bins stealers may have emptied. The
  // exchange races concurrent steals; whoever reads nonzero owns it.
  std::uint64_t pop_parked(detail::CacheSlot& cache) {
    la::detail::atomic<std::uint64_t>* bins = bins_.data() + cache.first;
    for (std::uint32_t i = cache.top; i-- > 0;) {
      if (bins[i].load(std::memory_order_relaxed) == 0) continue;
      const std::uint64_t token =
          bins[i].exchange(0, std::memory_order_acquire);
      if (token != 0) {
        cache.top = i;
        cache.hits.store(cache.hits.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
        return token;
      }
    }
    cache.top = 0;
    return 0;
  }

  // Owner-only: pop up to k parked names in one walk down the stack —
  // same exchange-per-bin protocol as pop_parked, but the stack hint and
  // the hits stat are written once per walk instead of once per name.
  // After the walk every bin at or above the new top is zero, so the
  // park invariant is preserved.
  std::size_t pop_parked_batch(detail::CacheSlot& cache, GetResult* out,
                               std::size_t k) {
    la::detail::atomic<std::uint64_t>* bins = bins_.data() + cache.first;
    std::size_t popped = 0;
    std::uint32_t i = cache.top;
    while (i > 0 && popped < k) {
      --i;
      if (bins[i].load(std::memory_order_relaxed) == 0) continue;
      const std::uint64_t token =
          bins[i].exchange(0, std::memory_order_acquire);
      if (token != 0) {
        out[popped++] = grant(token - 1, /*probes=*/1);
      }
    }
    cache.top = i;
    if (popped != 0) {
      cache.hits.store(cache.hits.load(std::memory_order_relaxed) + popped,
                       std::memory_order_relaxed);
    }
    return popped;
  }

  // Distribute a batch of already-cleared names: fill the cache stack up
  // to capacity in one walk (per-name park() would re-check overflow and
  // bump the stats every time), then release the overflow straight to
  // the shards in shard-grouped runs — inner frees first, then one gate
  // fetch_sub for the whole run, so the gate keeps upper-bounding the
  // shard's true holds throughout. Precondition: the held bits for
  // names[0..count) are cleared and the caller owns the names
  // exclusively; nothing here throws short of real corruption.
  void distribute_freed(const std::uint64_t* names, std::size_t count) {
    std::size_t i = 0;
    if (config_.cache_capacity != 0) {
      if (detail::CacheSlot* cache = cache_slot()) {
        la::detail::atomic<std::uint64_t>* bins = bins_.data() + cache->first;
        std::uint32_t top = cache->top;
        while (i < count && top < config_.cache_capacity) {
          bins[top++].store(names[i++] + 1, std::memory_order_release);
        }
        cache->top = top;
        if (i != 0) {
          cache->parked.store(
              cache->parked.load(std::memory_order_relaxed) + i,
              std::memory_order_relaxed);
        }
      }
    }
    while (i < count) {
      const auto s =
          static_cast<std::uint32_t>(names[i] >> stride_shift_);
      std::size_t run = 0;
      while (i < count &&
             static_cast<std::uint32_t>(names[i] >> stride_shift_) == s) {
        shards_[s]->free(names[i] & (stride_ - 1));
        ++i;
        ++run;
      }
      counts_[s]->occupancy.fetch_sub(run, std::memory_order_relaxed);
      counts_[s]->direct_frees.fetch_add(run, std::memory_order_relaxed);
    }
    // Bulk Free-k releases many slots at once — the one case where
    // waking the whole queue is the point, not a herd.
    if (count == 1) {
      notify_one_release();
    } else if (count != 0) {
      notify_bulk_release();
    }
  }

  // Park-path re-check: is there any capacity a retry could claim? Gates
  // below their bound cover true free slots; nonzero bins cover parked
  // names (gate-counted but reclaimable via a drain). Relaxed loads are
  // sound inside the eventcount window: a release that this probe misses
  // happened after prepare_wait registered us, so its signal() bumps the
  // word and commit_wait returns immediately.
  bool probe_capacity() const {
    for (std::uint32_t s = 0; s < config_.shards; ++s) {
      if (counts_[s]->occupancy.load(std::memory_order_relaxed) < gates_[s]) {
        return true;
      }
    }
    for (const auto& bin : bins_) {
      if (bin.load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  // Owner-only: park `name` at the stack top. Invariant: every nonzero
  // bin sits below `top` (park stores at top, pop lowers top to the bin
  // it took, steals only zero bins), so bins[top] is known empty and the
  // fast path is a single release store. A saturated stack compacts:
  // the owner sweeps its bins (exchanging out survivors — steals race
  // fairly), flushes the oldest batch to the shards if the cache was
  // genuinely full, and re-lays the rest from the bottom.
  void park(detail::CacheSlot& cache, std::uint64_t name) {
    la::detail::atomic<std::uint64_t>* bins = bins_.data() + cache.first;
    if (cache.top == config_.cache_capacity) {
      // Allocation-free two-pass compact (free() has already cleared the
      // held bit, so nothing here may throw short of real corruption).
      // Pass 1 counts survivors; a racing steal can only shrink the
      // count after we read it, so "looks full" at worst flushes a batch
      // a steal had just made unnecessary — bounded and correct.
      std::uint32_t count = 0;
      for (std::uint32_t i = 0; i < config_.cache_capacity; ++i) {
        if (bins[i].load(std::memory_order_relaxed) != 0) ++count;
      }
      std::uint32_t to_flush =
          count == config_.cache_capacity ? config_.cache_flush_batch : 0;
      // Pass 2: exchange each bin out; release the oldest `to_flush`,
      // re-lay the rest from the bottom. The write cursor never passes
      // the read cursor, so it only stores into bins already emptied.
      std::uint32_t write = 0;
      for (std::uint32_t i = 0; i < config_.cache_capacity; ++i) {
        const std::uint64_t token =
            bins[i].exchange(0, std::memory_order_acquire);
        if (token == 0) continue;
        if (to_flush != 0) {
          --to_flush;
          release_to_shard(token - 1);
        } else {
          bins[write++].store(token, std::memory_order_release);
        }
      }
      cache.top = write;
    }
    bins[cache.top].store(name + 1, std::memory_order_release);
    ++cache.top;
    cache.parked.store(cache.parked.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  }

  // This thread's cache slot (claiming one on first touch), or nullptr
  // when all slots are taken. One thread_local (id, slot) pair makes the
  // steady-state lookup a single compare; instance ids are never reused,
  // so a stale pair can only miss, never alias.
  detail::CacheSlot* cache_slot() {
#if defined(LEVELARRAY_VERIFY)
    // No memo under the checker: the thread_local pair would alias
    // across fibers. The registry walk is the path being verified.
    auto& attachments = ThreadAttachments::current();
#else
    static thread_local std::uint64_t last_id = 0;
    static thread_local detail::CacheSlot* last_slot = nullptr;
    if (last_id == id_) return last_slot;
    auto& attachments = ThreadAttachments::current();
#endif
    std::uint32_t slot = attachments.find(control_.get());
    if (slot == ThreadAttachments::kNotAttached) {
      slot = claim_slot();
      attachments.attach(control_, slot);
    }
    detail::CacheSlot* resolved =
        slot == ThreadAttachments::kNoCache ? nullptr : &*caches_[slot];
#if !defined(LEVELARRAY_VERIFY)
    last_id = id_;
    last_slot = resolved;
#endif
    return resolved;
  }

  std::uint32_t claim_slot() {
    sync::SpinLockGuard guard(claim_lock_);
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    if (claimed_ < caches_.size()) {
      return static_cast<std::uint32_t>(claimed_++);
    }
    return ThreadAttachments::kNoCache;
  }

  // Thread-exit hook: flush the exiting thread's bins and recycle its
  // slot for the next thread (long-lived structures see generations of
  // short-lived threads — see run_churn's chunked callers).
  static void flush_thunk(void* owner, std::uint32_t slot) {
    auto* self = static_cast<ShardedRenamer*>(owner);
    detail::CacheSlot& cache = *self->caches_[slot];
    self->drain_bins(self->bins_.data() + cache.first,
                     self->config_.cache_capacity);
    self->notify_bulk_release();  // the flush may have released capacity
    cache.top = 0;  // published to the next claimer via claim_lock_
    sync::SpinLockGuard guard(self->claim_lock_);
    self->free_slots_.push_back(slot);
  }

  ShardedConfig config_;
  std::uint64_t id_;
  std::vector<std::unique_ptr<Inner>> shards_;
  std::vector<std::uint64_t> gates_;
  std::vector<std::uint64_t> local_bounds_;
  std::uint64_t capacity_ = 0;
  std::uint32_t stride_shift_ = 0;
  std::uint64_t stride_ = 1;
  std::uint64_t total_slots_ = 0;
  std::vector<sync::TasCell> held_;
  mutable std::vector<sync::CachePadded<detail::ShardCounters>> counts_;
  mutable std::vector<sync::CachePadded<detail::CacheSlot>> caches_;
  mutable std::vector<la::detail::atomic<std::uint64_t>> bins_;
  sync::SpinLock claim_lock_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t claimed_ = 0;
  std::shared_ptr<CacheControl> control_;
  mutable la::detail::atomic<std::uint64_t> drains_{0};
  mutable la::detail::atomic<std::uint64_t> collect_drains_{0};
  // The blocking tier (see get_for_impl): every release path notifies,
  // refused getters park. Internal waiters use the ticketed FIFO
  // wait_queue_ (wake-one + handoff bounds starvation by queue
  // position); the plain free_signal_ eventcount remains for external
  // parkers via free_signal(). Mutable because collect()'s drain
  // releases capacity.
  mutable sync::FutexWord free_signal_;
  mutable sync::WaitQueue wait_queue_;
  mutable la::detail::atomic<std::uint64_t> gate_wait_rounds_{0};
  mutable la::detail::atomic<std::uint64_t> gate_parks_{0};
  mutable la::detail::atomic<std::uint64_t> gate_timeouts_{0};
};

}  // namespace la::scale
