// The one compile-time seam between the real atomics and the model
// checker: every concurrency-bearing layer (sync/, core/slot_scan.hpp,
// core/level_array.hpp, scale/, svc/ring.hpp slots) declares its shared
// words as la::detail::atomic<T> instead of std::atomic<T>.
//
//   * Real builds: la::detail::atomic IS std::atomic — a pure alias, so
//     codegen, layout, and the TSan story are untouched.
//   * -DLEVELARRAY_VERIFY builds: the alias resolves to verify::atom<T>,
//     whose every load/store/RMW is a yield point of the cooperative
//     scheduler in src/verify/ — the schedule-exploring model checker
//     interleaves threads at exactly the granularity the memory system
//     does, tracks happens-before from the *declared* memory orders, and
//     flags ordering downgrades as races on the data they were guarding.
//
// The seam is deliberately one alias (plus the matching fence function)
// so the checked code is the shipped code: no #ifdef forks inside the
// protocols, no hand-copied models that can drift. Layers outside the
// lock-free core (svc segments shared across processes, stress logs,
// arrays/) stay on std::atomic and are not part of the verify build.
#pragma once

#if defined(LEVELARRAY_VERIFY)

#include "verify/atom.hpp"

namespace la::detail {

template <typename T>
using atomic = ::la::verify::atom<T>;

using atomic_flag = ::la::verify::atom_flag;

inline void atomic_thread_fence(std::memory_order order) {
  ::la::verify::fence(order);
}

}  // namespace la::detail

#else

#include <atomic>

namespace la::detail {

template <typename T>
using atomic = ::std::atomic<T>;

using atomic_flag = ::std::atomic_flag;

inline void atomic_thread_fence(std::memory_order order) {
  ::std::atomic_thread_fence(order);
}

}  // namespace la::detail

#endif
