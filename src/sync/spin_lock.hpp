// SpinLock — one-word test-and-set mutex for tiny critical sections that
// are uncontended in the common case (a thread locking its own per-thread
// name cache). The uncontended path is a single exchange; contention
// falls back to the shared pause-then-yield Backoff so an oversubscribed
// host does not burn a timeslice spinning against a preempted owner.
#pragma once

#include <atomic>

#include "sync/annotations.hpp"
#include "sync/atomic_select.hpp"
#include "sync/spin_barrier.hpp"

namespace la::sync {

class LA_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() LA_ACQUIRE() {
    if (!locked_.exchange(true, std::memory_order_acquire)) return;
    Backoff backoff;
    do {
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    } while (locked_.exchange(true, std::memory_order_acquire));
  }

  void unlock() LA_RELEASE() { locked_.store(false, std::memory_order_release); }

 private:
  la::detail::atomic<bool> locked_{false};
};

// Scoped lock for SpinLock (std::lock_guard works too; this avoids the
// <mutex> include in hot-path headers).
class LA_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) LA_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() LA_RELEASE() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace la::sync
