// SpinLock — one-word test-and-set mutex for tiny critical sections that
// are uncontended in the common case (a thread locking its own per-thread
// name cache). The uncontended path is a single exchange; contention
// falls back to the shared pause-then-yield Backoff so an oversubscribed
// host does not burn a timeslice spinning against a preempted owner.
#pragma once

#include <atomic>

#include "sync/spin_barrier.hpp"

namespace la::sync {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    if (!locked_.exchange(true, std::memory_order_acquire)) return;
    Backoff backoff;
    do {
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    } while (locked_.exchange(true, std::memory_order_acquire));
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// Scoped lock for SpinLock (std::lock_guard works too; this avoids the
// <mutex> include in hot-path headers).
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinLockGuard() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace la::sync
