// TasCell — one byte-wide test-and-set slot, the unit cell of every
// activity array in this library. The paper's layout argument (§1, §5)
// depends on the cell being a single dense byte: Collect() then reads 64
// slots per cache line, which is what makes full-array scans cheap.
//
// Declared on the la::detail::atomic seam (sync/atomic_select.hpp) so
// -DLEVELARRAY_VERIFY builds run the exact claim/release protocol under
// the model checker in src/verify/.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/atomic_select.hpp"

namespace la::sync {

class TasCell {
 public:
  TasCell() = default;
  TasCell(const TasCell&) = delete;
  TasCell& operator=(const TasCell&) = delete;

  // Test-and-test-and-set: the relaxed read keeps failed probes from
  // bouncing the line into exclusive state.
  bool try_acquire() {
    if (flag_.load(std::memory_order_relaxed) != 0) return false;
#if defined(LEVELARRAY_VERIFY_MUTATE_TAS_ACQUIRE)
    // Seeded ordering bug for the verify-tier teeth check: downgrading
    // the claim edge to relaxed severs the synchronizes-with to the
    // previous owner's release, and the model checker must catch it as
    // a race on the data guarded by the cell.
    return flag_.exchange(1, std::memory_order_relaxed) == 0;  // atomics-lint: mutation
#else
    return flag_.exchange(1, std::memory_order_acquire) == 0;
#endif
  }

  void release() { flag_.store(0, std::memory_order_release); }

  // Non-RMW transition to held, for callers that already own exclusivity
  // over the cell through another synchronization edge (the scale layer's
  // held-bitmap: a name reaches its granter via a per-thread cache bin or
  // an inner TAS, so two threads can never race to mark the same cell).
  // Checking held() first stays the caller's job.
  void mark_held() { flag_.store(1, std::memory_order_release); }

  bool held() const { return flag_.load(std::memory_order_relaxed) != 0; }

 private:
  la::detail::atomic<std::uint8_t> flag_{0};
};

#if !defined(LEVELARRAY_VERIFY)
static_assert(sizeof(TasCell) == 1, "activity arrays require dense 1-byte slots");
#endif

}  // namespace la::sync
