// Sense-reversing spin barrier, reusable across rounds *within* a
// parallel section: round r+1 cannot complete until every participant has
// entered it, which requires each to have observed round r's sense flip
// first — so the flip-back can never strand a straggler. The stress
// subsystem's burst scenario leans on exactly this (barrier storms with
// no join between rounds).
//
// Waiters escalate from _mm_pause to std::this_thread::yield after a few
// hundred spins: when threads outnumber cores (the stress default), the
// thread that must flip the sense may not even be scheduled, and a
// yield-free spin would burn a whole quantum per waiter per round.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "sync/atomic_select.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace la::sync {

inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Escalating busy-wait: cheap pauses while the wait is likely short, then
// yield to the scheduler so spinners stop starving the thread they are
// waiting on. Create one per wait loop; call once per failed check.
//
// The third tier is advisory: after kParkAfterYields yields the wait is
// long enough that burning timeslices is pure waste, and should_park()
// turns true. Callers that own a wake source (a sync::FutexWord the
// release path signals) then park on it with the eventcount protocol —
// prepare_wait, re-check the condition, commit_wait — instead of calling
// pause() again. Backoff itself stays syscall-free so the two-tier
// callers are untouched.
class Backoff {
 public:
  void pause() {
    ++spins_;
#if defined(LEVELARRAY_VERIFY)
    // Under the model checker a busy iteration must block the fiber
    // until some other thread commits a store — re-running an identical
    // failed check explores nothing and would read as a livelock.
    ::la::verify::spin_yield(::la::verify::kNoDeadlineNs);
#else
    if (spins_ <= kYieldAfter) {
      spin_pause();
    } else {
      std::this_thread::yield();
    }
#endif
  }

  // True once this wait has outlived the spin and yield tiers; callers
  // with a FutexWord should park instead of pausing again.
  bool should_park() const { return spins_ >= kYieldAfter + kParkAfterYields; }

  void reset() { spins_ = 0; }

 private:
#if defined(LEVELARRAY_VERIFY)
  // Tiny tiers so harness cells reach the park path within their step
  // budget — the ladder's *structure* is what the checker explores, not
  // the production spin counts.
  static constexpr std::uint32_t kYieldAfter = 2;
  static constexpr std::uint32_t kParkAfterYields = 2;
#else
  static constexpr std::uint32_t kYieldAfter = 256;
  static constexpr std::uint32_t kParkAfterYields = 64;
#endif
  std::uint32_t spins_ = 0;
};

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants)
      : participants_(participants == 0 ? 1 : participants) {}

  std::uint32_t participants() const { return participants_; }

  void wait() {
    if (aborted_.load(std::memory_order_acquire)) return;
    const bool old_sense = sense_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(!old_sense, std::memory_order_release);
    } else {
      Backoff backoff;
      while (sense_.load(std::memory_order_acquire) == old_sense) {
        if (aborted_.load(std::memory_order_acquire)) return;
        backoff.pause();
      }
    }
  }

  // Poison the barrier: every current and future wait() returns
  // immediately. For a participant that dies mid-run (the stress driver
  // catches the exception and aborts) — without this, the survivors
  // would spin forever on a rendezvous that can never complete.
  void abort() { aborted_.store(true, std::memory_order_release); }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  const std::uint32_t participants_;
  la::detail::atomic<std::uint32_t> arrived_{0};
  la::detail::atomic<bool> sense_{false};
  la::detail::atomic<bool> aborted_{false};
};

}  // namespace la::sync
