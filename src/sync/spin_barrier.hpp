// Sense-reversing spin barrier. Reusable across rounds as long as rounds
// are separated by a join (which is how every bench uses it).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace la::sync {

inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants)
      : participants_(participants == 0 ? 1 : participants) {}

  std::uint32_t participants() const { return participants_; }

  void wait() {
    const bool old_sense = sense_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(!old_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) == old_sense) spin_pause();
    }
  }

 private:
  const std::uint32_t participants_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace la::sync
