// Clang thread-safety annotation macros (the abseil pattern): under
// clang with -Wthread-safety the compiler statically checks that every
// access to a GUARDED_BY member happens with the named capability held
// and that ACQUIRE/RELEASE pairings balance on every path. Under GCC
// (which has no such attributes) every macro expands to nothing, so the
// annotations cost zero outside the clang CI job that enforces them.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#if !defined(LA_THREAD_ANNOTATION)
#define LA_THREAD_ANNOTATION(x)
#endif

#define LA_CAPABILITY(x) LA_THREAD_ANNOTATION(capability(x))
#define LA_SCOPED_CAPABILITY LA_THREAD_ANNOTATION(scoped_lockable)
#define LA_GUARDED_BY(x) LA_THREAD_ANNOTATION(guarded_by(x))
#define LA_PT_GUARDED_BY(x) LA_THREAD_ANNOTATION(pt_guarded_by(x))
#define LA_ACQUIRE(...) LA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LA_RELEASE(...) LA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LA_REQUIRES(...) LA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LA_EXCLUDES(...) LA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LA_RETURN_CAPABILITY(x) LA_THREAD_ANNOTATION(lock_returned(x))
#define LA_NO_THREAD_SAFETY_ANALYSIS \
  LA_THREAD_ANNOTATION(no_thread_safety_analysis)
