// ThreadGroup — scoped fork/join. Threads spawned with spawn(count, fn)
// run fn(tid) and are joined when the group leaves scope, so benches can
// bracket a parallel section with plain braces.
#pragma once

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace la::sync {

class ThreadGroup {
 public:
  ThreadGroup() = default;
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;
  ~ThreadGroup() { join(); }

  template <typename Fn>
  void spawn(std::uint32_t count, Fn fn) {
    threads_.reserve(threads_.size() + count);
    for (std::uint32_t tid = 0; tid < count; ++tid) {
      threads_.emplace_back(fn, tid);
    }
  }

  void join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace la::sync
