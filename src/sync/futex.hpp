// FutexWord — an eventcount over one futex word, the blocking primitive
// behind every park in this library (the Backoff final tier, the svc
// doorbells, the WaitQueue's sleep word). The discipline is the classic
// two-phase wait that makes lost wakeups impossible by construction:
//
//   waiter:  seen = prepare_wait();        // register, snapshot the word
//            if (condition_now_true()) { cancel_wait(); proceed; }
//            commit_wait(seen);            // sleep iff word still == seen
//
//   waker:   make_condition_true();        // e.g. the Free's release
//            signal();                     // bump + wake if anyone waits
//
// prepare_wait's waiter registration is seq_cst-ordered before the
// waiter's re-check, and signal's fence is seq_cst-ordered after the
// waker's state change — so either the waiter's re-check sees the new
// state, or the waker's waiter-count load sees the registration and
// bumps the word, which makes commit_wait's FUTEX_WAIT return
// immediately (value != seen). Sleeping through a wake is therefore
// impossible; spurious returns are allowed and callers must loop.
//
// signal() is engineered for the hot path with no waiters: one seq_cst
// fence plus one load, no RMW, no syscall — a Free in the uncontended
// steady state pays nothing for the parked-waiter tier existing.
//
// Timed waits use FUTEX_WAIT_BITSET, whose timeout is an *absolute*
// CLOCK_MONOTONIC instant, and loop on EINTR and spurious returns until
// the deadline or a value change. The older FUTEX_WAIT relative form had
// two bugs this kills: a signal (any EINTR) ended the park early and was
// counted as a full park, and re-arming restarted the full relative
// timeout, so a park under signal bombardment could drift unboundedly
// past its nominal budget. With an absolute deadline, re-arming after
// EINTR converges on the same instant no matter how often it happens.
//
// The bitset doubles as a selective-wake channel: waiters can park on a
// subset mask and signal(bits) wakes only matching waiters — the
// WaitQueue uses this to wake exactly the oldest ticket without a
// thundering herd (see wait_queue.hpp).
//
// The word lives wherever it is placed — including a shared-memory
// segment mapped by several processes (the svc layer). `shared` selects
// the futex flavor: process-private ops let the kernel skip the mapping
// lookup; cross-process words must use the shared flavor. Non-Linux
// builds degrade commit_wait to a yield loop against a steady_clock
// deadline (the eventcount protocol makes that merely slower, never
// incorrect).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "sync/atomic_select.hpp"

#if defined(__linux__)
#include <errno.h>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace la::sync {

// How a timed park ended: the word moved (or a wake was delivered), or
// the absolute deadline passed with the word unchanged. Callers re-check
// their own condition either way; kTimedOut is what the deadline
// surfaces (api::get_for, the svc pending list) count as a timeout.
enum class WaitResult : std::uint8_t { kWoken, kTimedOut };

class FutexWord {
 public:
  // Sentinel deadline: wait forever. Matches FUTEX_BITSET_MATCH_ANY's
  // "no timeout" NULL timespec.
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};
  // Wake-mask matching every waiter (FUTEX_BITSET_MATCH_ANY).
  static constexpr std::uint32_t kAllWakeBits = 0xFFFFFFFFu;

  FutexWord() = default;
  explicit FutexWord(bool shared) : shared_(shared ? 1 : 0) {}
  FutexWord(const FutexWord&) = delete;
  FutexWord& operator=(const FutexWord&) = delete;

  // The deadline clock for every timed wait in this library: absolute
  // CLOCK_MONOTONIC nanoseconds, comparable across threads and (on one
  // host) across processes — which is what lets a svc client stamp a
  // deadline into a request slot the server enforces.
  static std::uint64_t monotonic_now_ns() {
#if defined(LEVELARRAY_VERIFY)
    // The model checker owns time: the virtual clock advances only when
    // every thread is blocked on a deadline, so timeout paths are
    // explored deterministically instead of raced against a wall clock.
    return ::la::verify::virtual_now_ns();
#elif defined(__linux__)
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  // Register as a waiter and snapshot the word. Every prepare_wait MUST
  // be paired with exactly one cancel_wait or commit_wait*.
  std::uint32_t prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return value_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_release); }

  // Sleep until the word moves past `seen` (or spuriously). Callers loop
  // on their own condition.
  void commit_wait(std::uint32_t seen) {
    wait_until(seen, kNoDeadline, kAllWakeBits);
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  // Timed variant against an *absolute* CLOCK_MONOTONIC deadline (in
  // nanoseconds, per monotonic_now_ns). Loops on EINTR and spurious
  // wakes: only a value change (kWoken) or the deadline itself
  // (kTimedOut) ends the park. `bits` restricts which signal() masks
  // can wake this waiter (default: any).
  WaitResult commit_wait_until(std::uint32_t seen, std::uint64_t deadline_ns,
                               std::uint32_t bits = kAllWakeBits) {
    const WaitResult r = wait_until(seen, deadline_ns, bits);
    waiters_.fetch_sub(1, std::memory_order_release);
    return r;
  }

  // Relative-duration convenience over commit_wait_until: the deadline
  // is fixed once, up front, so EINTR re-arming cannot stretch the park
  // past now + nanos. Used where the waker may have died (a svc client
  // waiting on a possibly-dead server) or where the sleeper doubles as a
  // periodic sweeper (the server idle loop).
  WaitResult commit_wait_for(std::uint32_t seen, std::uint64_t nanos) {
    return commit_wait_until(seen, monotonic_now_ns() + nanos);
  }

  // Wake every committed waiter matching `bits` iff any waiters are
  // registered. Safe (and cheap) to call on every release path.
  void signal(std::uint32_t bits = kAllWakeBits) {
    la::detail::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    value_.fetch_add(1, std::memory_order_seq_cst);
    wake(bits);
  }

  // Racy instrumentation snapshot (the stress reports).
  std::uint32_t waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  WaitResult wait_until(std::uint32_t seen, std::uint64_t deadline_ns,
                        std::uint32_t bits) {
#if defined(LEVELARRAY_VERIFY)
    // Cooperative park: block until some thread commits a store (every
    // signal() bumps value_) or the virtual clock reaches the deadline.
    // The eventcount re-check loop is identical to the real one, so the
    // two-phase protocol itself is what gets model-checked.
    (void)bits;
    for (;;) {
      if (value_.load(std::memory_order_seq_cst) != seen) {
        return WaitResult::kWoken;
      }
      if (deadline_ns != kNoDeadline &&
          ::la::verify::virtual_now_ns() >= deadline_ns) {
        return WaitResult::kTimedOut;
      }
      ::la::verify::spin_yield(deadline_ns == kNoDeadline
                                   ? ::la::verify::kNoDeadlineNs
                                   : deadline_ns);
    }
#elif defined(__linux__)
    const int op =
        (shared_ != 0 ? FUTEX_WAIT_BITSET : FUTEX_WAIT_BITSET_PRIVATE);
    for (;;) {
      if (value_.load(std::memory_order_seq_cst) != seen) {
        return WaitResult::kWoken;
      }
      struct timespec ts;
      struct timespec* tsp = nullptr;
      if (deadline_ns != kNoDeadline) {
        if (monotonic_now_ns() >= deadline_ns) return WaitResult::kTimedOut;
        ts.tv_sec = static_cast<time_t>(deadline_ns / 1000000000ull);
        ts.tv_nsec = static_cast<long>(deadline_ns % 1000000000ull);
        tsp = &ts;
      }
      // FUTEX_WAIT_BITSET without FUTEX_CLOCK_REALTIME measures the
      // timespec against CLOCK_MONOTONIC as an absolute instant.
      const long rc =
          syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&value_), op,
                  seen, tsp, nullptr, bits);
      if (rc == 0) {
        // A wake was delivered. Every signal() bumps the word before
        // waking, so value != seen here; report kWoken either way (a
        // truly spurious 0 re-enters the loop via the top check).
        if (value_.load(std::memory_order_seq_cst) != seen) {
          return WaitResult::kWoken;
        }
        continue;
      }
      switch (errno) {
        case EAGAIN:  // value != seen already
          return WaitResult::kWoken;
        case ETIMEDOUT:
          return WaitResult::kTimedOut;
        case EINTR:  // a signal; re-arm against the same absolute deadline
        default:
          continue;
      }
    }
#else
    while (value_.load(std::memory_order_seq_cst) == seen) {
      if (deadline_ns != kNoDeadline && monotonic_now_ns() >= deadline_ns) {
        return WaitResult::kTimedOut;
      }
      std::this_thread::yield();
    }
    (void)bits;
    return WaitResult::kWoken;
#endif
  }

  void wake(std::uint32_t bits) {
#if defined(LEVELARRAY_VERIFY)
    // No kernel waiters exist under the checker; the value_ bump in
    // signal() already unblocked every cooperative waiter.
    (void)bits;
#elif defined(__linux__)
    const int op =
        (shared_ != 0 ? FUTEX_WAKE_BITSET : FUTEX_WAKE_BITSET_PRIVATE);
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&value_), op,
            0x7FFFFFFF, nullptr, nullptr, bits);
#else
    (void)bits;
#endif
  }

  // Layout is fork/shared-memory friendly: three lock-free words, no
  // pointers, placement-constructed once by the segment creator.
  la::detail::atomic<std::uint32_t> value_{0};
  la::detail::atomic<std::uint32_t> waiters_{0};
  std::uint32_t shared_ = 0;
};

#if !defined(LEVELARRAY_VERIFY)
static_assert(sizeof(FutexWord) <= 16, "FutexWord must stay a small POD-ish word");
#endif

}  // namespace la::sync
