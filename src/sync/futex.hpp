// FutexWord — an eventcount over one futex word, the blocking primitive
// behind every park in this library (the Backoff final tier, the svc
// doorbells). The discipline is the classic two-phase wait that makes
// lost wakeups impossible by construction:
//
//   waiter:  seen = prepare_wait();        // register, snapshot the word
//            if (condition_now_true()) { cancel_wait(); proceed; }
//            commit_wait(seen);            // sleep iff word still == seen
//
//   waker:   make_condition_true();        // e.g. the Free's release
//            signal();                     // bump + wake if anyone waits
//
// prepare_wait's waiter registration is seq_cst-ordered before the
// waiter's re-check, and signal's fence is seq_cst-ordered after the
// waker's state change — so either the waiter's re-check sees the new
// state, or the waker's waiter-count load sees the registration and
// bumps the word, which makes commit_wait's FUTEX_WAIT return
// immediately (value != seen). Sleeping through a wake is therefore
// impossible; spurious returns are allowed and callers must loop.
//
// signal() is engineered for the hot path with no waiters: one seq_cst
// fence plus one load, no RMW, no syscall — a Free in the uncontended
// steady state pays nothing for the parked-waiter tier existing.
//
// The word lives wherever it is placed — including a shared-memory
// segment mapped by several processes (the svc layer). `shared` selects
// the futex flavor: process-private ops let the kernel skip the mapping
// lookup; cross-process words must use the shared flavor. Non-Linux
// builds degrade commit_wait to a yield (the eventcount protocol makes
// that merely slower, never incorrect).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace la::sync {

class FutexWord {
 public:
  FutexWord() = default;
  explicit FutexWord(bool shared) : shared_(shared ? 1 : 0) {}
  FutexWord(const FutexWord&) = delete;
  FutexWord& operator=(const FutexWord&) = delete;

  // Register as a waiter and snapshot the word. Every prepare_wait MUST
  // be paired with exactly one cancel_wait or commit_wait.
  std::uint32_t prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return value_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_release); }

  // Sleep until the word moves past `seen` (or spuriously). Callers loop
  // on their own condition.
  void commit_wait(std::uint32_t seen) {
    wait_on_word(seen, nullptr);
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  // Timed variant: sleep at most `nanos`. Used where the waker may have
  // died (a svc server pushing to a possibly-dead client) or where the
  // sleeper doubles as a periodic sweeper (the server idle loop).
  void commit_wait_for(std::uint32_t seen, std::uint64_t nanos) {
#if defined(__linux__)
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(nanos / 1000000000ull);
    ts.tv_nsec = static_cast<long>(nanos % 1000000000ull);
    wait_on_word(seen, &ts);
#else
    (void)seen;
    (void)nanos;
    std::this_thread::yield();
#endif
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  // Wake every committed waiter iff any are registered. Safe (and cheap)
  // to call on every release path.
  void signal() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    value_.fetch_add(1, std::memory_order_seq_cst);
    wake_all();
  }

  // Racy instrumentation snapshot (the stress reports).
  std::uint32_t waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  void wait_on_word(std::uint32_t seen, const void* timeout) {
#if defined(__linux__)
    const int op = shared_ != 0 ? FUTEX_WAIT : FUTEX_WAIT_PRIVATE;
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&value_), op, seen,
            timeout, nullptr, 0);
#else
    (void)seen;
    (void)timeout;
    std::this_thread::yield();
#endif
  }

  void wake_all() {
#if defined(__linux__)
    const int op = shared_ != 0 ? FUTEX_WAKE : FUTEX_WAKE_PRIVATE;
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&value_), op,
            0x7FFFFFFF, nullptr, nullptr, 0);
#endif
  }

  // Layout is fork/shared-memory friendly: three lock-free words, no
  // pointers, placement-constructed once by the segment creator.
  std::atomic<std::uint32_t> value_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::uint32_t shared_ = 0;
};

static_assert(sizeof(FutexWord) <= 16, "FutexWord must stay a small POD-ish word");

}  // namespace la::sync
