// WaitQueue — a ticketed, FIFO-fair eventcount: the fairness layer the
// plain FutexWord deliberately lacks. FutexWord::signal() wakes *every*
// parked waiter (a thundering herd racing for one freed slot, with no
// starvation bound — scheduler luck decides who wins); WaitQueue waiters
// take monotone tickets on entry and wake_one() grants exactly the
// oldest queued ticket, so starvation is bounded by queue position: a
// waiter is overtaken at most by the waiters already ahead of it (plus
// any it re-queues behind by choice). wake_all() remains for bulk
// releases (Free-k returning many slots at once), where waking the whole
// queue is the point, not a herd.
//
// Protocol — the same two-phase shape as FutexWord, so the no-lost-wakeup
// argument carries over:
//
//   waiter:  WaitQueue::Waiter w;            // stack-allocated node
//            q.prepare_wait(w);              // enqueue, take a ticket
//            if (condition_now_true()) { q.cancel_wait(w); proceed; }
//            r = q.commit_wait(w, deadline); // sleep until granted/expired
//            // kWoken: we held the oldest ticket when a grant arrived —
//            // re-check the condition (the capacity is *eligible*, not
//            // reserved); kTimedOut: we unlinked ourselves, nothing owed.
//
//   waker:   release_capacity();
//            q.wake_one();                   // grant the oldest ticket
//
// Handoff: a woken waiter that loses the re-check race can re-enter with
// prepare_wait(w, /*front=*/true), which re-queues it at the *head* —
// its effective position never degrades, so "overtaken at most
// queue-depth times" holds across retries, not just within one park.
//
// Mechanics: the queue is an intrusive doubly-linked list of stack nodes
// under a SpinLock (park/wake are already slow paths; the lock is never
// on an acquire fast path). Sleeping happens on ONE process-private
// FutexWord owned by the queue — never on node memory — with the
// FUTEX_BITSET channel keyed by ticket%32 so a wake targets (mostly)
// just the granted waiter; bit collisions cost a spurious re-check, not
// a missed or misdelivered grant, because the grant itself is the
// node's state word, written under the lock. A waker never touches a
// node after granting it (the release store of kGranted is its last
// access), so a woken waiter can return — and pop its stack frame —
// immediately; there is no use-after-free window.
//
// Grant conservation: a grant consumed by a waiter that no longer needs
// it (cancel_wait after the condition came true, or a timeout losing the
// race to a grant) is re-donated via wake_one(), so a capacity release
// never evaporates while an eligible waiter sleeps.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/annotations.hpp"
#include "sync/atomic_select.hpp"
#include "sync/futex.hpp"
#include "sync/spin_lock.hpp"

namespace la::sync {

class WaitQueue {
 public:
  static constexpr std::uint64_t kNoDeadline = FutexWord::kNoDeadline;

  // One waiter's queue node; lives on the waiting thread's stack across
  // one prepare/cancel-or-commit cycle.
  class Waiter {
   public:
    Waiter() = default;
    Waiter(const Waiter&) = delete;
    Waiter& operator=(const Waiter&) = delete;
    // The monotone ticket taken at prepare_wait (1-based; 0 = not yet
    // queued). Exposed for fairness accounting and the FIFO-order tests.
    std::uint64_t ticket() const { return ticket_; }

   private:
    friend class WaitQueue;
    static constexpr std::uint32_t kQueued = 0;
    static constexpr std::uint32_t kGranted = 1;

    std::uint64_t ticket_ = 0;
    Waiter* prev_ = nullptr;
    Waiter* next_ = nullptr;
    la::detail::atomic<std::uint32_t> state_{kQueued};
  };

  WaitQueue() = default;
  // Start the ticket counter at an arbitrary value. Tickets are 64-bit
  // and never wrap in practice; what *does* wrap is the 32-bit futex
  // bitset channel keyed by ticket % 32. The verify harness constructs
  // queues at UINT32_MAX - 2 to exhaustively check FIFO grant order
  // straight through that boundary.
  explicit WaitQueue(std::uint64_t first_ticket)
      : next_ticket_(first_ticket == 0 ? 1 : first_ticket),
        first_ticket_(first_ticket == 0 ? 1 : first_ticket) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Enqueue and take a ticket. front=true re-enters at the head (the
  // handoff path for a woken waiter that lost the re-check race); the
  // original ticket order is preserved by position, and the waiter keeps
  // a fresh ticket only for accounting.
  void prepare_wait(Waiter& w, bool front = false) {
    w.ticket_ = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    w.state_.store(Waiter::kQueued, std::memory_order_relaxed);
    w.prev_ = w.next_ = nullptr;
    {
      SpinLockGuard guard(lock_);
      if (front) {
        link_front(w);
      } else {
        link_back(w);
      }
    }
    // seq_cst: the registration must be visible to a waker's
    // waiters()==0 fast-path check before the caller re-checks its
    // condition (mirrors FutexWord::prepare_wait's ordering).
    count_.fetch_add(1, std::memory_order_seq_cst);
  }

  // Abandon a prepared wait (the condition came true before sleeping).
  // If a grant raced in, re-donate it so the release it represents still
  // wakes somebody.
  void cancel_wait(Waiter& w) {
    bool granted;
    {
      SpinLockGuard guard(lock_);
      granted = w.state_.load(std::memory_order_relaxed) == Waiter::kGranted;
      if (!granted) unlink(w);
    }
    count_.fetch_sub(1, std::memory_order_release);
    if (granted) wake_one();
  }

  // Sleep until granted (kWoken) or the absolute CLOCK_MONOTONIC
  // deadline passes (kTimedOut). A timeout that loses the race to a
  // grant reports kWoken — the grant was spent on us, and the caller's
  // re-check decides what it was worth.
  WaitResult commit_wait(Waiter& w, std::uint64_t deadline_ns = kNoDeadline) {
    const std::uint32_t bits = 1u << (w.ticket_ % 32u);
    for (;;) {
      if (w.state_.load(std::memory_order_acquire) == Waiter::kGranted) {
        count_.fetch_sub(1, std::memory_order_release);
        return WaitResult::kWoken;
      }
      const std::uint32_t seen = word_.prepare_wait();
      if (w.state_.load(std::memory_order_acquire) == Waiter::kGranted) {
        word_.cancel_wait();
        count_.fetch_sub(1, std::memory_order_release);
        return WaitResult::kWoken;
      }
      const WaitResult r = word_.commit_wait_until(seen, deadline_ns, bits);
      if (r == WaitResult::kTimedOut) {
        bool granted;
        {
          SpinLockGuard guard(lock_);
          granted =
              w.state_.load(std::memory_order_relaxed) == Waiter::kGranted;
          if (!granted) unlink(w);
        }
        count_.fetch_sub(1, std::memory_order_release);
        return granted ? WaitResult::kWoken : WaitResult::kTimedOut;
      }
    }
  }

  // Grant the oldest queued ticket. Returns the granted ticket, or 0 if
  // the queue was empty. The no-waiter fast path costs one fence + one
  // load (mirrors FutexWord::signal), so release paths call it
  // unconditionally.
  std::uint64_t wake_one() {
    la::detail::atomic_thread_fence(std::memory_order_seq_cst);
    if (count_.load(std::memory_order_seq_cst) == 0) return 0;
    std::uint64_t ticket = 0;
    std::uint32_t bits = 0;
    {
      SpinLockGuard guard(lock_);
      Waiter* w = head_;
      if (w == nullptr) return 0;
      unlink(*w);
      ticket = w->ticket_;
      bits = 1u << (ticket % 32u);
      // Last access to *w: after this release store the waiter may wake
      // (even spuriously), observe kGranted, and pop its frame.
      w->state_.store(Waiter::kGranted, std::memory_order_release);
    }
    word_.signal(bits);
    return ticket;
  }

  // Grant every queued ticket (bulk Free-k: many slots released at
  // once). Returns how many waiters were granted.
  std::size_t wake_all() {
    la::detail::atomic_thread_fence(std::memory_order_seq_cst);
    if (count_.load(std::memory_order_seq_cst) == 0) return 0;
    std::size_t woken = 0;
    {
      SpinLockGuard guard(lock_);
      while (head_ != nullptr) {
        Waiter* w = head_;
        unlink(*w);
        w->state_.store(Waiter::kGranted, std::memory_order_release);
        ++woken;
      }
    }
    if (woken != 0) word_.signal();
    return woken;
  }

  // Racy snapshots (stress/fairness instrumentation).
  std::uint32_t waiters() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t tickets_issued() const {
    return next_ticket_.load(std::memory_order_relaxed) - first_ticket_;
  }

 private:
  void link_back(Waiter& w) LA_REQUIRES(lock_) {
    w.prev_ = tail_;
    w.next_ = nullptr;
    if (tail_ != nullptr) {
      tail_->next_ = &w;
    } else {
      head_ = &w;
    }
    tail_ = &w;
  }

  void link_front(Waiter& w) LA_REQUIRES(lock_) {
    w.prev_ = nullptr;
    w.next_ = head_;
    if (head_ != nullptr) {
      head_->prev_ = &w;
    } else {
      tail_ = &w;
    }
    head_ = &w;
  }

  void unlink(Waiter& w) LA_REQUIRES(lock_) {
    if (w.prev_ != nullptr) {
      w.prev_->next_ = w.next_;
    } else {
      head_ = w.next_;
    }
    if (w.next_ != nullptr) {
      w.next_->prev_ = w.prev_;
    } else {
      tail_ = w.prev_;
    }
    w.prev_ = w.next_ = nullptr;
  }

  SpinLock lock_;
  Waiter* head_ LA_GUARDED_BY(lock_) = nullptr;  // oldest (next to grant)
  Waiter* tail_ LA_GUARDED_BY(lock_) = nullptr;  // newest
  la::detail::atomic<std::uint64_t> next_ticket_{1};
  const std::uint64_t first_ticket_ = 1;
  la::detail::atomic<std::uint32_t> count_{0};
  FutexWord word_;  // process-private sleep word; nodes never sleep on
                    // their own memory (see the use-after-free note above)
};

}  // namespace la::sync
