// Cache-line utilities: the constant and a padded wrapper used to keep
// per-thread counters on distinct lines (false sharing is the dominant
// noise source in the probe-latency benches).
#pragma once

#include <cstddef>

namespace la::sync {

inline constexpr std::size_t kCacheLineSize = 64;

// A value padded out to its own cache line. Dereference like a pointer:
//   std::vector<CachePadded<Welford>> per_thread(n);
//   per_thread[tid]->add(x);   *per_thread[tid] = v;
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace la::sync
