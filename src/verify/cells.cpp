// The harness cells: small closed concurrent programs over the real
// library code, each exhaustively explored by the runtime. A cell is a
// few threads and a handful of ops on purpose — every atomic access is a
// scheduling choice point, so the interleaving tree is exponential in
// the op count; the value is exhaustiveness at small scale, not volume
// (the stress tier owns volume).
//
// What a cell asserts, in increasing strength:
//   * termination: every schedule runs to completion (the explorer
//     reports deadlock/livelock on any that does not);
//   * require(): the cell's own end-state invariants, plus
//     stress::check_trace on a get/free event trace where the cell
//     drives a renamer (the same invariants the stress tier checks
//     statistically, here checked on every interleaving);
//   * freedom from data races on verify::var payloads under the
//     *declared* memory orders — the teeth that catch an ordering
//     downgrade (see the mutant cells and LEVELARRAY_VERIFY_MUTATE_*).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "scale/sharded.hpp"
#include "stress/invariants.hpp"
#include "svc/ring.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/tas_cell.hpp"
#include "sync/wait_queue.hpp"
#include "verify/atom.hpp"
#include "verify/runtime.hpp"

namespace {

using la::verify::join_all;
using la::verify::require;
using la::verify::spawn;

// Bounded wait for a cell-level condition: Backoff::pause is a verify
// yield that blocks until some store commits, so this never busy-loops
// the explorer and never misses the store that makes `cond` true.
template <typename Cond>
void spin_until(Cond&& cond) {
  la::sync::Backoff backoff;
  while (!cond()) backoff.pause();
}

// ------------------------------------------------------------------ TAS

// Two threads contend on one TasCell; the critical section increments a
// plain (race-checked) counter. Mutual exclusion comes from the TAS, and
// the acquire/release pair is what orders the counter accesses — under
// LEVELARRAY_VERIFY_MUTATE_TAS_ACQUIRE the claim is relaxed and this
// cell must report a data race on 'counter'.
LA_VERIFY_CELL(tas_claim_release,
               "TasCell claim/release mutual exclusion, 2 threads x 2 ops") {
  la::sync::TasCell cell;
  la::verify::var<std::uint64_t> counter("counter");
  counter.write(0);
  for (int t = 0; t < 2; ++t) {
    spawn([&] {
      for (int i = 0; i < 2; ++i) {
        la::sync::Backoff backoff;
        while (!cell.try_acquire()) backoff.pause();
        counter.write(counter.read() + 1);
        cell.release();
      }
    });
  }
  join_all();
  require(counter.read() == 4, "lost update through the TAS section");
  require(!cell.held(), "cell left held after all releases");
}

LA_VERIFY_CELL(tas_claim_release_3,
               "TasCell mutual exclusion, 3 threads x 1 op") {
  la::sync::TasCell cell;
  la::verify::var<std::uint64_t> counter("counter");
  counter.write(0);
  for (int t = 0; t < 3; ++t) {
    spawn([&] {
      la::sync::Backoff backoff;
      while (!cell.try_acquire()) backoff.pause();
      counter.write(counter.read() + 1);
      cell.release();
    });
  }
  join_all();
  require(counter.read() == 3, "lost update through the TAS section");
  require(!cell.held(), "cell left held after all releases");
}

// slot_scan::claim_clear racing a concurrent claimer and a concurrent
// Free: the word mask is a hint, the TAS is the claim — no slot may be
// granted twice, and the final occupancy must account for every claim
// and free exactly.
LA_VERIFY_CELL(claim_clear_vs_free,
               "claim_clear vs claim_clear vs free over one 8-slot word") {
  std::vector<la::sync::TasCell> cells(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (i == 3) continue;  // the one initially clear slot
    require(cells[i].try_acquire(), "seeding the initial occupancy");
  }
  std::uint64_t a_slot = 99, b_slot = 99;
  std::size_t na = 0, nb = 0;
  spawn([&] {
    na = la::core::slot_scan::claim_clear(
        cells.data(), 0, 8, 8, 1, [&](std::uint64_t s) { a_slot = s; });
  });
  spawn([&] {
    cells[5].release();
    nb = la::core::slot_scan::claim_clear(
        cells.data(), 0, 8, 8, 1, [&](std::uint64_t s) { b_slot = s; });
  });
  join_all();
  require(na <= 1, "claim_clear overshot want=1");
  require(nb == 1, "B freed a slot first, so its claim cannot come up empty");
  if (na == 1) {
    require(a_slot != b_slot, "one slot granted to both claimers");
  }
  const std::uint64_t held =
      la::core::slot_scan::count_held_bytewise(cells.data(), 8);
  require(held == 7 - 1 + na + nb,
          "final occupancy does not balance claims and frees");
}

// ------------------------------------------------------------ WaitQueue

// Strict FIFO: waiters A then B queue in a forced order (B gates on
// A's registration), so wake_one must grant A's ticket first.
LA_VERIFY_CELL(waitqueue_fifo,
               "wake_one grants strictly in queue (FIFO) order") {
  la::sync::WaitQueue q;
  std::uint64_t ticket_a = 0, ticket_b = 0;
  bool woken_a = false, woken_b = false;
  spawn([&] {
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    ticket_a = w.ticket();
    woken_a = q.commit_wait(w) == la::sync::WaitResult::kWoken;
  });
  spawn([&] {
    spin_until([&] { return q.waiters() >= 1; });
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    ticket_b = w.ticket();
    woken_b = q.commit_wait(w) == la::sync::WaitResult::kWoken;
  });
  spin_until([&] { return q.waiters() >= 2; });
  const std::uint64_t g1 = q.wake_one();
  const std::uint64_t g2 = q.wake_one();
  join_all();
  require(woken_a && woken_b, "a queued waiter was never granted");
  require(g1 == ticket_a, "first grant skipped the oldest ticket");
  require(g2 == ticket_b, "second grant out of FIFO order");
  require(ticket_a < ticket_b, "tickets not monotone in queue order");
  require(q.waiters() == 0, "waiters left registered after the drain");
}

// Grant conservation through cancel_wait: a grant that lands on a waiter
// which cancels must be re-donated, so the one logical release here can
// never strand the committed waiter B.
LA_VERIFY_CELL(waitqueue_cancel,
               "cancel_wait re-donates a raced grant; B is never stranded") {
  la::sync::WaitQueue q;
  bool b_woken = false;
  spawn([&] {
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    q.cancel_wait(w);
  });
  spawn([&] {
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    require(q.commit_wait(w) == la::sync::WaitResult::kWoken,
            "committed waiter timed out with no deadline");
    b_woken = true;
  });
  // The waker: keep granting until B reports woken. A grant consumed by
  // A's cancel is re-donated by cancel_wait itself; this loop only
  // replaces grants that found an empty queue.
  la::sync::Backoff backoff;
  while (!b_woken) {
    if (q.wake_one() == 0) backoff.pause();
  }
  join_all();
  require(q.waiters() == 0, "waiters left registered at the end");
  require(q.tickets_issued() == 2, "ticket accounting drifted");
}

// Pure deadline expiry on the virtual clock: no waker exists, so the
// committed waiter must time out and unlink itself.
LA_VERIFY_CELL(waitqueue_timeout,
               "commit_wait expires on the virtual clock and unlinks") {
  la::sync::WaitQueue q;
  spawn([&] {
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    const auto r =
        q.commit_wait(w, la::verify::virtual_now_ns() + 1000);
    require(r == la::sync::WaitResult::kTimedOut,
            "waiter woke with no grant in the system");
  });
  join_all();
  require(q.waiters() == 0, "timed-out waiter left linked");
}

// Timeout racing a grant: the outcomes must agree — if wake_one granted
// the ticket, the waiter reports kWoken (even if its deadline also
// passed: the grant was spent on it); if wake_one found nobody, the
// waiter must report kTimedOut.
LA_VERIFY_CELL(waitqueue_timeout_race,
               "a grant and a deadline race to one waiter, consistently") {
  la::sync::WaitQueue q;
  la::sync::WaitResult result = la::sync::WaitResult::kWoken;
  spawn([&] {
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    result = q.commit_wait(w, la::verify::virtual_now_ns() + 500);
  });
  const std::uint64_t granted = q.wake_one();
  join_all();
  require((granted != 0) == (result == la::sync::WaitResult::kWoken),
          "grant accounting disagrees with the waiter's result");
  require(q.waiters() == 0, "waiter left linked after the race");
}

// FIFO straight through the 32-bit boundary of the futex bitset channel
// (tickets are 64-bit; ticket % 32 is what wraps). The queue starts at
// UINT32_MAX - 2; with three waiters plus one re-queue the grant
// sequence crosses 2^32 and must stay strictly increasing.
LA_VERIFY_CELL(waitqueue_ticket_wrap,
               "FIFO grant order across the ticket%32 channel wrap") {
  constexpr std::uint64_t kFirst = 0xFFFFFFFFull - 2;  // UINT32_MAX - 2
  la::sync::WaitQueue q(kFirst);
  std::vector<std::uint64_t> grants;
  spawn([&] {  // W1: waits twice — its second ticket is 2^32
    la::sync::WaitQueue::Waiter w1;
    q.prepare_wait(w1);
    require(q.commit_wait(w1) == la::sync::WaitResult::kWoken, "W1 stranded");
    la::sync::WaitQueue::Waiter w2;
    q.prepare_wait(w2);
    require(q.commit_wait(w2) == la::sync::WaitResult::kWoken,
            "W1 re-queue stranded");
  });
  spawn([&] {  // W2 queues strictly after W1
    spin_until([&] { return q.waiters() >= 1; });
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    require(q.commit_wait(w) == la::sync::WaitResult::kWoken, "W2 stranded");
  });
  spawn([&] {  // W3 queues strictly after W2
    spin_until([&] { return q.waiters() >= 2; });
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    require(q.commit_wait(w) == la::sync::WaitResult::kWoken, "W3 stranded");
  });
  spin_until([&] { return q.waiters() >= 3; });
  grants.push_back(q.wake_one());  // grants W1's first ticket
  // W1 re-queues behind W2 and W3; wait for it, then drain in order.
  spin_until([&] { return q.tickets_issued() >= 4 && q.waiters() >= 3; });
  grants.push_back(q.wake_one());
  grants.push_back(q.wake_one());
  grants.push_back(q.wake_one());
  join_all();
  require(grants[0] == kFirst && grants[1] == kFirst + 1 &&
              grants[2] == kFirst + 2 && grants[3] == kFirst + 3,
          "grant sequence broke FIFO across the 2^32 channel wrap");
  require(grants[3] == 0x100000000ull, "re-queue ticket did not cross 2^32");
  require(q.waiters() == 0, "waiters left registered after the drain");
}

// ------------------------------------------------------------ SPSC ring

// The ring slot the verify harness instantiates svc::RingView over: the
// real template, a verify atom for seq, a race-checked var payload.
struct VerifySlot {
  la::verify::atom<std::uint32_t> seq{0};
  la::verify::var<std::uint64_t> payload;
};

void run_ring(std::uint32_t start, std::uint32_t messages) {
  VerifySlot slots[2];
  la::svc::RingView<VerifySlot> ring(slots, 2);
  ring.reset_empty_at(start);
  spawn([&, start] {  // producer
    std::uint32_t p = start;
    for (std::uint32_t i = 0; i < messages; ++i, ++p) {
      VerifySlot* slot;
      spin_until([&] { return (slot = ring.try_begin_push(p)) != nullptr; });
      slot->payload.write(100 + i);
      ring.commit_push(*slot, p);
    }
  });
  spawn([&, start] {  // consumer
    std::uint32_t c = start;
    for (std::uint32_t i = 0; i < messages; ++i, ++c) {
      VerifySlot* slot;
      spin_until([&] { return (slot = ring.try_begin_pop(c)) != nullptr; });
      require(slot->payload.read() == 100 + i,
              "consumer observed a stale or torn payload");
      ring.commit_pop(*slot, c);
    }
  });
  join_all();
}

LA_VERIFY_CELL(spsc_ring,
               "RingView produce/consume, 3 messages over capacity 2") {
  run_ring(0, 3);
}

LA_VERIFY_CELL(spsc_ring_wrap,
               "RingView cursor arithmetic across the uint32 wraparound") {
  // Positions UINT32_MAX-1, UINT32_MAX, 0: the free-running cursors wrap
  // mod 2^32 mid-stream and the seq handshake must stay exact.
  run_ring(0xFFFFFFFFu - 1, 3);
}

// Harness-teeth mutant: the same publish protocol with the producer's
// release deliberately downgraded to relaxed. The explorer MUST report a
// data race on 'mutant_payload' (a relaxed store publishes nothing), or
// the whole memory-order checking story is vacuous.
LA_VERIFY_CELL(mutant_ring_relaxed_publish,
               "MUTANT: relaxed publish must be flagged as a race",
               /*expects_violation=*/true) {
  la::verify::atom<std::uint32_t> ready{0};
  la::verify::var<std::uint64_t> payload("mutant_payload");
  spawn([&] {
    payload.write(42);
    ready.store(1, std::memory_order_relaxed);  // atomics-lint: mutation
  });
  spawn([&] {
    spin_until(
        [&] { return ready.load(std::memory_order_acquire) == 1; });
    (void)payload.read();
  });
  join_all();
}

// --------------------------------------------------------- sharded cache

// Minimal api::Renamer for the sharding cells: a dense TasCell array
// with first-fit Get. Total below the gate bound (the gate admits only
// when true holds < capacity, so a clear slot always exists; transient
// races re-loop through a blocking pause).
class MiniInner {
 public:
  explicit MiniInner(std::uint64_t capacity)
      : capacity_(capacity), slots_(capacity) {}

  template <typename Rng>
  la::GetResult get(Rng& /*rng*/) {
    la::GetResult result;
    la::sync::Backoff backoff;
    for (;;) {
      for (std::uint64_t s = 0; s < slots_.size(); ++s) {
        ++result.probes;
        if (slots_[s].try_acquire()) {
          result.name = s;
          return result;
        }
      }
      backoff.pause();
    }
  }

  void free(std::uint64_t name) {
    if (name >= slots_.size() || !slots_[name].held()) {
      throw std::logic_error("MiniInner::free: bad name");
    }
    slots_[name].release();
  }

  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    la::core::slot_scan::for_each_held_bytewise(
        slots_.data(), slots_.size(), [&](std::uint64_t s) {
          out.push_back(s);
          ++found;
        });
    return found;
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t total_slots() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::vector<la::sync::TasCell> slots_;
};

using MiniSharded = la::scale::ShardedRenamer<MiniInner>;

std::unique_ptr<MiniSharded> make_sharded(std::uint64_t inner_capacity) {
  la::scale::ShardedConfig config;
  config.shards = 1;
  config.cache_capacity = 1;
  config.cache_flush_batch = 1;
  config.max_threads = 2;
  return std::make_unique<MiniSharded>(config, [&](std::uint32_t) {
    return std::make_unique<MiniInner>(inner_capacity);
  });
}

// Shared cell plumbing: the event trace every sharded cell feeds to
// stress::check_trace. Fibers are cooperatively scheduled, so plain
// shared containers and the epoch counter are fine harness bookkeeping
// (the checked code's own state is what runs under the atom seam).
struct EventTrace {
  std::vector<la::stress::Event> events;
  std::uint64_t epoch = 0;

  // Ticket placement per event_log.hpp: Get stamps AFTER the structure
  // returns, Free stamps BEFORE the structure is entered.
  void did_get(std::uint32_t thread, std::uint64_t name) {
    events.push_back({epoch++, name, thread, la::stress::Op::kGet});
  }
  void will_free(std::uint32_t thread, std::uint64_t name) {
    events.push_back({epoch++, name, thread, la::stress::Op::kFree});
  }
};

void check_events(EventTrace& trace, const MiniSharded& renamer,
                  std::uint64_t max_concurrent) {
  la::stress::CheckConfig config;
  config.total_slots = renamer.total_slots();
  config.max_concurrent = max_concurrent;
  config.expect_empty_at_end = true;
  const auto report = la::stress::check_trace(trace.events, config);
  std::string detail;
  for (const auto& v : report.violations) detail += " | " + v;
  require(report.ok(), "check_trace rejected the event trace" + detail);
}

// Park/pop through the per-thread cache: each worker's second Get must
// be servable from its own parked name, and the exit flush returns
// everything — zero logical holds and zero gate drift at the end.
LA_VERIFY_CELL(sharded_park_pop,
               "cache park/pop churn, exit flush, gate accounting") {
  auto renamer = make_sharded(/*inner_capacity=*/2);
  EventTrace trace;
  int rng = 0;
  spawn([&] {
    for (int i = 0; i < 2; ++i) {
      const auto g = renamer->get(rng);
      trace.did_get(1, g.name);
      trace.will_free(1, g.name);
      renamer->free(g.name);
    }
  });
  spawn([&] {
    const auto g = renamer->get(rng);
    trace.did_get(2, g.name);
    trace.will_free(2, g.name);
    renamer->free(g.name);
  });
  join_all();
  std::vector<std::uint64_t> names;
  require(renamer->collect(names) == 0, "logical holds leaked");
  require(renamer->gate_occupancy(0) == 0, "gate reservation drifted");
  check_events(trace, *renamer, /*max_concurrent=*/2);
}

// Capacity 1 forces the steal path: one worker's parked name is the only
// capacity in the system, so the other worker's Get must reclaim it via
// the global-miss drain (or ride a concurrent collect()'s steal — thread
// 0 runs collect in parallel to exercise the bin exchange race).
LA_VERIFY_CELL(sharded_steal_drain,
               "Get reclaims a parked name via steal/drain, capacity 1") {
  auto renamer = make_sharded(/*inner_capacity=*/1);
  EventTrace trace;
  int rng = 0;
  for (std::uint32_t t = 1; t <= 2; ++t) {
    spawn([&, t] {
      const auto g = renamer->get(rng);
      trace.did_get(t, g.name);
      trace.will_free(t, g.name);
      renamer->free(g.name);
    });
  }
  std::vector<std::uint64_t> names;
  require(renamer->collect(names) <= 1, "collect saw more than capacity");
  join_all();
  names.clear();
  require(renamer->collect(names) == 0, "logical holds leaked");
  require(renamer->gate_occupancy(0) == 0, "gate reservation drifted");
  check_events(trace, *renamer, /*max_concurrent=*/1);
}

// Thread-exit flush racing a concurrent Get: worker 1 parks and exits
// immediately, so its TLS destructor's flush is the only path returning
// the name worker 2 needs.
LA_VERIFY_CELL(sharded_exit_flush,
               "exit-flush returns a parked name a concurrent Get needs") {
  auto renamer = make_sharded(/*inner_capacity=*/1);
  EventTrace trace;
  int rng = 0;
  spawn([&] {
    const auto g = renamer->get(rng);
    trace.did_get(1, g.name);
    trace.will_free(1, g.name);
    renamer->free(g.name);  // parks; the exit flush returns it
  });
  spawn([&] {
    const auto g = renamer->get(rng);
    trace.did_get(2, g.name);
    trace.will_free(2, g.name);
    renamer->free(g.name);
  });
  join_all();
  std::vector<std::uint64_t> names;
  require(renamer->collect(names) == 0, "logical holds leaked");
  require(renamer->gate_occupancy(0) == 0, "gate reservation drifted");
  check_events(trace, *renamer, /*max_concurrent=*/1);
}

}  // namespace
