// The model-checker runtime API: what harness cells and the CLI see.
//
// A *cell* is a small closed concurrent program over the real library
// code (built with -DLEVELARRAY_VERIFY, so every shared-word access is a
// scheduler yield point — see atom.hpp). explore() enumerates its
// interleavings with a DFS over scheduling choice points:
//
//   * sleep-set pruning (Godefroid): after exploring thread t at a
//     choice point, t joins the sleep set; sibling branches skip any
//     schedule that begins with an op independent of everything that
//     distinguishes it — the classic stateless partial-order reduction.
//     Dependency is computed from the *announced* pending op of each
//     thread (same object + at least one write; fences conflict with
//     everything; pure spin yields with nothing).
//   * a bounded-preemption knob as the fallback for cells whose full
//     tree is out of budget: --preemptions=K explores every schedule
//     with at most K forced context switches (Musuvathi/Qadeer's
//     empirical bug-depth argument).
//
// Execution is sequentially consistent (one fiber runs at a time; each
// atomic op is one indivisible step). Weak-memory bugs are caught by a
// separate mechanism: vector clocks track happens-before implied by the
// *declared* memory orders, and verify::var accesses are checked
// FastTrack-style against them — an ordering downgrade becomes a data
// race on the data it was guarding, reported with the full schedule.
//
// Every schedule is replayable: the seed is the dot-joined list of the
// thread chosen at each point where more than one was runnable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace la::verify {

inline constexpr unsigned kMaxThreads = 8;

struct ExploreOptions {
  // Stop after this many executed schedules (0 = unlimited). Hitting the
  // cap clears `complete` but is not a failure: the tree explored so far
  // is still exhaustive over its prefix set.
  std::uint64_t max_schedules = 20000;
  // Per-schedule executed-op budget; exceeding it is reported as a
  // violation (livelock suspicion — cooperative spin blocking should
  // make unbounded same-state loops impossible).
  std::uint64_t max_steps = 200000;
  // Max forced preemptions per schedule (0 = unbounded / full search).
  unsigned preemption_bound = 0;
  // Non-empty: execute exactly this schedule (a seed printed by a
  // violation report) instead of exploring, and print its full trace.
  std::string replay_seed;
};

struct ExploreResult {
  std::uint64_t schedules = 0;  // schedules fully executed
  std::uint64_t pruned = 0;     // branches cut by the sleep set
  std::uint64_t steps = 0;      // total atomic ops executed
  std::uint64_t max_depth = 0;  // deepest backtrack stack seen
  bool complete = false;        // whole tree explored within budget
  bool violation = false;
  std::string violation_message;
  std::string violation_seed;
  std::string violation_trace;  // rendered counterexample schedule
};

// ----------------------------------------------------------- cell surface
// Callable only from inside a cell body running under explore().

// Start a new model-checked thread (at most kMaxThreads - 1 spawns per
// cell). The body runs as a cooperative fiber; thread ids are assigned
// in spawn order starting at 1 (the cell body itself is thread 0).
void spawn(std::function<void()> body);

// Block until every spawned thread has finished, joining their clocks
// (the fork/join happens-before edge the harnesses rely on).
void join_all();

// Assert a cell invariant. Failure aborts the schedule and reports the
// counterexample exactly like a data race would.
void require(bool condition, const std::string& message);

// ------------------------------------------------------------ cell registry
struct Cell {
  const char* name;
  const char* summary;
  void (*body)();
  // Mutant cells: exploration MUST find a violation (the harness-teeth
  // check); the CLI inverts the exit code for these.
  bool expects_violation = false;
};

const std::vector<Cell>& cells();
void register_cell(const Cell& cell);

struct CellRegistrar {
  explicit CellRegistrar(const Cell& cell) { register_cell(cell); }
};

#define LA_VERIFY_CELL(ident, summary, ...)                            \
  static void cell_body_##ident();                                     \
  static const ::la::verify::CellRegistrar registrar_##ident{          \
      ::la::verify::Cell{#ident, summary, &cell_body_##ident,          \
                         ##__VA_ARGS__}};                              \
  static void cell_body_##ident()

// Run one cell body under the explorer. Not reentrant.
ExploreResult explore(void (*body)(), const ExploreOptions& options);

}  // namespace la::verify
