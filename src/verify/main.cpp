// verify_runner — the model-checker CLI.
//
//   verify_runner                        run every registered cell
//   verify_runner --list                 list cells and exit
//   verify_runner --cell=NAME            run one cell
//   verify_runner --max-schedules=N      per-cell schedule budget (0 = off)
//   verify_runner --max-steps=N          per-schedule op budget
//   verify_runner --preemptions=K        bounded-preemption search (0 = full)
//   verify_runner --replay=SEED          replay one schedule (needs --cell)
//   verify_runner --expect-violation     invert: exploration must violate
//
// Exit 0 iff every selected cell met its expectation (normal cells: no
// violation and at least one schedule explored; mutant cells, or any
// cell under --expect-violation: a violation found and printed). A
// violation report carries the message, the replay seed, and the full
// interleaving trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/runtime.hpp"

namespace {

void print_violation(const la::verify::ExploreResult& result) {
  std::printf("  violation: %s\n", result.violation_message.c_str());
  std::printf("  replay seed: --replay=%s\n",
              result.violation_seed.empty() ? "(deterministic prefix)"
                                            : result.violation_seed.c_str());
  std::printf("  counterexample schedule:\n%s",
              result.violation_trace.c_str());
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_cell;
  la::verify::ExploreOptions options;
  bool list_only = false;
  bool force_expect_violation = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--list") == 0) {
      list_only = true;
    } else if (std::strncmp(arg, "--cell=", 7) == 0) {
      only_cell = arg + 7;
    } else if (std::strncmp(arg, "--max-schedules=", 16) == 0 &&
               parse_u64(arg + 16, &value)) {
      options.max_schedules = value;
    } else if (std::strncmp(arg, "--max-steps=", 12) == 0 &&
               parse_u64(arg + 12, &value)) {
      options.max_steps = value;
    } else if (std::strncmp(arg, "--preemptions=", 14) == 0 &&
               parse_u64(arg + 14, &value)) {
      options.preemption_bound = static_cast<unsigned>(value);
    } else if (std::strncmp(arg, "--replay=", 9) == 0) {
      options.replay_seed = arg + 9;
    } else if (std::strcmp(arg, "--expect-violation") == 0) {
      force_expect_violation = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }

  const auto& cells = la::verify::cells();
  if (list_only) {
    for (const auto& cell : cells) {
      std::printf("%-28s %s%s\n", cell.name, cell.summary,
                  cell.expects_violation ? "  [mutant]" : "");
    }
    return 0;
  }
  if (!options.replay_seed.empty() && only_cell.empty()) {
    std::fprintf(stderr, "--replay requires --cell=NAME\n");
    return 2;
  }

  int failures = 0;
  int matched = 0;
  for (const auto& cell : cells) {
    if (!only_cell.empty() && only_cell != cell.name) continue;
    ++matched;
    const auto result = la::verify::explore(cell.body, options);
    const bool expect_violation =
        cell.expects_violation || force_expect_violation;

    std::printf(
        "[%s] schedules=%llu pruned=%llu steps=%llu depth=%llu %s\n",
        cell.name, static_cast<unsigned long long>(result.schedules),
        static_cast<unsigned long long>(result.pruned),
        static_cast<unsigned long long>(result.steps),
        static_cast<unsigned long long>(result.max_depth),
        result.complete ? "complete" : "budget-capped");

    if (!options.replay_seed.empty()) {
      // Replay mode: always print the schedule; the violation check
      // below still applies (a replayed counterexample must reproduce).
      if (!result.violation) {
        std::printf("  replayed schedule:\n%s", result.violation_trace.c_str());
      }
    }

    bool ok;
    if (expect_violation) {
      ok = result.violation;
      if (ok) {
        std::printf("  expected violation found:\n");
        print_violation(result);
      } else {
        std::printf(
            "  FAIL: mutant explored %llu schedules without a violation — "
            "the checker has no teeth for this cell\n",
            static_cast<unsigned long long>(result.schedules));
      }
    } else {
      ok = !result.violation && result.schedules > 0;
      if (result.violation) {
        print_violation(result);
      } else if (result.schedules == 0) {
        std::printf("  FAIL: zero schedules explored\n");
      }
    }
    if (!ok) ++failures;
  }

  if (matched == 0) {
    std::fprintf(stderr, "no cell matches '%s' (see --list)\n",
                 only_cell.c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
