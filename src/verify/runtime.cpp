// The model-checker engine: cooperative fibers + DFS schedule explorer.
//
// One OS thread hosts everything. Each model-checked thread is a
// ucontext fiber; every atom op announces itself (object, kind,
// read/write) and parks the fiber, the controller picks who runs next,
// and the chosen fiber executes its announced op against plain memory
// (one fiber at a time == sequentially consistent execution) then runs
// uninterrupted to its next announcement. Choice points — moments with
// more than one runnable thread — form the DFS tree; sleep sets prune
// branches that only reorder independent ops, and an optional
// preemption bound caps forced context switches.
//
// Weak-memory checking rides on top: commits update vector clocks from
// the DECLARED memory orders (release store publishes the writer's
// clock; relaxed store wipes it; acquire load/RMW joins it; relaxed RMW
// preserves it — the C++17 release-sequence rule; seq_cst fences join
// through a global fence clock), and verify::var accesses are checked
// FastTrack-style against those clocks. Downgrade an ordering in the
// library and the var it was guarding races — reported with the full
// schedule and a replay seed.
//
// Soundness note on granularity: a transition is "announced op + local
// computation until the next announcement", and sleep-set dependency
// looks only at announced atomic ops. That is the standard sync-op
// granularity argument: for programs whose plain accesses are
// race-free, bundled var effects commute whenever the announced ops do;
// programs that are NOT race-free are flagged by the clock checker in
// whatever schedule runs first, so nothing is lost either way.
//
// On a violation the engine abandons all unfinished fibers (their
// stacks are freed without unwinding — the process is about to print
// the counterexample and exit), which keeps abort paths out of every
// destructor in the checked code.
#include "verify/runtime.hpp"

#include <ucontext.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>

#include "verify/atom.hpp"

namespace la::verify {

namespace {

constexpr unsigned kNone = 0xFFFFFFFFu;
constexpr std::size_t kFiberStackBytes = 256 * 1024;
// Virtual CLOCK_MONOTONIC origin: an arbitrary nonzero instant.
constexpr std::uint64_t kVirtualBase = 1'000'000'000ull;
constexpr std::size_t kTracePrintCap = 200;

using Clock = std::array<std::uint32_t, kMaxThreads>;

void vc_join(Clock& into, const Clock& from) {
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    if (from[i] > into[i]) into[i] = from[i];
  }
}

bool is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

bool is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "ar";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

struct TlsEntry {
  unsigned key = 0;
  void* value = nullptr;
  void (*dtor)(void*) = nullptr;
};

struct Task {
  ucontext_t ctx;
  std::unique_ptr<char[]> stack;
  std::function<void()> body;
  enum class State : unsigned char { kRunnable, kBlocked, kFinished };
  enum class Block : unsigned char { kNone, kSpin, kJoin };
  State state = State::kRunnable;
  Block block = Block::kNone;
  bool started = false;
  // The announced (not yet executed) op; has_pending == false for a
  // freshly spawned or just-resumed fiber, which the dependency relation
  // treats as "unknown: conflicts with everything".
  bool has_pending = false;
  OpKind pending_kind = OpKind::kSpin;
  std::uint32_t pending_obj = kNone;
  bool pending_write = false;
  std::uint64_t block_deadline = kNoDeadlineNs;
  // Last global store epoch this task's spin loop observed; spin_yield
  // blocks only when nothing has been stored since (else one more
  // condition re-check round is forced — the lost-wakeup guard).
  std::uint64_t spin_epoch = 0;
  Clock clock{};
  std::vector<TlsEntry> tls;
};

struct ObjState {
  const char* tag = nullptr;
  // Release clock: the vector clock an acquire load of this object
  // joins. All-zero == no release edge available.
  Clock sync{};
};

struct VarState {
  const char* tag = nullptr;
  unsigned write_tid = kNone;
  std::uint32_t write_time = 0;
  std::array<std::uint32_t, kMaxThreads> read_time{};
};

struct TraceStep {
  unsigned tid = 0;
  OpKind kind = OpKind::kLoad;
  std::uint32_t obj = kNone;  // objects_ index, or vars_ index for kVar*
  std::memory_order mo = std::memory_order_seq_cst;
  std::uint64_t a = 0;  // load/read value, rmw before, store value
  std::uint64_t b = 0;  // rmw after
};

struct Node {
  std::vector<unsigned> runnable;
  std::vector<unsigned> sleep;
  unsigned chosen = kNone;
  unsigned prev_running = kNone;
  unsigned preemptions = 0;
};

class Engine;
Engine* g_engine = nullptr;

class Engine {
 public:
  Engine(void (*body)(), const ExploreOptions& options)
      : cell_body_(body), opts_(options) {}

  ExploreResult run() {
    if (!opts_.replay_seed.empty()) {
      replay_mode_ = true;
      if (!parse_seed(opts_.replay_seed)) {
        result_.violation = true;
        result_.violation_message =
            "malformed replay seed '" + opts_.replay_seed + "'";
        return result_;
      }
      run_one_schedule();
      result_.schedules = 1;
      finish_violation_report();
      // A replay prints its trace whether or not it violates.
      if (!result_.violation) result_.violation_trace = render_trace();
      return result_;
    }
    for (;;) {
      const bool executed = run_one_schedule();
      if (executed) {
        ++result_.schedules;
      } else {
        ++result_.pruned;
      }
      if (nodes_.size() > result_.max_depth) result_.max_depth = nodes_.size();
      if (violation_) {
        finish_violation_report();
        break;
      }
      if (opts_.max_schedules != 0 &&
          result_.schedules >= opts_.max_schedules) {
        break;
      }
      if (!advance()) {
        result_.complete = true;
        break;
      }
    }
    return result_;
  }

  // ----------------------------------------------------------- atom hooks

  bool active() const { return active_ && !aborting_; }

  Handle make_obj_handle(Handle cached, const char* tag) {
    if (cached != 0 && (cached >> 32) == generation_) return cached;
    const std::uint32_t idx = static_cast<std::uint32_t>(objects_.size());
    objects_.push_back(ObjState{tag, {}});
    return (static_cast<std::uint64_t>(generation_) << 32) | (idx + 1);
  }

  Handle make_var_handle(Handle cached, const char* tag) {
    if (cached != 0 && (cached >> 32) == generation_) return cached;
    const std::uint32_t idx = static_cast<std::uint32_t>(vars_.size());
    vars_.push_back(VarState{tag, kNone, 0, {}});
    return (static_cast<std::uint64_t>(generation_) << 32) | (idx + 1);
  }

  void tag_obj(Handle h, const char* tag) {
    objects_[obj_index(h)].tag = tag;
  }

  void yield_op(Handle h, OpKind kind, bool is_write) {
    Task& t = *tasks_[running_];
    t.has_pending = true;
    t.pending_kind = kind;
    t.pending_obj = (h == 0) ? kNone : obj_index(h);
    t.pending_write = is_write;
    switch_to_controller();
    t.has_pending = false;
  }

  void commit_load(Handle h, std::memory_order mo, std::uint64_t v) {
    if (aborting_) return;
    Task& t = *tasks_[running_];
    ObjState& o = objects_[obj_index(h)];
    tick(t);
    if (is_acquire(mo)) vc_join(t.clock, o.sync);
    trace_.push_back({running_, OpKind::kLoad, obj_index(h), mo, v, 0});
  }

  void commit_store(Handle h, std::memory_order mo, std::uint64_t v) {
    if (aborting_) return;
    Task& t = *tasks_[running_];
    ObjState& o = objects_[obj_index(h)];
    tick(t);
    if (is_release(mo)) {
      o.sync = t.clock;
    } else {
      // A plain store (any thread) breaks the release sequence (C++17).
      o.sync = Clock{};
    }
    trace_.push_back({running_, OpKind::kStore, obj_index(h), mo, v, 0});
    on_store_committed();
  }

  void commit_rmw(Handle h, std::memory_order mo, std::uint64_t before,
                  std::uint64_t after) {
    if (aborting_) return;
    Task& t = *tasks_[running_];
    ObjState& o = objects_[obj_index(h)];
    tick(t);
    if (is_acquire(mo)) vc_join(t.clock, o.sync);
    if (is_release(mo)) {
      // Join rather than replace: an RMW continues the release sequence
      // of whatever store it read from.
      vc_join(o.sync, t.clock);
    }
    // Relaxed RMW: o.sync preserved untouched (release-sequence rule).
    trace_.push_back({running_, OpKind::kRmw, obj_index(h), mo, before, after});
    on_store_committed();
  }

  void commit_fence(std::memory_order mo) {
    if (aborting_) return;
    Task& t = *tasks_[running_];
    tick(t);
    if (is_acquire(mo) || mo == std::memory_order_seq_cst) {
      vc_join(t.clock, fence_clock_);
    }
    if (is_release(mo) || mo == std::memory_order_seq_cst) {
      vc_join(fence_clock_, t.clock);
    }
    trace_.push_back({running_, OpKind::kFence, kNone, mo, 0, 0});
  }

  void var_read(Handle h, std::uint64_t v) {
    if (aborting_) return;
    Task& t = *tasks_[running_];
    VarState& s = vars_[obj_index(h)];
    tick(t);
    trace_.push_back({running_, OpKind::kVarRead, obj_index(h),
                      std::memory_order_relaxed, v, 0});
    if (s.write_tid != kNone && s.write_tid != running_ &&
        t.clock[s.write_tid] < s.write_time) {
      report_race("read", running_, "write", s.write_tid, h);
      return;
    }
    s.read_time[running_] = t.clock[running_];
  }

  void var_write(Handle h, std::uint64_t v) {
    if (aborting_) return;
    Task& t = *tasks_[running_];
    VarState& s = vars_[obj_index(h)];
    tick(t);
    trace_.push_back({running_, OpKind::kVarWrite, obj_index(h),
                      std::memory_order_relaxed, v, 0});
    if (s.write_tid != kNone && s.write_tid != running_ &&
        t.clock[s.write_tid] < s.write_time) {
      report_race("write", running_, "write", s.write_tid, h);
      return;
    }
    for (unsigned u = 0; u < kMaxThreads; ++u) {
      if (u != running_ && s.read_time[u] != 0 &&
          t.clock[u] < s.read_time[u]) {
        report_race("write", running_, "read", u, h);
        return;
      }
    }
    s.write_tid = running_;
    s.write_time = t.clock[running_];
    // Subsequent reads must be ordered after this write anyway; the read
    // set restarts (FastTrack's write-epoch transition).
    s.read_time = {};
  }

  void spin_yield(std::uint64_t deadline_ns) {
    if (!active()) return;
    Task& t = *tasks_[running_];
    if (t.spin_epoch != store_epoch_) {
      // Something was stored since this loop last checked its condition
      // (e.g. a Free slipped in mid-sweep, before this pause): force one
      // more re-check round instead of blocking through the wakeup.
      t.spin_epoch = store_epoch_;
      t.has_pending = true;
      t.pending_kind = OpKind::kSpin;
      t.pending_obj = kNone;
      t.pending_write = false;
      switch_to_controller();
      t.has_pending = false;
      return;
    }
    // Nothing stored since the condition was last evaluated, and no
    // other fiber ran between that evaluation and here (cooperative
    // scheduling): blocking cannot lose a wakeup.
    trace_.push_back({running_, OpKind::kSpin, kNone,
                      std::memory_order_relaxed, deadline_ns, 0});
    t.state = Task::State::kBlocked;
    t.block = Task::Block::kSpin;
    t.block_deadline = deadline_ns;
    t.has_pending = true;
    t.pending_kind = OpKind::kSpin;
    t.pending_obj = kNone;
    t.pending_write = false;
    switch_to_controller();
    t.has_pending = false;
    t.block_deadline = kNoDeadlineNs;
    t.spin_epoch = store_epoch_;
  }

  std::uint64_t now_ns() const { return vt_; }

  unsigned running_tid() const { return running_ == kNone ? 0 : running_; }

  unsigned new_tls_key() { return tls_key_source_++; }

  void* tls_get(unsigned key) {
    Task& t = *tasks_[running_];
    for (const TlsEntry& e : t.tls) {
      if (e.key == key) return e.value;
    }
    return nullptr;
  }

  void tls_set(unsigned key, void* p, void (*dtor)(void*)) {
    Task& t = *tasks_[running_];
    for (TlsEntry& e : t.tls) {
      if (e.key == key) {
        e.value = p;
        e.dtor = dtor;
        return;
      }
    }
    t.tls.push_back(TlsEntry{key, p, dtor});
  }

  // ----------------------------------------------------------- cell surface

  void spawn(std::function<void()> body) {
    if (aborting_) return;
    if (tasks_.size() >= kMaxThreads) {
      report_violation("cell spawned more than " +
                       std::to_string(kMaxThreads - 1) + " threads");
      return;
    }
    Task& parent = *tasks_[running_];
    tick(parent);
    Task& child = create_task(std::move(body));
    child.clock = parent.clock;  // spawn edge
  }

  void join_all() {
    Task& t = *tasks_[running_];
    for (;;) {
      bool all_done = true;
      for (unsigned i = 0; i < tasks_.size(); ++i) {
        if (i != running_ && tasks_[i]->state != Task::State::kFinished) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
      if (aborting_) return;
      t.state = Task::State::kBlocked;
      t.block = Task::Block::kJoin;
      t.has_pending = false;
      switch_to_controller();
    }
    tick(t);
    for (unsigned i = 0; i < tasks_.size(); ++i) {
      if (i != running_) vc_join(t.clock, tasks_[i]->clock);  // join edge
    }
  }

  void require(bool condition, const std::string& message) {
    if (condition || aborting_) return;
    report_violation("invariant failed: " + message);
  }

  // ------------------------------------------------------- fiber internals

  void fiber_main() {
    Task& t = *tasks_[running_];
    t.body();
    // Per-fiber TLS destructors run here, inside scheduled execution —
    // the thread-exit cache flush is itself model-checked.
    while (!t.tls.empty()) {
      TlsEntry e = t.tls.back();
      t.tls.pop_back();
      if (e.dtor != nullptr && e.value != nullptr) e.dtor(e.value);
    }
    t.state = Task::State::kFinished;
    t.has_pending = false;
    // Returning activates uc_link == the controller context.
  }

 private:
  // ------------------------------------------------------------- schedule

  bool run_one_schedule() {
    ++generation_;
    objects_.clear();
    vars_.clear();
    trace_.clear();
    chosen_log_.clear();
    release_tasks();
    fence_clock_ = {};
    store_epoch_ = 1;  // nonzero so fresh tasks (spin_epoch=0) re-check once
    spin_recheck_epoch_ = 0;
    vt_ = kVirtualBase;
    violation_ = false;
    aborting_ = false;
    depth_ = 0;
    cur_sleep_.clear();
    prev_running_ = kNone;
    preemptions_ = 0;
    steps_this_ = 0;
    replay_cursor_ = 0;
    create_task([this] { cell_body_(); });
    active_ = true;
    bool pruned = false;

    while (!violation_) {
      bool all_finished = true;
      for (const auto& t : tasks_) {
        if (t->state != Task::State::kFinished) {
          all_finished = false;
          break;
        }
      }
      if (all_finished) break;
      if (steps_this_ > opts_.max_steps) {
        report_violation("schedule exceeded " +
                         std::to_string(opts_.max_steps) +
                         " steps (livelock?)");
        break;
      }

      std::vector<unsigned> runnable;
      for (unsigned i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i]->state == Task::State::kRunnable) runnable.push_back(i);
      }
      if (runnable.empty()) {
        handle_all_blocked();
        if (violation_) break;
        continue;
      }

      unsigned choice = kNone;
      if (runnable.size() == 1) {
        choice = runnable[0];
        if (!replay_mode_ && in_sleep(choice)) {
          pruned = true;
          break;
        }
      } else if (replay_mode_) {
        choice = next_forced(runnable);
        if (violation_) break;
        chosen_log_.push_back(choice);
      } else {
        const std::vector<unsigned> candidates =
            candidate_order(runnable, cur_sleep_, prev_running_,
                            preemptions_);
        if (candidates.empty()) {
          pruned = true;
          break;
        }
        if (candidates.size() == 1) {
          // Not a choice point: no node exists (or is created) here —
          // node alignment during prefix re-execution depends on this
          // being decided from candidates, exactly as on first
          // execution, never from depth_.
          choice = candidates[0];
        } else if (depth_ < nodes_.size()) {
          // Re-executing the prefix of a backtracked schedule: take the
          // recorded branch and restore its accumulated sleep set
          // (advance() added explored siblings to it).
          Node& n = nodes_[depth_];
          if (n.runnable != runnable) {
            report_violation(
                "internal error: nondeterministic re-execution (runnable "
                "set diverged at depth " +
                std::to_string(depth_) + ")");
            break;
          }
          choice = n.chosen;
          cur_sleep_ = n.sleep;
          ++depth_;
        } else {
          Node n;
          n.runnable = runnable;
          n.sleep = cur_sleep_;
          n.chosen = candidates[0];
          n.prev_running = prev_running_;
          n.preemptions = preemptions_;
          nodes_.push_back(std::move(n));
          choice = candidates[0];
          ++depth_;
        }
        chosen_log_.push_back(choice);
      }

      filter_sleep_against(choice);
      if (prev_running_ != kNone && choice != prev_running_ &&
          tasks_[prev_running_]->state == Task::State::kRunnable) {
        ++preemptions_;
      }
      step(choice);
    }

    active_ = false;
    return !pruned;
  }

  // Backtrack to the next unexplored sibling; false when the tree is done.
  bool advance() {
    while (!nodes_.empty()) {
      Node& n = nodes_.back();
      n.sleep.push_back(n.chosen);
      const std::vector<unsigned> candidates =
          candidate_order(n.runnable, n.sleep, n.prev_running, n.preemptions);
      if (!candidates.empty()) {
        n.chosen = candidates[0];
        return true;
      }
      nodes_.pop_back();
    }
    return false;
  }

  // Eligible choices in preference order (previously running thread
  // first — depth-first into the fewest-context-switch schedule).
  std::vector<unsigned> candidate_order(const std::vector<unsigned>& runnable,
                                        const std::vector<unsigned>& sleep,
                                        unsigned prev,
                                        unsigned preemptions) const {
    const bool prev_runnable =
        prev != kNone &&
        std::find(runnable.begin(), runnable.end(), prev) != runnable.end();
    const bool bound_hit = opts_.preemption_bound != 0 &&
                           preemptions >= opts_.preemption_bound &&
                           prev_runnable;
    std::vector<unsigned> out;
    auto eligible = [&](unsigned c) {
      if (std::find(sleep.begin(), sleep.end(), c) != sleep.end()) return false;
      if (bound_hit && c != prev) return false;
      return true;
    };
    if (prev_runnable && eligible(prev)) out.push_back(prev);
    for (unsigned c : runnable) {
      if (c != prev && eligible(c)) out.push_back(c);
    }
    return out;
  }

  bool in_sleep(unsigned tid) const {
    return std::find(cur_sleep_.begin(), cur_sleep_.end(), tid) !=
           cur_sleep_.end();
  }

  // Sleep-set maintenance: after choosing `choice`, a sleeping thread
  // stays asleep only if its pending op is independent of the op about
  // to execute.
  void filter_sleep_against(unsigned choice) {
    if (cur_sleep_.empty()) return;
    const Task& c = *tasks_[choice];
    cur_sleep_.erase(
        std::remove_if(cur_sleep_.begin(), cur_sleep_.end(),
                       [&](unsigned u) {
                         return u == choice ||
                                dependent(*tasks_[u], c);
                       }),
        cur_sleep_.end());
  }

  static bool dependent(const Task& a, const Task& b) {
    // Unknown pending op (never announced yet): conservatively conflicts.
    if (!a.has_pending || !b.has_pending) return true;
    if (a.pending_kind == OpKind::kSpin || b.pending_kind == OpKind::kSpin) {
      return false;  // a pure yield commutes with everything
    }
    if (a.pending_kind == OpKind::kFence || b.pending_kind == OpKind::kFence) {
      return true;
    }
    return a.pending_obj == b.pending_obj &&
           (a.pending_write || b.pending_write);
  }

  void handle_all_blocked() {
    // Joiner whose children all finished?
    for (unsigned i = 0; i < tasks_.size(); ++i) {
      Task& t = *tasks_[i];
      if (t.state != Task::State::kBlocked || t.block != Task::Block::kJoin) {
        continue;
      }
      bool others_done = true;
      for (unsigned j = 0; j < tasks_.size(); ++j) {
        if (j != i && tasks_[j]->state != Task::State::kFinished) {
          others_done = false;
          break;
        }
      }
      if (others_done) {
        t.state = Task::State::kRunnable;
        t.block = Task::Block::kNone;
        return;
      }
    }
    // Deadline-less spin-waiters get one more look whenever some store
    // has landed since the last such round: the waiter's OWN next
    // iteration may be the progress (a retry loop claiming a just-parked
    // slot, a waker re-polling a plain flag), which blocking would lose.
    // The epoch guard makes this terminate: a round that commits no
    // store does not earn another one, and rounds that do store are
    // bounded by the per-schedule step budget (reported as livelock).
    if (store_epoch_ != spin_recheck_epoch_) {
      bool woke = false;
      for (auto& t : tasks_) {
        if (t->state == Task::State::kBlocked &&
            t->block == Task::Block::kSpin &&
            t->block_deadline == kNoDeadlineNs) {
          t->state = Task::State::kRunnable;
          t->block = Task::Block::kNone;
          woke = true;
        }
      }
      if (woke) {
        spin_recheck_epoch_ = store_epoch_;
        return;
      }
    }
    // Advance virtual time to the earliest deadline, if any.
    std::uint64_t min_deadline = kNoDeadlineNs;
    for (const auto& t : tasks_) {
      if (t->state == Task::State::kBlocked &&
          t->block == Task::Block::kSpin &&
          t->block_deadline < min_deadline) {
        min_deadline = t->block_deadline;
      }
    }
    if (min_deadline != kNoDeadlineNs) {
      if (min_deadline > vt_) vt_ = min_deadline;
      for (auto& t : tasks_) {
        if (t->state == Task::State::kBlocked &&
            t->block == Task::Block::kSpin && t->block_deadline <= vt_) {
          t->state = Task::State::kRunnable;
          t->block = Task::Block::kNone;
        }
      }
      return;
    }
    std::string who;
    for (unsigned i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i]->state == Task::State::kBlocked) {
        if (!who.empty()) who += ", ";
        who += "T" + std::to_string(i) +
               (tasks_[i]->block == Task::Block::kJoin ? "(join)" : "(spin)");
      }
    }
    report_violation("deadlock: every live thread is blocked [" + who + "]");
  }

  void on_store_committed() {
    ++store_epoch_;
    // The storer's own writes never gate its own spin_yield: a spin
    // loop re-checks its condition itself; only *other* threads' stores
    // force an extra re-check round before blocking. Without this a
    // waker whose retry loop takes a spinlock (stores) would never
    // block, and the schedule that always picks it would spin forever.
    tasks_[running_]->spin_epoch = store_epoch_;
    for (auto& t : tasks_) {
      if (t->state == Task::State::kBlocked &&
          t->block == Task::Block::kSpin) {
        t->state = Task::State::kRunnable;
        t->block = Task::Block::kNone;
      }
    }
  }

  unsigned next_forced(const std::vector<unsigned>& runnable) {
    unsigned choice;
    if (replay_cursor_ < forced_.size()) {
      choice = forced_[replay_cursor_++];
      if (std::find(runnable.begin(), runnable.end(), choice) ==
          runnable.end()) {
        report_violation("stale replay seed: T" + std::to_string(choice) +
                         " not runnable at choice " +
                         std::to_string(replay_cursor_ - 1));
        return kNone;
      }
      return choice;
    }
    // Seed exhausted: continue with the default policy.
    const bool prev_runnable =
        prev_running_ != kNone &&
        std::find(runnable.begin(), runnable.end(), prev_running_) !=
            runnable.end();
    return prev_runnable ? prev_running_ : runnable[0];
  }

  bool parse_seed(const std::string& seed) {
    forced_.clear();
    unsigned value = 0;
    bool have_digit = false;
    for (char ch : seed) {
      if (ch >= '0' && ch <= '9') {
        value = value * 10 + static_cast<unsigned>(ch - '0');
        have_digit = true;
      } else if (ch == '.') {
        if (!have_digit) return false;
        forced_.push_back(value);
        value = 0;
        have_digit = false;
      } else {
        return false;
      }
    }
    if (have_digit) forced_.push_back(value);
    return !forced_.empty();
  }

  // ----------------------------------------------------------- execution

  void step(unsigned tid) {
    Task& t = *tasks_[tid];
    running_ = tid;
    ++steps_this_;
    ++result_.steps;
    if (!t.started) {
      t.started = true;
      getcontext(&t.ctx);
      t.ctx.uc_stack.ss_sp = t.stack.get();
      t.ctx.uc_stack.ss_size = kFiberStackBytes;
      t.ctx.uc_link = &controller_ctx_;
      makecontext(&t.ctx, &Engine::trampoline, 0);
    }
    swapcontext(&controller_ctx_, &t.ctx);
    // Locals may be clobbered across swapcontext (it has setjmp-like
    // semantics); running_ still holds the stepped tid — fibers never
    // write it.
    const unsigned stepped = running_;
    running_ = kNone;
    Task& stepped_task = *tasks_[stepped];
    if (stepped_task.state == Task::State::kRunnable) {
      prev_running_ = stepped;
    } else {
      prev_running_ = kNone;  // blocked or finished: free context switch
    }
  }

  static void trampoline() { g_engine->fiber_main(); }

  void switch_to_controller() {
    Task& t = *tasks_[running_];
    swapcontext(&t.ctx, &controller_ctx_);
  }

  Task& create_task(std::function<void()> body) {
    auto task = std::make_unique<Task>();
    if (!stack_pool_.empty()) {
      task->stack = std::move(stack_pool_.back());
      stack_pool_.pop_back();
    } else {
      task->stack = std::make_unique<char[]>(kFiberStackBytes);
    }
    task->body = std::move(body);
    tasks_.push_back(std::move(task));
    return *tasks_.back();
  }

  void release_tasks() {
    for (auto& t : tasks_) {
      stack_pool_.push_back(std::move(t->stack));
    }
    tasks_.clear();
  }

  // Only ever called on the currently running task.
  void tick(Task& t) { ++t.clock[running_]; }

  static std::uint32_t obj_index(Handle h) {
    return static_cast<std::uint32_t>(h & 0xFFFFFFFFu) - 1;
  }

  // ------------------------------------------------------------ reporting

  void report_race(const char* kind_a, unsigned tid_a, const char* kind_b,
                   unsigned tid_b, Handle h) {
    const VarState& s = vars_[obj_index(h)];
    std::string tag = s.tag != nullptr
                          ? std::string(s.tag)
                          : "v" + std::to_string(obj_index(h));
    report_violation("data race on '" + tag + "': T" + std::to_string(tid_a) +
                     " " + kind_a + " is unordered with T" +
                     std::to_string(tid_b) + " " + kind_b +
                     " (happens-before from the declared memory orders "
                     "does not cover it)");
  }

  void report_violation(const std::string& message) {
    if (violation_) return;
    violation_ = true;
    aborting_ = true;
    violation_message_ = message;
    if (running_ != kNone) {
      // Called from inside a fiber: hand control back for good. All
      // unfinished fibers are abandoned (stacks freed, no unwinding).
      switch_to_controller();
    }
  }

  void finish_violation_report() {
    if (!violation_) return;
    result_.violation = true;
    result_.violation_message = violation_message_;
    result_.violation_seed = render_seed();
    result_.violation_trace = render_trace();
  }

  std::string render_seed() const {
    std::string out;
    for (unsigned c : chosen_log_) {
      if (!out.empty()) out += '.';
      out += std::to_string(c);
    }
    return out;
  }

  std::string obj_label(const TraceStep& s) const {
    if (s.kind == OpKind::kVarRead || s.kind == OpKind::kVarWrite) {
      const VarState& v = vars_[s.obj];
      return v.tag != nullptr ? std::string(v.tag)
                              : "v" + std::to_string(s.obj);
    }
    if (s.obj == kNone) return "";
    const ObjState& o = objects_[s.obj];
    return o.tag != nullptr ? std::string(o.tag)
                            : "a" + std::to_string(s.obj);
  }

  std::string render_trace() const {
    std::ostringstream out;
    const std::size_t total = trace_.size();
    std::size_t first = 0;
    if (total > kTracePrintCap) {
      first = total - kTracePrintCap;
      out << "  ... " << first << " earlier steps elided ...\n";
    }
    for (std::size_t i = first; i < total; ++i) {
      const TraceStep& s = trace_[i];
      char line[160];
      const std::string label = obj_label(s);
      switch (s.kind) {
        case OpKind::kLoad:
          std::snprintf(line, sizeof(line), "%5zu  T%u  load   %-18s %-3s = %llu",
                        i, s.tid, label.c_str(), mo_name(s.mo),
                        static_cast<unsigned long long>(s.a));
          break;
        case OpKind::kStore:
          std::snprintf(line, sizeof(line), "%5zu  T%u  store  %-18s %-3s := %llu",
                        i, s.tid, label.c_str(), mo_name(s.mo),
                        static_cast<unsigned long long>(s.a));
          break;
        case OpKind::kRmw:
          std::snprintf(line, sizeof(line),
                        "%5zu  T%u  rmw    %-18s %-3s %llu -> %llu", i, s.tid,
                        label.c_str(), mo_name(s.mo),
                        static_cast<unsigned long long>(s.a),
                        static_cast<unsigned long long>(s.b));
          break;
        case OpKind::kFence:
          std::snprintf(line, sizeof(line), "%5zu  T%u  fence  %-18s %-3s", i,
                        s.tid, "", mo_name(s.mo));
          break;
        case OpKind::kSpin:
          if (s.a == kNoDeadlineNs) {
            std::snprintf(line, sizeof(line), "%5zu  T%u  block  (spin-wait)",
                          i, s.tid);
          } else {
            std::snprintf(line, sizeof(line),
                          "%5zu  T%u  block  (spin-wait, deadline %llu ns)", i,
                          s.tid, static_cast<unsigned long long>(s.a));
          }
          break;
        case OpKind::kVarRead:
          std::snprintf(line, sizeof(line), "%5zu  T%u  read   %-18s     = %llu",
                        i, s.tid, label.c_str(),
                        static_cast<unsigned long long>(s.a));
          break;
        case OpKind::kVarWrite:
          std::snprintf(line, sizeof(line), "%5zu  T%u  write  %-18s     := %llu",
                        i, s.tid, label.c_str(),
                        static_cast<unsigned long long>(s.a));
          break;
      }
      out << line << '\n';
    }
    return out.str();
  }

  // -------------------------------------------------------------- members

  void (*cell_body_)();
  ExploreOptions opts_;
  ExploreResult result_;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<char[]>> stack_pool_;
  ucontext_t controller_ctx_{};
  unsigned running_ = kNone;

  std::vector<ObjState> objects_;
  std::vector<VarState> vars_;
  std::vector<TraceStep> trace_;
  Clock fence_clock_{};
  std::uint64_t store_epoch_ = 1;
  // Epoch at the last all-blocked spin re-check round (see
  // handle_all_blocked); equal to store_epoch_ means no store landed
  // since, so another round cannot make progress.
  std::uint64_t spin_recheck_epoch_ = 0;
  std::uint64_t vt_ = kVirtualBase;
  std::uint32_t generation_ = 0;
  unsigned tls_key_source_ = 1;

  std::vector<Node> nodes_;
  std::vector<unsigned> cur_sleep_;
  std::vector<unsigned> chosen_log_;
  std::size_t depth_ = 0;
  unsigned prev_running_ = kNone;
  unsigned preemptions_ = 0;
  std::uint64_t steps_this_ = 0;

  bool active_ = false;
  bool aborting_ = false;
  bool violation_ = false;
  std::string violation_message_;

  bool replay_mode_ = false;
  std::vector<unsigned> forced_;
  std::size_t replay_cursor_ = 0;
};

}  // namespace

// ------------------------------------------------------------- hook glue

bool engine_active() { return g_engine != nullptr && g_engine->active(); }

Handle obj_handle(Handle cached, const char* tag) {
  return g_engine->make_obj_handle(cached, tag);
}

Handle var_handle(Handle cached, const char* tag) {
  return g_engine->make_var_handle(cached, tag);
}

void set_tag(Handle h, const char* tag) { g_engine->tag_obj(h, tag); }

void yield_op(Handle h, OpKind kind, bool is_write) {
  g_engine->yield_op(h, kind, is_write);
}

void commit_load(Handle h, std::memory_order mo, std::uint64_t v) {
  g_engine->commit_load(h, mo, v);
}

void commit_store(Handle h, std::memory_order mo, std::uint64_t v) {
  g_engine->commit_store(h, mo, v);
}

void commit_rmw(Handle h, std::memory_order mo, std::uint64_t before,
                std::uint64_t after) {
  g_engine->commit_rmw(h, mo, before, after);
}

void commit_fence(std::memory_order mo) { g_engine->commit_fence(mo); }

void var_read(Handle h, std::uint64_t v) { g_engine->var_read(h, v); }

void var_write(Handle h, std::uint64_t v) { g_engine->var_write(h, v); }

void spin_yield(std::uint64_t deadline_ns) {
  if (g_engine != nullptr) g_engine->spin_yield(deadline_ns);
}

std::uint64_t virtual_now_ns() {
  return g_engine != nullptr ? g_engine->now_ns() : kVirtualBase;
}

unsigned current_thread_id() {
  return g_engine != nullptr ? g_engine->running_tid() : 0;
}

unsigned tls_key() {
  return g_engine != nullptr ? g_engine->new_tls_key() : 0;
}

void* tls_get(unsigned key) { return g_engine->tls_get(key); }

void tls_set(unsigned key, void* p, void (*dtor)(void*)) {
  g_engine->tls_set(key, p, dtor);
}

// ------------------------------------------------------------ cell surface

void spawn(std::function<void()> body) { g_engine->spawn(std::move(body)); }

void join_all() { g_engine->join_all(); }

void require(bool condition, const std::string& message) {
  g_engine->require(condition, message);
}

// ---------------------------------------------------------------- registry

namespace {
std::vector<Cell>& mutable_cells() {
  static std::vector<Cell> cells;
  return cells;
}
}  // namespace

const std::vector<Cell>& cells() { return mutable_cells(); }

void register_cell(const Cell& cell) { mutable_cells().push_back(cell); }

ExploreResult explore(void (*body)(), const ExploreOptions& options) {
  Engine engine(body, options);
  g_engine = &engine;
  ExploreResult result = engine.run();
  g_engine = nullptr;
  return result;
}

}  // namespace la::verify
