// verify::atom<T> — the atomic interposition shim of the model checker.
//
// Under -DLEVELARRAY_VERIFY the la::detail::atomic alias
// (sync/atomic_select.hpp) resolves to this type, so every shared-word
// load/store/RMW in the lock-free core becomes a *yield point* of the
// cooperative scheduler in src/verify/runtime.cpp:
//
//   1. the op announces itself (object, kind, read/write) and parks the
//      fiber — the explorer now knows exactly which ops are enabled and
//      what they touch, which is what sleep-set pruning feeds on;
//   2. when the scheduler picks this thread, the op executes against the
//      plain value_ (the whole program is one OS thread, so plain reads
//      and writes are serialized by construction — sequential
//      consistency is the execution model);
//   3. the commit records the op in the schedule trace and updates the
//      happens-before vector clocks *from the declared memory order
//      only*. A release store publishes the writer's clock; a relaxed
//      store wipes the object's clock; an acquire load joins it.
//
// Step 3 is the teeth: verify::var<T> harness variables are checked
// FastTrack-style against those clocks, so downgrading an ordering
// (acquire -> relaxed) surfaces as a data race on the data the ordering
// was guarding, even though the SC execution itself never reorders.
//
// The shim deliberately exposes only the std::atomic surface the core
// actually uses (house style: every call names its order explicitly) —
// a narrow surface keeps scripts/atomics_lint.py's extraction exact.
#pragma once

#include <atomic>  // std::memory_order
#include <cstdint>
#include <type_traits>

namespace la::verify {

// Thrown through a fiber to unwind it when the current schedule is
// being aborted (violation found or budget exhausted). Never escapes
// the fiber trampoline.
struct ScheduleAborted {};

enum class OpKind : unsigned char {
  kLoad,
  kStore,
  kRmw,
  kFence,
  kSpin,      // blocked in a spin/park loop (Backoff, futex wait)
  kVarRead,   // plain harness variable access (trace only)
  kVarWrite,
};

// Per-schedule object id, generation-tagged so static-lifetime atoms
// cached across schedules re-register lazily. 0 == unregistered.
using Handle = std::uint64_t;

inline constexpr std::uint64_t kNoDeadlineNs = ~std::uint64_t{0};

// ----------------------------------------------------------- runtime hooks
// Implemented in runtime.cpp. When no schedule is executing
// (engine_active() == false) the atoms degrade to plain serialized
// accesses, which keeps static initializers and teardown safe.
bool engine_active();
Handle obj_handle(Handle cached, const char* tag);  // atomic objects
Handle var_handle(Handle cached, const char* tag);  // plain harness vars
void set_tag(Handle h, const char* tag);
void yield_op(Handle h, OpKind kind, bool is_write);
void commit_load(Handle h, std::memory_order mo, std::uint64_t v);
void commit_store(Handle h, std::memory_order mo, std::uint64_t v);
void commit_rmw(Handle h, std::memory_order mo, std::uint64_t before,
                std::uint64_t after);
void commit_fence(std::memory_order mo);
void var_read(Handle h, std::uint64_t v);
void var_write(Handle h, std::uint64_t v);

// Cooperative replacement for spin/park waits: blocks this thread until
// any other thread commits a store/RMW (or, with a deadline, until the
// virtual clock reaches it). All-blocked with no deadlines pending is
// reported as a deadlock; with deadlines, virtual time advances.
void spin_yield(std::uint64_t deadline_ns);

// Virtual CLOCK_MONOTONIC for deadline paths (futex.hpp) — advances
// only when every thread is blocked on a deadline.
std::uint64_t virtual_now_ns();

// Scheduler-thread id of the currently running fiber (0 = the cell's
// root thread). Used where the library hashes std::this_thread::get_id.
unsigned current_thread_id();

// Per-fiber TLS, replacing `static thread_local` in library code under
// verify (fibers share the one real thread's TLS). Destructors run when
// the fiber's body returns, inside scheduled execution, mirroring
// thread-exit semantics (that ordering is itself model-checked).
unsigned tls_key();
void* tls_get(unsigned key);
void tls_set(unsigned key, void* p, void (*dtor)(void*));

// ----------------------------------------------------------------- fence
inline void fence(std::memory_order order) {
  if (!engine_active()) return;
  yield_op(0, OpKind::kFence, true);
  commit_fence(order);
}

namespace detail {
template <typename U>
inline std::uint64_t to_u64(U v) {
  if constexpr (std::is_pointer_v<U>) {
    return reinterpret_cast<std::uintptr_t>(v);
  } else {
    return static_cast<std::uint64_t>(v);
  }
}
}  // namespace detail

// ----------------------------------------------------------------- atom<T>
template <typename T>
class atom {
 public:
  atom() noexcept = default;
  explicit atom(T v) noexcept : value_(v) {}
  atom(const atom&) = delete;
  atom& operator=(const atom&) = delete;

  T load(std::memory_order order) const {
    if (!engine_active()) return value_;
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kLoad, false);
    T v = value_;
    commit_load(h_, order, detail::to_u64(v));
    return v;
  }

  void store(T v, std::memory_order order) {
    if (!engine_active()) {
      value_ = v;
      return;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kStore, true);
    value_ = v;
    commit_store(h_, order, detail::to_u64(v));
  }

  T exchange(T v, std::memory_order order) {
    if (!engine_active()) {
      T before = value_;
      value_ = v;
      return before;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kRmw, true);
    T before = value_;
    value_ = v;
    commit_rmw(h_, order, detail::to_u64(before), detail::to_u64(v));
    return before;
  }

  T fetch_add(T arg, std::memory_order order) {
    if (!engine_active()) {
      T before = value_;
      value_ = static_cast<T>(value_ + arg);
      return before;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kRmw, true);
    T before = value_;
    value_ = static_cast<T>(before + arg);
    commit_rmw(h_, order, detail::to_u64(before), detail::to_u64(value_));
    return before;
  }

  T fetch_sub(T arg, std::memory_order order) {
    if (!engine_active()) {
      T before = value_;
      value_ = static_cast<T>(value_ - arg);
      return before;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kRmw, true);
    T before = value_;
    value_ = static_cast<T>(before - arg);
    commit_rmw(h_, order, detail::to_u64(before), detail::to_u64(value_));
    return before;
  }

  T fetch_or(T arg, std::memory_order order) {
    if (!engine_active()) {
      T before = value_;
      value_ = static_cast<T>(value_ | arg);
      return before;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kRmw, true);
    T before = value_;
    value_ = static_cast<T>(before | arg);
    commit_rmw(h_, order, detail::to_u64(before), detail::to_u64(value_));
    return before;
  }

  T fetch_and(T arg, std::memory_order order) {
    if (!engine_active()) {
      T before = value_;
      value_ = static_cast<T>(value_ & arg);
      return before;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kRmw, true);
    T before = value_;
    value_ = static_cast<T>(before & arg);
    commit_rmw(h_, order, detail::to_u64(before), detail::to_u64(value_));
    return before;
  }

  // CAS: announced as a write even when it fails (the failure case is a
  // load) — conservative for sleep-set dependency, which keeps pruning
  // sound. Weak == strong: fibers never fail spuriously, and the
  // spurious-failure behaviors are a subset of real-failure behaviors.
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    if (!engine_active()) {
      if (value_ == expected) {
        value_ = desired;
        return true;
      }
      expected = value_;
      return false;
    }
    h_ = obj_handle(h_, nullptr);
    yield_op(h_, OpKind::kRmw, true);
    if (value_ == expected) {
      T before = value_;
      value_ = desired;
      commit_rmw(h_, success, detail::to_u64(before), detail::to_u64(desired));
      return true;
    }
    expected = value_;
    commit_load(h_, failure, detail::to_u64(value_));
    return false;
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return compare_exchange_strong(expected, desired, success, failure);
  }

  // Harness affordance: name this object in counterexample traces.
  void verify_tag(const char* tag) {
    h_ = obj_handle(h_, tag);
    set_tag(h_, tag);
  }

 private:
  T value_{};
  mutable Handle h_ = 0;
};

// ------------------------------------------------------------- atom_flag
class atom_flag {
 public:
  atom_flag() noexcept = default;
  atom_flag(const atom_flag&) = delete;
  atom_flag& operator=(const atom_flag&) = delete;

  bool test_and_set(std::memory_order order) {
    return cell_.exchange(true, order);
  }

  void clear(std::memory_order order) { cell_.store(false, order); }

  void verify_tag(const char* tag) { cell_.verify_tag(tag); }

 private:
  atom<bool> cell_;
};

// ---------------------------------------------------------------- var<T>
// A plain (non-atomic) harness variable: every access is checked
// against the happens-before clocks the declared memory orders built.
// Cells place these where the protocol promises exclusion or
// publication — inside a TasCell critical section, in a ring slot's
// payload — so an ordering downgrade in the library turns into a
// concrete, trace-printed data race here.
template <typename T>
class var {
 public:
  var() noexcept = default;
  explicit var(const char* tag) : tag_(tag) {}
  var(const var&) = delete;
  var& operator=(const var&) = delete;

  T read() const {
    if (!engine_active()) return value_;
    h_ = var_handle(h_, tag_);
    var_read(h_, detail::to_u64(value_));
    return value_;
  }

  void write(T v) {
    if (!engine_active()) {
      value_ = v;
      return;
    }
    h_ = var_handle(h_, tag_);
    var_write(h_, detail::to_u64(v));
    value_ = v;
  }

 private:
  T value_{};
  const char* tag_ = nullptr;
  mutable Handle h_ = 0;
};

}  // namespace la::verify
