// The LevelArray of Alistarh, Kopinsky, Matveev and Shavit (ICDCS'14):
// long-lived renaming over an array of L = 2n test-and-set slots split
// into doubly-exponentially shrinking batches. Get performs c_i random
// probes in batch i before moving on; names are slot indices; Free is a
// single release. If every batch's probes fail (rare by construction) a
// deterministic backup sweep guarantees termination, since at most n of
// the L = 2n slots can be held.
//
// The structure is "self-healing": started from any bad occupancy
// distribution, steady-state churn drains overcrowded deep batches back
// toward the balanced state (paper Fig. 3, reproduced by fig3_healing).
//
// Concurrency surface: every shared word here is a sync::TasCell read
// through core::slot_scan — both of which sit on the la::detail::atomic
// seam (sync/atomic_select.hpp), so under -DLEVELARRAY_VERIFY the probe/
// claim/release/collect protocol below runs under the exhaustive
// interleaving checker in src/verify/ with no changes to this file.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/geometry.hpp"
#include "core/slot_scan.hpp"
#include "core/types.hpp"
#include "rng/rng.hpp"
#include "sync/tas_cell.hpp"

namespace la::core {

struct LevelArrayConfig {
  // Contention bound n: the maximum number of concurrently held names.
  std::uint64_t capacity = 1024;
  // L = size_multiplier * capacity (paper: 2.0; §6 sweeps 2N..4N).
  double size_multiplier = 2.0;
  // c_i, probes per batch; the last entry repeats for deeper batches.
  // The paper's implementation uses {1}; its analysis assumes c_i >= 16.
  std::vector<std::uint8_t> probes_per_batch = {1};
};

class LevelArray {
 public:
  explicit LevelArray(const LevelArrayConfig& config)
      : config_(config),
        geometry_(slot_count(config)),
        slots_(geometry_.total_slots()) {}

  LevelArray(const LevelArray&) = delete;
  LevelArray& operator=(const LevelArray&) = delete;

  template <typename Rng>
  GetResult get(Rng& rng) {
    GetResult result;
    for (;;) {
      for (std::uint32_t k = 0; k < geometry_.num_batches(); ++k) {
        const Batch& batch = geometry_.batch(k);
        result.deepest_batch = k;
        const std::uint8_t c = probes_for(k);
        for (std::uint8_t t = 0; t < c; ++t) {
          const std::uint64_t slot =
              batch.offset() + rng::bounded(rng, batch.size());
          ++result.probes;
          if (slots_[slot].try_acquire()) {
            result.name = slot;
            return result;
          }
        }
      }
      // Backup: deterministic first-fit sweep, word-scanning to the next
      // clear slot instead of testing one byte at a time. With at most
      // n = capacity names held out of L >= 2n slots this always finds
      // one; the loop re-enters the randomized phase only under
      // transient races.
      result.used_backup = true;
      for (std::uint64_t slot = 0; slot < slots_.size(); ++slot) {
        slot += slot_scan::find_first_clear(slots_.data() + slot,
                                            slots_.size() - slot);
        if (slot >= slots_.size()) break;
        if (slots_[slot].try_acquire()) {
          result.name = slot;
          return result;
        }
      }
    }
  }

  // Batch claim: the same shallow-to-deep batch walk as get(), but each
  // random probe claims from the whole word around the probed slot — one
  // SWAR load yields the word's clear-mask and the claimer TASes several
  // bits out of it before drawing again, instead of restarting the probe
  // walk per name. Total like get(): always grants k (precondition:
  // holds + k <= capacity). Per-result probes partition the total draw
  // count (names claimed from one window beyond the first cost 1), so
  // the paper's trials accounting still sums across a batch.
  template <typename Rng>
  std::size_t get_batch(Rng& rng, GetResult* out, std::size_t k) {
    std::size_t granted = 0;
    std::uint32_t draws = 0;  // probe draws since the last grant
    const auto emit = [&](std::uint64_t slot, std::uint32_t batch_index,
                          bool backup) {
      GetResult r;
      r.name = slot;
      r.probes = draws == 0 ? 1 : draws;
      r.deepest_batch = batch_index;
      r.used_backup = backup;
      out[granted++] = r;
      draws = 0;
    };
    while (granted < k) {
      const std::size_t before = granted;
      for (std::uint32_t b = 0;
           b < geometry_.num_batches() && granted < k; ++b) {
        const Batch& batch = geometry_.batch(b);
        const std::uint8_t c = probes_for(b);
        for (std::uint8_t t = 0; t < c && granted < k; ++t) {
          const std::uint64_t slot =
              batch.offset() + rng::bounded(rng, batch.size());
          ++draws;
          const std::uint64_t window_end =
              slot + 8 < batch.end() ? slot + 8 : batch.end();
          slot_scan::claim_clear(
              slots_.data(), slot, window_end, slots_.size(), k - granted,
              [&](std::uint64_t claimed) { emit(claimed, b, false); });
        }
      }
      if (granted >= k) break;
      // A walk that claimed anything restarts with a fresh probe budget
      // — each claimed window gets the same walk get() gives one name,
      // instead of one walk's budget being split across the whole batch
      // (which would shunt large batches into the Theta(L) backup).
      if (granted > before) continue;
      // Backup, batch form: a full walk came up empty, so one word-scan
      // sweep claims the remainder (at most n of L >= 2n slots are held,
      // so it can only come up short under transient races — then the
      // loop re-randomizes).
      ++draws;
      slot_scan::claim_clear(
          slots_.data(), 0, slots_.size(), slots_.size(), k - granted,
          [&](std::uint64_t claimed) {
            emit(claimed, geometry_.num_batches() - 1, true);
          });
    }
    return k;
  }

  void free(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range("LevelArray::free: name out of range");
    }
    // Only the holder may free, so this read is race-free; a clear slot
    // here means a driver double-freed (or freed a name it never got) and
    // would otherwise silently corrupt occupancy.
    if (!slots_[name].held()) {
      throw std::logic_error("LevelArray::free: slot not held (double free?)");
    }
    slots_[name].release();
  }

  // Batch release. Names that landed in the same 8-slot word (the common
  // shape out of get_batch's window claims) are verified against one
  // held-lane snapshot instead of one held() read each; lanes are
  // crossed off the snapshot as they release, so a duplicate name inside
  // the batch fails as loudly as a double free. Throws on the first bad
  // name — earlier names in the batch are already freed by then (the
  // api batch contract).
  void free_batch(const std::uint64_t* names, std::size_t k) {
    std::size_t i = 0;
    while (i < k) {
      const std::uint64_t base = names[i] & ~std::uint64_t{7};
      std::size_t j = i + 1;
      while (j < k && names[j] < slots_.size() &&
             (names[j] & ~std::uint64_t{7}) == base) {
        ++j;
      }
      if (j - i > 1 && base + 8 <= slots_.size()) {
        std::uint64_t lanes = slot_scan::held_lanes(slots_.data(), base);
        for (std::size_t r = i; r < j; ++r) {
          const std::uint64_t lane_bit = std::uint64_t{0x80}
                                         << (8 * (names[r] - base));
          if ((lanes & lane_bit) == 0) {
            throw std::logic_error(
                "LevelArray::free_batch: slot not held (double free?)");
          }
          lanes ^= lane_bit;
          slots_[names[r]].release();
        }
      } else {
        for (std::size_t r = i; r < j; ++r) free(names[r]);
      }
      i = j;
    }
  }

  // Appends the names of all held slots to out; returns how many were
  // found. Theta(L) by design — the dense byte layout is what makes this
  // a sequential cache-friendly scan, and the word engine reads 8 slots
  // per load (racy-snapshot semantics, see core/slot_scan.hpp).
  std::size_t collect(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    slot_scan::for_each_held(slots_.data(), slots_.size(),
                             [&](std::uint64_t slot) {
                               out.push_back(slot);
                               ++found;
                             });
    return found;
  }

  // Per-byte reference collect, kept as the collect_cost --scan=byte
  // ablation baseline and the oracle the parity tests compare against.
  std::size_t collect_bytewise(std::vector<std::uint64_t>& out) const {
    std::size_t found = 0;
    slot_scan::for_each_held_bytewise(slots_.data(), slots_.size(),
                                      [&](std::uint64_t slot) {
                                        out.push_back(slot);
                                        ++found;
                                      });
    return found;
  }

  std::uint64_t total_slots() const { return geometry_.total_slots(); }
  std::uint64_t capacity() const { return config_.capacity; }
  const Geometry& geometry() const { return geometry_; }
  const LevelArrayConfig& config() const { return config_; }

  std::uint8_t probes_for(std::uint32_t batch) const {
    const auto& pv = config_.probes_per_batch;
    if (pv.empty()) return 1;
    const std::size_t i =
        batch < pv.size() ? batch : pv.size() - 1;
    return pv[i] == 0 ? 1 : pv[i];
  }

  // Occupied-slot count per batch (racy snapshot under concurrency),
  // word-counted per batch range.
  std::vector<std::uint64_t> batch_occupancy() const {
    std::vector<std::uint64_t> occupancy(geometry_.num_batches(), 0);
    for (std::uint32_t k = 0; k < geometry_.num_batches(); ++k) {
      const Batch& batch = geometry_.batch(k);
      occupancy[k] =
          slot_scan::count_held(slots_.data() + batch.offset(), batch.size());
    }
    return occupancy;
  }

  // Force `count` slots of the given batch into the held state and return
  // their names — how fig3_healing constructs the paper's bad initial
  // distribution. Returns fewer names if the batch runs out of free slots.
  std::vector<std::uint64_t> seed_batch_occupancy(std::uint32_t batch_index,
                                                  std::uint64_t count) {
    const Batch& batch = geometry_.batch(batch_index);
    std::vector<std::uint64_t> names;
    names.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t s = batch.offset();
         s < batch.end() && names.size() < count; ++s) {
      if (slots_[s].try_acquire()) names.push_back(s);
    }
    return names;
  }

  // Checkpoint adoption (src/api/snapshot.hpp): force the named slot into
  // the held state on a freshly built instance so a restored image's names
  // keep their numeric identity. Restore-time callers run single-threaded,
  // but try_acquire (not mark_held) keeps the claim edge so a duplicate
  // name in a corrupt image fails loudly instead of silently double-
  // marking one slot.
  void adopt_held(std::uint64_t name) {
    if (name >= slots_.size()) {
      throw std::out_of_range("LevelArray::adopt_held: name out of range");
    }
    if (!slots_[name].try_acquire()) {
      throw std::logic_error(
          "LevelArray::adopt_held: slot already held (duplicate name)");
    }
  }

 private:
  static std::uint64_t slot_count(const LevelArrayConfig& config) {
    return scaled_slots(config.size_multiplier, config.capacity);
  }

  LevelArrayConfig config_;
  Geometry geometry_;
  std::vector<sync::TasCell> slots_;
};

}  // namespace la::core
