// slot_scan — the word-wise scan engine behind every full-array read in
// this library. The paper's layout argument (§1, §5) is that dense
// one-byte TAS cells make Collect a sequential cache-friendly scan; the
// engine cashes that in by reading 8 slots per load instead of one
// std::atomic<uint8_t> at a time, then finding the held/clear bytes with
// branch-free SWAR masks. A word whose slots are all clear (the common
// case away from the occupied prefix) costs one load, one subtract, one
// and, one compare.
//
// Snapshot semantics are the same documented racy snapshot as the
// per-byte relaxed loads these scans replace: each byte is read exactly
// once, a concurrent acquire/release may or may not be visible, and no
// value other than a real cell state can be observed (bytes cannot tear).
// Under ThreadSanitizer the word load is compiled as eight relaxed
// per-byte atomic loads so instrumentation sees the same access pattern
// it can reason about; the plain-memory fast path is for real builds.
//
// Three primitives over a dense TasCell range, plus per-byte reference
// implementations (the ablation baseline for collect_cost --scan=byte and
// the oracle for the parity tests), plus the bit-domain sibling the
// BitmapActivityArray's packed-word layout scans with.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "sync/tas_cell.hpp"

#if defined(LEVELARRAY_VERIFY)
// Under the model checker a TasCell is a verify::atom (not 1 byte), so
// the memcpy word load is meaningless — and the bytewise path is the
// point anyway: every held() read becomes a scheduled yield point.
#define LA_SLOT_SCAN_BYTEWISE_WORDS 1
#elif defined(__SANITIZE_THREAD__)
#define LA_SLOT_SCAN_BYTEWISE_WORDS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LA_SLOT_SCAN_BYTEWISE_WORDS 1
#endif
#endif
// The mask arithmetic maps slot i+k to byte lane k counted from the
// least-significant end (ctz >> 3), which is the memcpy'd layout only on
// little-endian hosts; elsewhere assemble the word explicitly so the
// lane order stays right instead of silently collecting wrong indices.
#if !defined(LA_SLOT_SCAN_BYTEWISE_WORDS) &&          \
    defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) && \
    __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#define LA_SLOT_SCAN_BYTEWISE_WORDS 1
#endif

namespace la::core::slot_scan {

namespace detail {

inline constexpr std::uint64_t kOnes = 0x0101010101010101ull;
inline constexpr std::uint64_t kHigh = 0x8080808080808080ull;

// 8-slot snapshot starting at cells[i] (no alignment requirement).
inline std::uint64_t load_word(const sync::TasCell* cells, std::uint64_t i) {
#if defined(LA_SLOT_SCAN_BYTEWISE_WORDS)
  // TSan cannot model a plain 8-byte load racing with per-byte atomics
  // (and big-endian hosts need explicit lane order); read the same
  // snapshot through the cells so it stays instrumented and ordered.
  std::uint64_t word = 0;
  for (unsigned b = 0; b < 8; ++b) {
    word |= static_cast<std::uint64_t>(cells[i + b].held() ? 1 : 0) << (8 * b);
  }
  return word;
#else
  static_assert(sizeof(sync::TasCell) == 1,
                "word scans require dense 1-byte slots");
  std::uint64_t word;
  std::memcpy(&word, reinterpret_cast<const unsigned char*>(cells) + i,
              sizeof(word));
  return word;
#endif
}

// 0x80 at every nonzero byte of w, 0 elsewhere. This is the borrow-free
// SWAR form: every byte of (w | kHigh) is >= 0x80, so subtracting kOnes
// never borrows across byte lanes and each lane is classified
// independently — unlike the classic (w - kOnes) & ~w & kHigh zero test,
// which is only exact up to the first zero byte. Per lane: the subtract
// leaves the high bit set iff the low 7 bits are nonzero, and w's own
// high bit covers the 0x80 case.
inline constexpr std::uint64_t held_mask(std::uint64_t w) {
  return (w | ((w | kHigh) - kOnes)) & kHigh;
}

inline constexpr std::uint64_t clear_mask(std::uint64_t w) {
  return held_mask(w) ^ kHigh;
}

}  // namespace detail

// --- per-byte reference engine ------------------------------------------

inline std::uint64_t count_held_bytewise(const sync::TasCell* cells,
                                         std::uint64_t n) {
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (cells[i].held()) ++count;
  }
  return count;
}

template <typename Fn>
void for_each_held_bytewise(const sync::TasCell* cells, std::uint64_t n,
                            Fn&& fn) {
  for (std::uint64_t i = 0; i < n; ++i) {
    if (cells[i].held()) fn(i);
  }
}

// Index of the first clear slot, or n if every slot is held.
inline std::uint64_t find_first_clear_bytewise(const sync::TasCell* cells,
                                               std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!cells[i].held()) return i;
  }
  return n;
}

// --- word engine --------------------------------------------------------

inline std::uint64_t count_held(const sync::TasCell* cells, std::uint64_t n) {
  std::uint64_t count = 0;
  std::uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    count += static_cast<std::uint64_t>(
        __builtin_popcountll(detail::held_mask(detail::load_word(cells, i))));
  }
  for (; i < n; ++i) {
    if (cells[i].held()) ++count;
  }
  return count;
}

// Calls fn(index) for every held slot, in ascending index order.
template <typename Fn>
void for_each_held(const sync::TasCell* cells, std::uint64_t n, Fn&& fn) {
  std::uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t mask = detail::held_mask(detail::load_word(cells, i));
    while (mask != 0) {
      // Each lane's marker is its byte's 0x80 bit: bit 7 for slot i,
      // bit 15 for slot i+1, ... so ctz >> 3 recovers the byte offset.
      fn(i + (static_cast<std::uint64_t>(__builtin_ctzll(mask)) >> 3));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (cells[i].held()) fn(i);
  }
}

// Index of the first clear slot, or n if every slot is held.
inline std::uint64_t find_first_clear(const sync::TasCell* cells,
                                      std::uint64_t n) {
  std::uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t mask =
        detail::clear_mask(detail::load_word(cells, i));
    if (mask != 0) {
      return i + (static_cast<std::uint64_t>(__builtin_ctzll(mask)) >> 3);
    }
  }
  for (; i < n; ++i) {
    if (!cells[i].held()) return i;
  }
  return n;
}

// --- multi-claim engine -------------------------------------------------

// Snapshot held-mask of the 8 slots at cells[base..base+8): 0x80 at each
// held lane (lane = slot - base). Caller guarantees base + 8 <= n. The
// batch-free paths use it to verify a whole run of same-word names with
// one load instead of one held() read per name.
inline std::uint64_t held_lanes(const sync::TasCell* cells,
                                std::uint64_t base) {
  return detail::held_mask(detail::load_word(cells, base));
}

// Claim up to `want` clear slots in [begin, end), invoking fn(slot) per
// claimed slot and returning how many were claimed. One SWAR load yields
// a word's whole clear-mask and the claimer TASes several bits out of it
// before moving on — the amortization behind the batch Get paths, where
// the per-byte engines would re-walk the range per name. `n` bounds the
// cells array itself (word loads stop short of it; the tail goes
// per-byte), and lanes past `end` are masked off so a window clipped at
// a batch boundary never claims a neighbor's slot. A lane that flips
// held between the snapshot and the TAS is simply skipped: the mask is a
// hint, the TAS is the claim.
template <typename Fn>
std::size_t claim_clear(sync::TasCell* cells, std::uint64_t begin,
                        std::uint64_t end, std::uint64_t n, std::size_t want,
                        Fn&& fn) {
  std::size_t claimed = 0;
  std::uint64_t i = begin;
  for (; i + 8 <= n && i < end && claimed < want; i += 8) {
    std::uint64_t mask = detail::clear_mask(detail::load_word(cells, i));
    if (end - i < 8) {
      mask &= (std::uint64_t{1} << (8 * (end - i))) - 1;
    }
    while (mask != 0 && claimed < want) {
      const std::uint64_t slot =
          i + (static_cast<std::uint64_t>(__builtin_ctzll(mask)) >> 3);
      mask &= mask - 1;
      if (cells[slot].try_acquire()) {
        fn(slot);
        ++claimed;
      }
    }
  }
  for (; i < end && claimed < want; ++i) {
    if (cells[i].try_acquire()) {
      fn(i);
      ++claimed;
    }
  }
  return claimed;
}

// --- bit-domain sibling -------------------------------------------------

// Same contract as for_each_held for the bit-per-slot layout: fn(index)
// for every set bit across `words`, ascending. The caller guarantees bits
// past its logical slot count are never set (the BitmapActivityArray
// invariant), so no bound beyond the word count is needed.
template <typename Fn>
void for_each_set_bit(const la::detail::atomic<std::uint64_t>* words,
                      std::uint64_t word_count, Fn&& fn) {
  for (std::uint64_t w = 0; w < word_count; ++w) {
    std::uint64_t bits = words[w].load(std::memory_order_relaxed);
    while (bits != 0) {
      fn(w * 64 + static_cast<std::uint64_t>(__builtin_ctzll(bits)));
      bits &= bits - 1;
    }
  }
}

}  // namespace la::core::slot_scan
