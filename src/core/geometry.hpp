// Batch geometry of the LevelArray: L slots split into batches of
// doubly-exponentially decreasing size. Batch k ends at
//
//     end_k = L - floor(L / 2^(2^(k+1)))
//
// so batch 0 holds 3L/4 slots (= 3n/2 for L = 2n), batch 1 holds ~3L/16,
// and the tail after batch k shrinks as L / 2^(2^(k+1)) — squaring away
// each step, which is what caps the number of batches at O(log log L) and
// the probe complexity at O(log log n) w.h.p. The final batch absorbs the
// integer remainder so the sizes always sum to exactly L.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace la::core {

class Batch {
 public:
  Batch(std::uint64_t offset, std::uint64_t size)
      : offset_(offset), size_(size) {}

  std::uint64_t offset() const { return offset_; }
  std::uint64_t size() const { return size_; }
  std::uint64_t end() const { return offset_ + size_; }

 private:
  std::uint64_t offset_;
  std::uint64_t size_;
};

class Geometry {
 public:
  explicit Geometry(std::uint64_t total_slots)
      : total_slots_(total_slots < 2 ? 2 : total_slots) {
    std::uint64_t start = 0;
    std::uint32_t k = 0;
    while (start < total_slots_) {
      // 2^(k+1), saturated at 64 so the shift below stays defined; a
      // 64-bit tail is empty from that point on anyway.
      const std::uint32_t exp = k + 1 < 6 ? (1u << (k + 1)) : 64;
      const std::uint64_t tail = exp >= 64 ? 0 : total_slots_ >> exp;
      std::uint64_t end = total_slots_ - tail;
      if (end <= start || tail == 0) end = total_slots_;
      batches_.emplace_back(start, end - start);
      start = end;
      ++k;
    }
  }

  std::uint32_t num_batches() const {
    return static_cast<std::uint32_t>(batches_.size());
  }

  const Batch& batch(std::uint32_t k) const {
    if (k >= batches_.size()) {
      throw std::out_of_range("Geometry::batch: index out of range");
    }
    return batches_[k];
  }

  std::uint64_t total_slots() const { return total_slots_; }

  // Which batch a slot index falls in (at most ~6 batches; linear scan).
  std::uint32_t batch_of_slot(std::uint64_t slot) const {
    for (std::uint32_t k = 0; k < batches_.size(); ++k) {
      if (slot < batches_[k].end()) return k;
    }
    return num_batches() - 1;
  }

 private:
  std::uint64_t total_slots_;
  std::vector<Batch> batches_;
};

}  // namespace la::core
