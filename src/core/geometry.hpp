// Batch geometry of the LevelArray: L slots split into batches of
// doubly-exponentially decreasing size. Batch k ends at
//
//     end_k = L - floor(L / 2^(2^(k+1)))
//
// so batch 0 holds 3L/4 slots (= 3n/2 for L = 2n), batch 1 holds ~3L/16,
// and the tail after batch k shrinks as L / 2^(2^(k+1)) — squaring away
// each step, which is what caps the number of batches at O(log log L) and
// the probe complexity at O(log log n) w.h.p. The final batch absorbs the
// integer remainder so the sizes always sum to exactly L.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace la::core {

// Largest slot count any structure will size itself to. Doubles hold
// integers exactly only up to 2^53, so multiplier * capacity products
// beyond it cannot be converted faithfully (and the cast itself would be
// undefined past 2^64); any real array that large would exhaust memory
// long before, so refuse loudly at configuration time.
inline constexpr std::uint64_t kMaxScaledSlots = std::uint64_t{1} << 53;

// slots = multiplier * capacity with an explicit overflow guard — the one
// place a (factor, capacity) pair becomes an array size, shared by
// LevelArrayConfig and api::RenamerConfig so the guard cannot drift.
inline std::uint64_t scaled_slots(double multiplier, std::uint64_t capacity) {
  const double product = multiplier * static_cast<double>(capacity);
  if (!(product >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "scaled_slots: multiplier * capacity is negative or NaN");
  }
  if (product >= static_cast<double>(kMaxScaledSlots)) {
    throw std::overflow_error(
        "scaled_slots: multiplier * capacity exceeds 2^53 slots");
  }
  const auto slots = static_cast<std::uint64_t>(product);
  return slots < 2 ? 2 : slots;
}

class Batch {
 public:
  Batch(std::uint64_t offset, std::uint64_t size)
      : offset_(offset), size_(size) {}

  std::uint64_t offset() const { return offset_; }
  std::uint64_t size() const { return size_; }
  std::uint64_t end() const { return offset_ + size_; }

 private:
  std::uint64_t offset_;
  std::uint64_t size_;
};

class Geometry {
 public:
  explicit Geometry(std::uint64_t total_slots)
      : total_slots_(total_slots < 2 ? 2 : total_slots) {
    std::uint64_t start = 0;
    std::uint32_t k = 0;
    while (start < total_slots_) {
      // 2^(k+1), saturated at 64 so the shift below stays defined; a
      // 64-bit tail is empty from that point on anyway.
      const std::uint32_t exp = k + 1 < 6 ? (1u << (k + 1)) : 64;
      const std::uint64_t tail = exp >= 64 ? 0 : total_slots_ >> exp;
      std::uint64_t end = total_slots_ - tail;
      if (end <= start || tail == 0) end = total_slots_;
      batches_.emplace_back(start, end - start);
      start = end;
      ++k;
    }
  }

  std::uint32_t num_batches() const {
    return static_cast<std::uint32_t>(batches_.size());
  }

  const Batch& batch(std::uint32_t k) const {
    if (k >= batches_.size()) {
      throw std::out_of_range("Geometry::batch: index out of range");
    }
    return batches_[k];
  }

  std::uint64_t total_slots() const { return total_slots_; }

  // Which batch a slot index falls in (at most ~6 batches; linear scan).
  std::uint32_t batch_of_slot(std::uint64_t slot) const {
    for (std::uint32_t k = 0; k < batches_.size(); ++k) {
      if (slot < batches_[k].end()) return k;
    }
    return num_batches() - 1;
  }

 private:
  std::uint64_t total_slots_;
  std::vector<Batch> batches_;
};

}  // namespace la::core
