// Shared result shape for every renaming structure's Get. Keeping the
// comparison algorithms behind the same shape is what lets the bench
// drivers template over array types.
#pragma once

#include <cstdint>

namespace la {

struct GetResult {
  std::uint64_t name = 0;          // the acquired slot index / name
  // "trials": probe attempts performed. For the LevelArray this counts
  // the randomized per-batch probes only — the paper's trials metric —
  // not the slots touched by the rare backup sweep, whose cost is
  // reported separately via used_backup / the benches' backup_gets
  // column. Scan-based structures count every slot inspected.
  std::uint32_t probes = 0;
  std::uint32_t deepest_batch = 0; // deepest LevelArray batch probed (0 else)
  bool used_backup = false;        // fell through to the deterministic sweep
};

}  // namespace la
