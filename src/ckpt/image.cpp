#include "ckpt/image.hpp"

#include <array>
#include <cstring>

namespace la::ckpt {
namespace {

constexpr std::array<char, 8> kMagic = {'L', 'A', 'C', 'K', 'P', 'T', '0', '1'};
constexpr std::size_t kHeaderBytes = 56;  // fixed prefix before the tag
constexpr std::size_t kCrcBytes = 4;
// Decode-time sanity bounds: a held count or tag length beyond these is
// a corrupt length field, not a real image (the largest structure in
// this repo is millions of slots, not 2^56).
constexpr std::uint64_t kMaxHeld = std::uint64_t{1} << 40;
constexpr std::uint32_t kMaxTag = 4096;

std::uint32_t crc_table_entry(std::uint32_t i) {
  std::uint32_t c = i;
  for (int bit = 0; bit < 8; ++bit)
    c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
  return c;
}

struct CrcTable {
  std::uint32_t entries[256];
  CrcTable() {
    for (std::uint32_t i = 0; i < 256; ++i) entries[i] = crc_table_entry(i);
  }
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* bytes, std::size_t size) {
  static const CrcTable table;
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table.entries[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> Image::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + structure.size() + 8 * held.size() + kCrcBytes);
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, version);
  put_u32(out, static_cast<std::uint32_t>(structure.size()));
  put_u64(out, capacity);
  put_u64(out, total_slots);
  put_u32(out, shards);
  put_u32(out, 0);  // reserved
  put_u64(out, shard_stride);
  put_u64(out, held.size());
  for (const char c : structure) out.push_back(static_cast<std::uint8_t>(c));
  for (std::uint64_t name : held) put_u64(out, name);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

Image Image::decode(const std::uint8_t* bytes, std::size_t size) {
  if (size < kHeaderBytes + kCrcBytes)
    throw ImageError("ckpt: image truncated (" + std::to_string(size) +
                     " bytes, header needs " +
                     std::to_string(kHeaderBytes + kCrcBytes) + ")");
  if (std::memcmp(bytes, kMagic.data(), kMagic.size()) != 0)
    throw ImageError("ckpt: bad magic (not a LACKPT01 image)");

  Image img;
  img.version = get_u32(bytes + 8);
  if (img.version != kImageVersion)
    throw ImageError("ckpt: unsupported image version " +
                     std::to_string(img.version));
  const std::uint32_t tag_len = get_u32(bytes + 12);
  img.capacity = get_u64(bytes + 16);
  img.total_slots = get_u64(bytes + 24);
  img.shards = get_u32(bytes + 32);
  if (get_u32(bytes + 36) != 0)
    throw ImageError("ckpt: nonzero reserved field");
  img.shard_stride = get_u64(bytes + 40);
  const std::uint64_t held_count = get_u64(bytes + 48);

  if (tag_len > kMaxTag)
    throw ImageError("ckpt: structure tag length " + std::to_string(tag_len) +
                     " exceeds bound");
  if (held_count > kMaxHeld)
    throw ImageError("ckpt: held count " + std::to_string(held_count) +
                     " exceeds bound");
  const std::size_t body = kHeaderBytes + tag_len +
                           static_cast<std::size_t>(8 * held_count);
  if (size != body + kCrcBytes)
    throw ImageError("ckpt: image size " + std::to_string(size) +
                     " does not match declared contents (" +
                     std::to_string(body + kCrcBytes) + ")");
  const std::uint32_t declared = get_u32(bytes + body);
  const std::uint32_t actual = crc32(bytes, body);
  if (declared != actual)
    throw ImageError("ckpt: CRC mismatch (stored " + std::to_string(declared) +
                     ", computed " + std::to_string(actual) + ")");

  img.structure.assign(reinterpret_cast<const char*>(bytes) + kHeaderBytes,
                       tag_len);
  img.held.reserve(static_cast<std::size_t>(held_count));
  const std::uint8_t* names = bytes + kHeaderBytes + tag_len;
  for (std::uint64_t i = 0; i < held_count; ++i) {
    const std::uint64_t name = get_u64(names + 8 * i);
    if (!img.held.empty() && name <= img.held.back())
      throw ImageError("ckpt: held names not strictly increasing at index " +
                       std::to_string(i) + " (duplicate or unsorted)");
    if (name >= img.total_slots)
      throw ImageError("ckpt: held name " + std::to_string(name) +
                       " outside source total_slots " +
                       std::to_string(img.total_slots));
    img.held.push_back(name);
  }
  if (held_count > img.capacity)
    throw ImageError("ckpt: held count " + std::to_string(held_count) +
                     " exceeds source capacity " + std::to_string(img.capacity));
  return img;
}

}  // namespace la::ckpt
