// ckpt::Image — the versioned snapshot image behind checkpoint/restore
// and live re-sharding migration (see README "Checkpoint & migration").
//
// An image is the *logical* state of a renaming structure: its geometry
// (capacity, total_slots, shard layout when sharded) plus the exact set
// of held names, captured via the word-scan collect. It deliberately
// carries nothing physical — no cache bins, no gate counters, no inner
// slot addresses — so a `sharded:level` image can restore into a
// `sharded:linear` instance with a different shard count: the restore
// path re-routes every name to its new home shard and reseeds gates
// from scratch (src/api/snapshot.hpp).
//
// Wire format (little-endian, CRC32 over everything before the CRC):
//
//   offset  size  field
//   0       8     magic "LACKPT01"
//   8       4     version (currently 1)
//   12      4     structure tag length T
//   16      8     capacity
//   24      8     total_slots
//   32      4     shards        (0 = flat structure)
//   36      4     reserved      (must be 0)
//   40      8     shard_stride  (0 = flat structure)
//   48      8     held count N
//   56      T     structure tag bytes (registry key, e.g. "sharded:level")
//   56+T    8*N   held names, strictly increasing
//   56+T+8N 4     CRC32 of bytes [0, 56+T+8N)
//
// decode() throws ckpt::ImageError (never UB) on any malformation:
// truncation, bad magic, unknown version, CRC mismatch, out-of-range or
// duplicate held names, geometry that cannot contain its own held set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace la::ckpt {

inline constexpr std::uint32_t kImageVersion = 1;

// Every malformed-image condition surfaces as this typed error; restore
// paths also throw it for images whose geometry cannot be adopted by
// the target (stride shrink, capacity overflow).
class ImageError : public std::runtime_error {
 public:
  explicit ImageError(const std::string& what) : std::runtime_error(what) {}
};

struct Image {
  std::uint32_t version = kImageVersion;
  // Registry key of the source structure ("level", "sharded:linear", ...).
  // Informational: restore() targets any adoptable structure.
  std::string structure;
  std::uint64_t capacity = 0;
  std::uint64_t total_slots = 0;
  // Shard geometry of the source; 0/0 for flat structures. Restore into
  // a sharded target only needs the *names* to route (the target's own
  // stride decomposes them), but the source geometry documents what the
  // names meant and lets validation reject impossible images early.
  std::uint32_t shards = 0;
  std::uint64_t shard_stride = 0;
  // Strictly increasing held names (global encoding for sharded sources).
  std::vector<std::uint64_t> held;

  std::vector<std::uint8_t> encode() const;
  static Image decode(const std::uint8_t* bytes, std::size_t size);
  static Image decode(const std::vector<std::uint8_t>& bytes) {
    return decode(bytes.data(), bytes.size());
  }
};

// CRC32 (IEEE, reflected) — the image checksum. Exposed for tests that
// corrupt images bit by bit.
std::uint32_t crc32(const std::uint8_t* bytes, std::size_t size);

}  // namespace la::ckpt
