// ckpt::AnyRenamer — a type-erased Renamer whose implementation can be
// swapped at runtime: the seam live re-sharding migration turns on.
// svc::Server<Structure> holds a `Structure&` for the lifetime of its
// workers, so the server cannot change structure *types* mid-run — but
// it can front an AnyRenamer whose impl is replaced while the workers
// are quiesced (Server::migrate): save() the old impl's image, build a
// differently configured impl, restore() into it, replace(). Names keep
// their numeric identity across the swap (the api::restore contract),
// so the server's per-pid held bitmaps and every client's outstanding
// names stay valid.
//
// The virtual boundary is monomorphic on rng::MarsagliaXorshift — the
// same anchor the static is_renamer_v contract detects against, and the
// generator the svc worker loop instantiates — so AnyRenamer itself
// satisfies the static contract (is_renamer_v, has_batch_ops_v,
// has_snapshot_v) and drops into Server, api::save/restore, and the
// harnesses unchanged. The indirection costs one virtual call per op;
// the structures behind it amortize far more than that per op, and the
// erasure is only used on the migration-capable service path.
//
// replace() is NOT thread-safe: callers must own exclusive access to
// the structure (Server::migrate's worker quiesce handshake provides
// it; the happens-before to the resumed workers rides on the
// handshake's release/acquire pair, so the impl pointer itself needs no
// atomicity).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/snapshot.hpp"
#include "core/types.hpp"
#include "rng/rng.hpp"

namespace la::ckpt {

class AnyRenamer {
 public:
  template <typename T>
  AnyRenamer(std::unique_ptr<T> impl, std::string tag)
      : impl_(wrap(std::move(impl))), tag_(std::move(tag)) {}

  AnyRenamer(const AnyRenamer&) = delete;
  AnyRenamer& operator=(const AnyRenamer&) = delete;

  // Swap the implementation. Precondition: no concurrent ops (see the
  // header comment); the old impl is destroyed before return.
  template <typename T>
  void replace(std::unique_ptr<T> impl, std::string tag) {
    impl_ = wrap(std::move(impl));
    tag_ = std::move(tag);
  }

  // Registry key of the current impl ("sharded:level", ...), for labels
  // and the image provenance field.
  const std::string& tag() const { return tag_; }

  GetResult get(rng::MarsagliaXorshift& rng) { return impl_->get(rng); }
  std::size_t get_batch(rng::MarsagliaXorshift& rng, GetResult* out,
                        std::size_t k) {
    return impl_->get_batch(rng, out, k);
  }
  void free(std::uint64_t name) { impl_->free(name); }
  void free_batch(const std::uint64_t* names, std::size_t k) {
    impl_->free_batch(names, k);
  }
  std::size_t collect(std::vector<std::uint64_t>& out) const {
    return impl_->collect(out);
  }
  std::uint64_t capacity() const { return impl_->capacity(); }
  std::uint64_t total_slots() const { return impl_->total_slots(); }
  // Throws std::logic_error when the erased structure has no adoption
  // path (e.g. splitter-backed impls) — has_adopt_held_v is necessarily
  // static, so the erased surface reports the gap at restore time.
  void adopt_held(std::uint64_t name) { impl_->adopt_held(name); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual GetResult get(rng::MarsagliaXorshift& rng) = 0;
    virtual std::size_t get_batch(rng::MarsagliaXorshift& rng, GetResult* out,
                                  std::size_t k) = 0;
    virtual void free(std::uint64_t name) = 0;
    virtual void free_batch(const std::uint64_t* names, std::size_t k) = 0;
    virtual std::size_t collect(std::vector<std::uint64_t>& out) const = 0;
    virtual std::uint64_t capacity() const = 0;
    virtual std::uint64_t total_slots() const = 0;
    virtual void adopt_held(std::uint64_t name) = 0;
  };

  template <typename T>
  struct Model final : Concept {
    explicit Model(std::unique_ptr<T> impl) : inner(std::move(impl)) {}
    GetResult get(rng::MarsagliaXorshift& rng) override {
      return inner->get(rng);
    }
    std::size_t get_batch(rng::MarsagliaXorshift& rng, GetResult* out,
                          std::size_t k) override {
      return api::get_batch(*inner, rng, out, k);
    }
    void free(std::uint64_t name) override { inner->free(name); }
    void free_batch(const std::uint64_t* names, std::size_t k) override {
      api::free_batch(*inner, names, k);
    }
    std::size_t collect(std::vector<std::uint64_t>& out) const override {
      return inner->collect(out);
    }
    std::uint64_t capacity() const override { return inner->capacity(); }
    std::uint64_t total_slots() const override { return inner->total_slots(); }
    void adopt_held(std::uint64_t name) override {
      if constexpr (api::has_adopt_held_v<T>) {
        inner->adopt_held(name);
      } else {
        (void)name;
        throw std::logic_error(
            "ckpt::AnyRenamer: the erased structure has no adoption path");
      }
    }
    std::unique_ptr<T> inner;
  };

  template <typename T>
  static std::unique_ptr<Concept> wrap(std::unique_ptr<T> impl) {
    static_assert(api::is_renamer_v<T>,
                  "ckpt::AnyRenamer erases the api::Renamer contract");
    if (impl == nullptr) {
      throw std::invalid_argument("ckpt::AnyRenamer: null implementation");
    }
    return std::make_unique<Model<T>>(std::move(impl));
  }

  std::unique_ptr<Concept> impl_;
  std::string tag_;
};

static_assert(api::is_renamer_v<AnyRenamer>);
static_assert(api::has_batch_ops_v<AnyRenamer>);
static_assert(api::has_snapshot_v<AnyRenamer>);

}  // namespace la::ckpt
