// Determinism of the bench driver's seed plumbing: the same DriverConfig
// seed in single-thread op-count mode must yield bit-identical RunResult
// trial stats, for every registered structure and every registered probe
// RNG — and a different seed must actually change the probe stream for
// the randomized structures (i.e. the seed is plumbed, not ignored).
// Timing fields (elapsed/throughput) are wall-clock and excluded.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bench_util/algos.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

bool same_trials(const la::bench::RunResult& a, const la::bench::RunResult& b) {
  return a.trials.operations() == b.trials.operations() &&
         a.trials.worst_case() == b.trials.worst_case() &&
         a.trials.histogram() == b.trials.histogram() &&
         a.total_ops == b.total_ops && a.backup_gets == b.backup_gets &&
         a.mean_per_thread_worst == b.mean_per_thread_worst;
}

la::bench::SweepPoint point_for(std::uint64_t seed, la::rng::RngKind kind) {
  la::bench::SweepPoint point;
  point.driver.threads = 1;
  point.driver.emulation_multiplier = 256;
  point.driver.prefill = 0.5;
  point.driver.ops_per_thread = 4096;
  point.driver.seed = seed;
  point.driver.rng_kind = kind;
  return point;
}

}  // namespace

int main() {
  using namespace la;

  const std::vector<std::string> randomized = {"level", "random", "linear",
                                               "bitmap", "id"};
  // Exempt from the reseed check below: seq/splitter are deterministic
  // by design, and the sharded variants' churn histograms are almost
  // all cache hits (probes == 1), so two seeds can legitimately
  // coincide. Same-seed bit-identity must still hold for all of them —
  // including the scale layer's claim-order and park/pop plumbing over
  // every inner structure.
  std::vector<std::string> deterministic = {"seq", "splitter"};
  for (const auto& name : api::registered_names()) {
    if (name.rfind("sharded:", 0) == 0) deterministic.push_back(name);
  }
  const std::vector<rng::RngKind> kinds = {
      rng::RngKind::kMarsaglia, rng::RngKind::kLehmer, rng::RngKind::kPcg32};

  for (const auto kind : kinds) {
    auto all = randomized;
    all.insert(all.end(), deterministic.begin(), deterministic.end());
    for (const auto& algo : all) {
      current = algo;
      const auto a = bench::run_algo(algo, point_for(42, kind));
      const auto b = bench::run_algo(algo, point_for(42, kind));
      CHECK(a.trials.operations() > 0);
      CHECK(same_trials(a, b));
    }
    // Seed actually reaches the probe streams: a different seed must move
    // the exact trial histogram. Only the structures whose histograms
    // carry real entropy at this load participate — `id` runs at 1/16
    // load where nearly every Get is one probe, so two seeds can
    // plausibly produce identical histograms; it shares drive()'s seed
    // path with `random` anyway. The deterministic structures are exempt
    // by design.
    for (const std::string algo : {"level", "random", "linear", "bitmap"}) {
      current = algo + "/reseed";
      const auto a = bench::run_algo(algo, point_for(42, kind));
      const auto c = bench::run_algo(algo, point_for(43, kind));
      CHECK(!same_trials(a, c));
    }
  }

  // run_churn against a caller-owned persistent array: deterministic for
  // a fresh array + same seed, and chunk seeds must not replay (the
  // longrun bench varies seed per chunk for exactly this reason).
  {
    current = "run_churn";
    const auto run_once = [](std::uint64_t seed) {
      core::LevelArrayConfig config;
      config.capacity = 256;
      core::LevelArray array(config);
      bench::DriverConfig driver;
      driver.threads = 1;
      driver.emulation_multiplier = 256;
      driver.ops_per_thread = 4096;
      driver.seed = seed;
      return bench::run_churn(array, driver);
    };
    const auto a = run_once(7);
    const auto b = run_once(7);
    const auto c = run_once(8);
    CHECK(same_trials(a, b));
    CHECK(!same_trials(a, c));
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d determinism check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_driver_determinism: OK");
  return 0;
}
