// The daemon's crash-liveness guarantee, end to end with real processes:
// fork one client that exits cleanly (its names freed, its rings
// detached) and one that is SIGKILLed while holding names mid-protocol.
// The server's sweep must recover every name the dead client held —
// proven three ways: the reclaim counters match the victim's announced
// hold count, collect() agrees nothing is held at quiescence, and a
// fresh client can re-acquire the full contention bound afterwards (a
// leaked name would make that impossible).
//
// Fork choreography matters under ASan: every child is forked before the
// server's worker threads start (children block in the Client ctor until
// header.ready), and children leave via _exit after joining the worker
// thread that ran their traffic (the thread-exit hook is what releases
// the TLS-claimed ring).
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "svc/client.hpp"
#include "svc/segment.hpp"
#include "svc/server.hpp"
#include "sync/spin_barrier.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

constexpr std::uint64_t kCapacity = 64;
constexpr std::uint64_t kVictimHolds = 10;

// scratch[0]: victim -> parent, number of names held (nonzero = parked
// and killable). scratch[1]: clean child -> parent, ops completed.
void clean_child(la::svc::SegmentView seg) {
  la::svc::Client client(seg);
  la::rng::MarsagliaXorshift rng(7);
  std::vector<la::GetResult> got(8);
  std::uint64_t ops = 0;
  for (int round = 0; round < 16; ++round) {
    std::size_t have = 0;
    la::sync::Backoff backoff;
    while (have < got.size()) {
      have += client.get_batch(rng, got.data() + have, got.size() - have);
      if (have < got.size()) backoff.pause();
    }
    for (std::size_t i = 0; i < have; ++i) client.free(got[i].name);
    ops += 2 * have;
  }
  seg.header().scratch[1].store(ops, std::memory_order_release);
}

[[noreturn]] void victim_child(la::svc::SegmentView seg) {
  la::svc::Client client(seg);
  la::rng::MarsagliaXorshift rng(11);
  std::vector<la::GetResult> got(kVictimHolds);
  std::size_t have = 0;
  la::sync::Backoff backoff;
  while (have < kVictimHolds) {
    have += client.get_batch(rng, got.data() + have, kVictimHolds - have);
    if (have < kVictimHolds) backoff.pause();
  }
  seg.header().scratch[0].store(have, std::memory_order_release);
  for (;;) std::this_thread::yield();  // holding until SIGKILL
}

}  // namespace

int main() {
  using namespace la;
  current = "reclaim";

  svc::SegmentConfig seg_config;
  seg_config.max_clients = 8;
  svc::Segment segment(seg_config);
  svc::SegmentView seg = segment.view();

  // Fork both children before any thread exists in this process.
  const pid_t clean_pid = ::fork();
  if (clean_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (clean_pid == 0) {
    std::thread worker([&] { clean_child(seg); });
    worker.join();
    ::_exit(0);
  }
  const pid_t victim_pid = ::fork();
  if (victim_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (victim_pid == 0) {
    std::thread worker([&] { victim_child(seg); });
    worker.join();  // unreachable
    ::_exit(4);
  }

  scale::ShardedConfig sharded;
  sharded.shards = 4;
  core::LevelArrayConfig level;
  level.capacity = kCapacity / sharded.shards;
  scale::ShardedRenamer<core::LevelArray> structure(
      sharded, [&level](std::uint32_t) {
        return std::make_unique<core::LevelArray>(level);
      });
  svc::Server<scale::ShardedRenamer<core::LevelArray>> server(seg, structure);
  server.start();

  // The clean child must finish green and leave nothing behind.
  int status = 0;
  CHECK(::waitpid(clean_pid, &status, 0) == clean_pid);
  CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  CHECK(seg.header().scratch[1].load(std::memory_order_acquire) > 0);

  // Wait until the victim provably holds names, then kill it mid-hold.
  {
    sync::Backoff backoff;
    while (seg.header().scratch[0].load(std::memory_order_acquire) == 0) {
      backoff.pause();
    }
  }
  const std::uint64_t announced =
      seg.header().scratch[0].load(std::memory_order_acquire);
  CHECK(announced == kVictimHolds);
  ::kill(victim_pid, SIGKILL);
  // Reap before sweeping: a zombie still "exists" to kill(pid, 0), so an
  // unreaped victim would survive the liveness probe.
  CHECK(::waitpid(victim_pid, &status, 0) == victim_pid);
  CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  server.request_sweep();
  const svc::ServerStats stats = server.stats();
  CHECK(stats.reclaims >= 1);  // the victim's rings (clean child detached)
  CHECK(stats.reclaimed_names == announced);

  // Quiescence: the structure agrees nothing is held...
  {
    std::vector<std::uint64_t> leftovers;
    CHECK(structure.collect(leftovers) == 0);
  }

  // ...and every name is re-acquirable through a fresh client in this
  // process (a leaked slot would cap this below the contention bound).
  {
    svc::Client client(seg);
    rng::MarsagliaXorshift rng(13);
    std::vector<GetResult> got(kCapacity);
    std::size_t have = 0;
    sync::Backoff backoff;
    for (int attempts = 0; have < kCapacity && attempts < 200000;
         ++attempts) {
      have += client.get_batch(rng, got.data() + have, kCapacity - have);
      if (have < kCapacity) backoff.pause();
    }
    CHECK(have == kCapacity);
    for (std::size_t i = 0; i < have; ++i) client.free(got[i].name);
    std::vector<std::uint64_t> leftovers;
    server.request_sweep();
    CHECK(structure.collect(leftovers) == 0);
  }

  CHECK(server.error().empty());
  server.stop();

  if (failures == 0) {
    std::printf("test_svc_reclaim: all checks passed\n");
    return 0;
  }
  std::printf("test_svc_reclaim: %d check(s) FAILED\n", failures);
  return 1;
}
