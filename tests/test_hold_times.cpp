// Hold-time distribution means: draw_hold_time promises every
// distribution realizes the requested mean (Little's law turns that into
// "same steady-state load", which is what makes the workload_trace
// comparisons fair). Each distribution is held to within 2% of the
// request over 1e6 draws — with a deliberately non-half-integral mean,
// the case the old truncating uniform width and round-to-nearest
// quantization drifted on (requested 2.7 realized 3.0).
#include <cstdint>
#include <cstdio>

#include "bench_util/workload.hpp"
#include "rng/rng.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

constexpr std::uint64_t kDraws = 1'000'000;

double realized_mean(la::bench::HoldDistribution dist, double mean,
                     std::uint64_t seed) {
  la::rng::MarsagliaXorshift rng(seed);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::uint64_t hold = la::bench::draw_hold_time(rng, dist, mean);
    if (hold < 1) return -1.0;  // contract: at least one iteration
    sum += static_cast<double>(hold);
  }
  return sum / static_cast<double>(kDraws);
}

void check_mean(la::bench::HoldDistribution dist, double mean,
                std::uint64_t seed) {
  const double realized = realized_mean(dist, mean, seed);
  const double error = (realized - mean) / mean;
  if (realized < 0.0 || error < -0.02 || error > 0.02) {
    std::fprintf(stderr,
                 "FAIL %s: requested mean %.3f realized %.4f (%.2f%% off)\n",
                 std::string(hold_distribution_name(dist)).c_str(), mean,
                 realized, 100.0 * error);
    ++failures;
  }
}

}  // namespace

int main() {
  using namespace la::bench;

  const HoldDistribution all[] = {
      HoldDistribution::kFixed,       HoldDistribution::kUniform,
      HoldDistribution::kExponential, HoldDistribution::kPareto,
      HoldDistribution::kBimodal,     HoldDistribution::kZipf};

  // Non-half-integral mean: truncation bugs cannot hide here. 37.7 keeps
  // the >= 1 clamp's bias negligible for every shape (the zipf rescale's
  // smallest value is mean / E[rank] ~ mean / 9).
  for (const auto dist : all) check_mean(dist, 37.7, 0xD15701);

  // The regression from the issue: uniform with mean 2.7 used to realize
  // 3.0 (truncated width 5 -> U{1..5}); the dithered width keeps it 2.7.
  check_mean(HoldDistribution::kUniform, 2.7, 0xD15702);
  // Fixed with a fractional mean dithers between 3 and 4.
  check_mean(HoldDistribution::kFixed, 3.25, 0xD15703);
  // Pareto is the cap-sensitive one: without the cap-compensated x_m the
  // 16*mean cap loses ~10% of the mean, far outside the 2% band.
  check_mean(HoldDistribution::kPareto, 100.0, 0xD15704);

  // Integral means stay exactly fixed for the fixed distribution.
  {
    la::rng::MarsagliaXorshift rng(7);
    for (int i = 0; i < 1000; ++i) {
      CHECK(draw_hold_time(rng, HoldDistribution::kFixed, 5.0) == 5);
    }
  }

  // Tiny means clamp to at least one iteration.
  {
    la::rng::MarsagliaXorshift rng(8);
    for (int i = 0; i < 1000; ++i) {
      CHECK(draw_hold_time(rng, HoldDistribution::kExponential, 0.01) >= 1);
    }
  }

  if (failures == 0) std::printf("test_hold_times: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
