// Pins the Get/Free contract of the LevelArray: names are unique while
// held, freed names become reusable, the probes counter is sane, collect
// sees exactly the held set, and the backup sweep keeps Get total under
// extreme occupancy.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <vector>

#include "core/level_array.hpp"
#include "rng/rng.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  using namespace la;

  // --- uniqueness, probes, collect -----------------------------------
  {
    core::LevelArrayConfig config;
    config.capacity = 128;
    core::LevelArray array(config);
    rng::MarsagliaXorshift rng(12345);

    // On an empty array the very first probe (batch 0) must win.
    const auto first = array.get(rng);
    CHECK(first.probes == 1);
    CHECK(!first.used_backup);
    CHECK(first.name < array.geometry().batch(0).end());
    array.free(first.name);

    std::set<std::uint64_t> held;
    for (std::uint64_t i = 0; i < config.capacity; ++i) {
      const auto r = array.get(rng);
      CHECK(r.probes >= 1);
      CHECK(r.name < array.total_slots());
      CHECK(held.insert(r.name).second);  // unique while held
    }
    CHECK(held.size() == config.capacity);

    std::vector<std::uint64_t> collected;
    CHECK(array.collect(collected) == config.capacity);
    CHECK(std::set<std::uint64_t>(collected.begin(), collected.end()) == held);

    // Occupancy splits across batches and sums to the held count.
    std::uint64_t occupancy_sum = 0;
    for (const auto count : array.batch_occupancy()) occupancy_sum += count;
    CHECK(occupancy_sum == config.capacity);

    // Free half; the freed names must be reusable (eventually reissued).
    std::vector<std::uint64_t> freed;
    for (auto it = held.begin(); it != held.end();) {
      freed.push_back(*it);
      array.free(*it);
      it = held.erase(it);
      if (freed.size() == config.capacity / 2) break;
    }
    for (std::uint64_t i = 0; i < config.capacity / 2; ++i) {
      const auto r = array.get(rng);
      CHECK(held.insert(r.name).second);
    }
    CHECK(held.size() == config.capacity);

    for (const auto name : held) array.free(name);
    collected.clear();
    CHECK(array.collect(collected) == 0);
  }

  // --- backup sweep keeps Get total near saturation -------------------
  {
    core::LevelArrayConfig config;
    config.capacity = 8;  // L = 16
    core::LevelArray array(config);
    rng::MarsagliaXorshift rng(7);

    std::set<std::uint64_t> held;
    bool saw_backup = false;
    // Push far past the contention bound: 15 of 16 slots. The randomized
    // phase alone cannot guarantee this; the backup sweep must kick in.
    for (std::uint64_t i = 0; i + 1 < array.total_slots(); ++i) {
      const auto r = array.get(rng);
      CHECK(held.insert(r.name).second);
      saw_backup = saw_backup || r.used_backup;
    }
    CHECK(held.size() + 1 == array.total_slots());

    // Free one specific name; the next Get must terminate and the name
    // pool must stay consistent.
    const std::uint64_t victim = *held.begin();
    array.free(victim);
    held.erase(victim);
    const auto r = array.get(rng);
    CHECK(held.insert(r.name).second);
    (void)saw_backup;  // backup is likely but not deterministic; totality is.

    for (const auto name : held) array.free(name);
  }

  // --- seed_batch_occupancy builds exact bad states -------------------
  {
    core::LevelArrayConfig config;
    config.capacity = 1024;
    core::LevelArray array(config);

    const auto b1 = array.seed_batch_occupancy(1, 100);
    CHECK(b1.size() == 100);
    const auto& batch1 = array.geometry().batch(1);
    for (const auto name : b1) {
      CHECK(name >= batch1.offset());
      CHECK(name < batch1.end());
    }
    const auto occupancy = array.batch_occupancy();
    CHECK(occupancy[0] == 0);
    CHECK(occupancy[1] == 100);
    for (const auto name : b1) array.free(name);
  }

  // --- per-batch probe budgets (c_i) are honored ----------------------
  {
    core::LevelArrayConfig config;
    config.capacity = 64;
    config.probes_per_batch = {16};
    core::LevelArray array(config);
    rng::MarsagliaXorshift rng(99);
    for (std::uint32_t k = 0; k < array.geometry().num_batches(); ++k) {
      CHECK(array.probes_for(k) == 16);
    }
    // A non-backup Get can never spend more than the total budget.
    std::vector<std::uint64_t> names;
    for (std::uint64_t i = 0; i < config.capacity; ++i) {
      const auto r = array.get(rng);
      if (!r.used_backup) {
        CHECK(r.probes <= static_cast<std::uint32_t>(
                              16 * array.geometry().num_batches()));
      }
      names.push_back(r.name);
    }
    for (const auto name : names) array.free(name);
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d get/free check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_get_free: OK");
  return 0;
}
