// Model-checked fuzz suite: seeded randomized Get/Free/Collect traces
// replayed against a std::set-based reference model, for every structure
// in the registry — the admission test any new layer must pass before
// registration (the sharded variants' cache-drain-vs-collect interaction
// is exactly the kind of bug it exists to break).
//
// Two modes per structure:
//
//   * sequential: one thread drives a random op mix (Get / Get-k / Free /
//     Free-k of random held names / Collect / deliberate double-free and
//     out-of-range-free probes) and after every step the structure must
//     agree with the model exactly — batch and single ops are drawn from
//     the same trace, so a native batch surface that diverges from the
//     single-op semantics (api::get_batch falls back to a loop where a
//     structure has none) breaks the model comparison immediately;
//   * phased-concurrent: worker threads run random Get/Free rounds
//     (batched about half the time, retrying partial gate grants under
//     Backoff) against private models with a collect() audit at every
//     quiescent barrier — cross-thread uniqueness falls out of the audit (a name
//     in two models would collide in the union), and for the sharded
//     variants the audit's cache drain runs against freshly parked
//     names round after round.
//
// Failures reproduce in one command: every FAIL prints the structure,
// seed, and step count, plus the tail of the operation trace, and the
// binary accepts --structure= / --seed= / --steps= to replay exactly
// that trace:
//
//   ./test_model_fuzz --structure=sharded:level --seed=20260727 --steps=4000
#include <cstdint>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/snapshot.hpp"
#include "bench_util/options.hpp"
#include "ckpt/image.hpp"
#include "rng/rng.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace {

int failures = 0;

struct FuzzCase {
  std::string structure;
  std::uint64_t seed = 0;
  std::uint64_t steps = 0;
  std::uint64_t capacity = 0;
};

// Ring buffer of the most recent operations, printed on failure.
class TraceTail {
 public:
  void note(std::string op) {
    if (ops_.size() == kKeep) ops_.erase(ops_.begin());
    ops_.push_back(std::move(op));
    ++total_;
  }

  void dump() const {
    std::fprintf(stderr, "  last %zu of %llu ops:\n", ops_.size(),
                 static_cast<unsigned long long>(total_));
    for (const auto& op : ops_) {
      std::fprintf(stderr, "    %s\n", op.c_str());
    }
  }

 private:
  static constexpr std::size_t kKeep = 24;
  std::vector<std::string> ops_;
  std::uint64_t total_ = 0;
};

void fail(const FuzzCase& fuzz, const TraceTail& trace, const char* what) {
  ++failures;
  std::fprintf(stderr, "FAIL [%s] seed=%llu steps=%llu: %s\n",
               fuzz.structure.c_str(),
               static_cast<unsigned long long>(fuzz.seed),
               static_cast<unsigned long long>(fuzz.steps), what);
  trace.dump();
  std::fprintf(stderr,
               "  reproduce: test_model_fuzz --structure=%s --seed=%llu "
               "--steps=%llu\n",
               fuzz.structure.c_str(),
               static_cast<unsigned long long>(fuzz.seed),
               static_cast<unsigned long long>(fuzz.steps));
}

// Compare collect() output against the model set, exactly.
template <typename Array>
bool audit_collect(Array& array, const std::set<std::uint64_t>& model) {
  std::vector<std::uint64_t> collected;
  const std::size_t found = array.collect(collected);
  if (found != collected.size() || found != model.size()) return false;
  return std::set<std::uint64_t>(collected.begin(), collected.end()) == model;
}

// One sequential fuzz run. Returns false (after reporting) on the first
// divergence from the model.
template <typename Array>
void fuzz_sequential(Array& array, const FuzzCase& fuzz) {
  la::rng::MarsagliaXorshift rng(la::rng::mix_seed(fuzz.seed, 0xF022));
  std::set<std::uint64_t> model;
  std::vector<std::uint64_t> held;  // model contents, for O(1) sampling
  std::vector<std::uint64_t> recently_freed;
  TraceTail trace;
  char buf[96];

  for (std::uint64_t step = 0; step < fuzz.steps; ++step) {
    const std::uint64_t roll = la::rng::bounded(rng, 100);
    if (roll < 2) {
      // Out-of-range free must throw std::out_of_range and change nothing.
      const std::uint64_t bogus = array.total_slots() + roll;
      trace.note("free(out-of-range " + std::to_string(bogus) + ")");
      bool threw = false;
      try {
        array.free(bogus);
      } catch (const std::out_of_range&) {
        threw = true;
      }
      if (!threw) {
        fail(fuzz, trace, "out-of-range free did not throw");
        return;
      }
    } else if (roll < 5 && !recently_freed.empty()) {
      // Double free of a recently freed (possibly parked) name must fail
      // loudly. Skip names the model re-acquired since.
      const std::uint64_t name = recently_freed.back();
      recently_freed.pop_back();
      if (model.count(name) == 0) {
        trace.note("free(double " + std::to_string(name) + ")");
        bool threw = false;
        try {
          array.free(name);
        } catch (const std::logic_error&) {
          threw = true;
        }
        if (!threw) {
          fail(fuzz, trace, "double free did not throw");
          return;
        }
      }
    } else if (roll < 12) {
      trace.note("collect()");
      if (!audit_collect(array, model)) {
        fail(fuzz, trace, "collect() disagrees with the reference model");
        return;
      }
    } else if (roll < 42 && model.size() < fuzz.capacity) {
      const auto r = array.get(rng);
      std::snprintf(buf, sizeof(buf), "get -> %llu (%u probes)",
                    static_cast<unsigned long long>(r.name), r.probes);
      trace.note(buf);
      if (r.name >= array.total_slots()) {
        fail(fuzz, trace, "get returned a name >= total_slots()");
        return;
      }
      if (r.probes < 1) {
        fail(fuzz, trace, "get reported zero probes");
        return;
      }
      if (!model.insert(r.name).second) {
        fail(fuzz, trace, "get returned a name the model already holds");
        return;
      }
      held.push_back(r.name);
    } else if (roll < 55 && model.size() < fuzz.capacity) {
      // Get-k through the api surface (native batch path where the
      // structure has one, the single-op fallback elsewhere). Capped at
      // the remaining capacity, so a full grant is always reachable; a
      // gate-bounded structure may still grant partially — retry the
      // remainder, which sequentially succeeds after its internal drain.
      const std::uint64_t room = fuzz.capacity - model.size();
      std::size_t k = 1 + static_cast<std::size_t>(la::rng::bounded(rng, 8));
      if (k > room) k = static_cast<std::size_t>(room);
      std::vector<la::GetResult> got(k);
      std::size_t have = 0;
      la::sync::Backoff backoff;
      while (have < k) {
        const std::size_t granted =
            la::api::get_batch(array, rng, got.data() + have, k - have);
        have += granted;
        if (have < k && granted == 0) backoff.pause();
      }
      std::snprintf(buf, sizeof(buf), "get_batch(k=%zu)", k);
      trace.note(buf);
      for (std::size_t i = 0; i < k; ++i) {
        if (got[i].name >= array.total_slots()) {
          fail(fuzz, trace, "get_batch returned a name >= total_slots()");
          return;
        }
        if (got[i].probes < 1) {
          fail(fuzz, trace, "get_batch reported zero probes");
          return;
        }
        if (!model.insert(got[i].name).second) {
          fail(fuzz, trace,
               "get_batch returned a name the model already holds");
          return;
        }
        held.push_back(got[i].name);
      }
    } else if (roll < 80 && !held.empty()) {
      const std::uint64_t victim = la::rng::bounded(rng, held.size());
      const std::uint64_t name = held[victim];
      trace.note("free(" + std::to_string(name) + ")");
      array.free(name);
      held[victim] = held.back();
      held.pop_back();
      model.erase(name);
      recently_freed.push_back(name);
      if (recently_freed.size() > 8) recently_freed.erase(
          recently_freed.begin());
    } else if (!held.empty()) {
      // Free-k of distinct random victims through the api surface.
      std::size_t m = 1 + static_cast<std::size_t>(la::rng::bounded(rng, 8));
      if (m > held.size()) m = held.size();
      std::vector<std::uint64_t> victims(m);
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t victim = la::rng::bounded(rng, held.size());
        victims[i] = held[victim];
        held[victim] = held.back();
        held.pop_back();
      }
      std::snprintf(buf, sizeof(buf), "free_batch(m=%zu)", m);
      trace.note(buf);
      la::api::free_batch(array, victims.data(), m);
      for (std::size_t i = 0; i < m; ++i) {
        model.erase(victims[i]);
        recently_freed.push_back(victims[i]);
      }
      while (recently_freed.size() > 8) recently_freed.erase(
          recently_freed.begin());
    }
  }

  // Drain and verify quiescence.
  trace.note("drain");
  for (const auto name : held) {
    array.free(name);
    model.erase(name);
  }
  held.clear();
  if (!audit_collect(array, model)) {
    fail(fuzz, trace, "structure not empty after the final drain");
  }
}

// Phased-concurrent fuzz: workers churn private models between barriers;
// the main thread audits collect() against the union at every quiescent
// point. Worker exceptions are trapped and reported (the invariant
// "collect == union" would be meaningless after one).
template <typename Array>
void fuzz_phased(Array& array, const FuzzCase& fuzz, std::uint32_t threads,
                 std::uint32_t rounds, std::uint32_t ops_per_round) {
  struct Worker {
    std::set<std::uint64_t> model;
    std::vector<std::uint64_t> held;
    std::string error;
  };
  std::vector<Worker> workers(threads);
  la::sync::SpinBarrier barrier(threads + 1);  // workers + auditor
  const std::uint64_t share = fuzz.capacity / (threads + 1);

  {
    la::sync::ThreadGroup group;
    group.spawn(threads, [&](std::uint32_t tid) {
      Worker& w = workers[tid];
      la::rng::MarsagliaXorshift rng(la::rng::mix_seed(fuzz.seed, tid + 71));
      std::vector<la::GetResult> got;
      std::vector<std::uint64_t> victims;
      try {
        for (std::uint32_t round = 0; round < rounds; ++round) {
          barrier.wait();  // round opens
          for (std::uint32_t op = 0; op < ops_per_round; ++op) {
            const bool can_get = w.held.size() < share;
            // Batch about half the ops, so concurrent get_batch races
            // steal-drain, collect(), and other threads' single ops.
            const bool batched = la::rng::bounded(rng, 2) == 0;
            if (!w.held.empty() &&
                (!can_get || la::rng::bounded(rng, 2) == 0)) {
              if (batched) {
                std::size_t m =
                    1 + static_cast<std::size_t>(la::rng::bounded(rng, 4));
                if (m > w.held.size()) m = w.held.size();
                victims.resize(m);
                for (std::size_t i = 0; i < m; ++i) {
                  const std::uint64_t victim =
                      la::rng::bounded(rng, w.held.size());
                  victims[i] = w.held[victim];
                  w.held[victim] = w.held.back();
                  w.held.pop_back();
                }
                la::api::free_batch(array, victims.data(), m);
                for (std::size_t i = 0; i < m; ++i) {
                  w.model.erase(victims[i]);
                }
              } else {
                const std::uint64_t victim =
                    la::rng::bounded(rng, w.held.size());
                array.free(w.held[victim]);
                w.model.erase(w.held[victim]);
                w.held[victim] = w.held.back();
                w.held.pop_back();
              }
            } else if (can_get && batched) {
              std::size_t k =
                  1 + static_cast<std::size_t>(la::rng::bounded(rng, 4));
              const std::size_t room = share - w.held.size();
              if (k > room) k = room;
              got.resize(k);
              std::size_t have = 0;
              la::sync::Backoff backoff;
              while (have < k) {
                const std::size_t granted =
                    la::api::get_batch(array, rng, got.data() + have,
                                       k - have);
                have += granted;
                if (have < k && granted == 0) backoff.pause();
              }
              for (std::size_t i = 0; i < k; ++i) {
                if (!w.model.insert(got[i].name).second) {
                  throw std::logic_error(
                      "worker granted a duplicate name (batch)");
                }
                w.held.push_back(got[i].name);
              }
            } else if (can_get) {
              const auto r = array.get(rng);
              if (!w.model.insert(r.name).second) {
                throw std::logic_error("worker granted a duplicate name");
              }
              w.held.push_back(r.name);
            }
          }
          barrier.wait();  // round closes; auditor runs collect()
          barrier.wait();  // audit done
        }
      } catch (const std::exception& e) {
        w.error = e.what();
        barrier.abort();
      }
    });

    TraceTail trace;
    for (std::uint32_t round = 0; round < rounds; ++round) {
      trace.note("round " + std::to_string(round));
      barrier.wait();  // round opens (abort poisons the wait)
      barrier.wait();  // workers quiesce
      if (barrier.aborted()) break;
      std::set<std::uint64_t> expected;
      bool disjoint = true;
      for (const auto& w : workers) {
        for (const auto name : w.model) {
          disjoint = expected.insert(name).second && disjoint;
        }
      }
      if (!disjoint) {
        fail(fuzz, trace, "two workers hold the same name");
        barrier.abort();
        break;
      }
      if (!audit_collect(array, expected)) {
        fail(fuzz, trace,
             "phased audit: collect() disagrees with the model union");
        barrier.abort();
        break;
      }
      barrier.wait();  // release workers into the next round
      if (barrier.aborted()) break;
    }
  }

  TraceTail trace;
  for (auto& w : workers) {
    if (!w.error.empty()) {
      fail(fuzz, trace, ("worker died: " + w.error).c_str());
    }
    for (const auto name : w.held) array.free(name);
    w.held.clear();
    w.model.clear();
  }
  std::set<std::uint64_t> empty;
  if (!audit_collect(array, empty)) {
    fail(fuzz, trace, "structure not empty after the phased drain");
  }
}

// Random churn with model tracking, shared by the snapshot cycle's
// prefix and suffix phases (a reduced op mix: single and batched
// Get/Free — the full mix with probes/double-free checks is
// fuzz_sequential's job).
template <typename Array>
void churn_with_model(Array& array, la::rng::MarsagliaXorshift& rng,
                      std::set<std::uint64_t>& model,
                      std::vector<std::uint64_t>& held, std::uint64_t steps,
                      std::uint64_t capacity, const FuzzCase& fuzz,
                      TraceTail& trace) {
  for (std::uint64_t step = 0; step < steps; ++step) {
    const bool can_get = model.size() < capacity;
    if (!held.empty() && (!can_get || la::rng::bounded(rng, 2) == 0)) {
      const std::uint64_t victim = la::rng::bounded(rng, held.size());
      const std::uint64_t name = held[victim];
      array.free(name);
      held[victim] = held.back();
      held.pop_back();
      model.erase(name);
    } else if (can_get) {
      std::size_t k = 1 + static_cast<std::size_t>(la::rng::bounded(rng, 4));
      const std::uint64_t room = capacity - model.size();
      if (k > room) k = static_cast<std::size_t>(room);
      std::vector<la::GetResult> got(k);
      std::size_t have = 0;
      la::sync::Backoff backoff;
      while (have < k) {
        const std::size_t granted =
            la::api::get_batch(array, rng, got.data() + have, k - have);
        have += granted;
        if (have < k && granted == 0) backoff.pause();
      }
      for (std::size_t i = 0; i < k; ++i) {
        if (!model.insert(got[i].name).second) {
          fail(fuzz, trace, "snapshot churn granted a duplicate name");
          return;
        }
        held.push_back(got[i].name);
      }
    }
  }
}

// The save -> restore -> replay cycle, for every structure with a
// snapshot surface: random prefix churn, api::save, restore into a
// re-drawn compatible configuration (shard count and capacity scaled by
// the same random factor, so per-shard capacity — and thus the stride —
// is preserved while the geometry changes), then suffix churn against
// the restored instance carrying the prefix's hold set, and a final
// drain audit. Names keep their identity across the cycle, so the same
// model set validates both sides of the boundary.
void run_snapshot_cycle(const FuzzCase& fuzz) {
  la::api::RenamerConfig config;
  config.capacity = fuzz.capacity;
  TraceTail trace;
  la::api::visit(fuzz.structure, config, [&](auto& source) {
    using Source = std::decay_t<decltype(source)>;
    if constexpr (la::api::has_snapshot_v<Source>) {
      la::rng::MarsagliaXorshift rng(la::rng::mix_seed(fuzz.seed, 0xC4C7));
      std::set<std::uint64_t> model;
      std::vector<std::uint64_t> held;
      trace.note("snapshot prefix churn");
      churn_with_model(source, rng, model, held, fuzz.steps / 2,
                       fuzz.capacity, fuzz, trace);

      trace.note("save");
      const la::ckpt::Image image = la::api::save(source, fuzz.structure);
      if (image.held.size() != model.size()) {
        fail(fuzz, trace, "image hold set disagrees with the model");
        return;
      }
      for (const auto name : image.held) {
        if (model.count(name) == 0) {
          fail(fuzz, trace, "image holds a name the model does not");
          return;
        }
      }

      // Re-draw the configuration: x1, x2, or x4 on shards and capacity.
      const std::uint64_t mult =
          std::uint64_t{1} << la::rng::bounded(rng, 3);
      la::api::RenamerConfig redrawn = config;
      redrawn.capacity = fuzz.capacity * mult;
      redrawn.shards = config.shards * static_cast<std::uint32_t>(mult);
      trace.note("restore (x" + std::to_string(mult) + ")");
      la::api::visit(fuzz.structure, redrawn, [&](auto& target) {
        using Target = std::decay_t<decltype(target)>;
        if constexpr (la::api::has_snapshot_v<Target>) {
          la::api::restore(target, image);
          if (!audit_collect(target, model)) {
            fail(fuzz, trace,
                 "restored structure disagrees with the model");
            return;
          }
          trace.note("snapshot suffix churn");
          churn_with_model(target, rng, model, held, fuzz.steps / 2,
                           redrawn.capacity, fuzz, trace);
          trace.note("drain");
          for (const auto name : held) {
            target.free(name);
            model.erase(name);
          }
          held.clear();
          if (!audit_collect(target, model)) {
            fail(fuzz, trace,
                 "structure not empty after the snapshot-cycle drain");
          }
        }
      });
    }
  });
}

void run_case(const FuzzCase& fuzz) {
  la::api::RenamerConfig config;
  config.capacity = fuzz.capacity;
  // A corrupt structure can also surface as a throw from its own
  // internal guards (e.g. an inner double-free during a cache drain);
  // report that with the repro line instead of std::terminate.
  TraceTail trace;
  try {
    la::api::visit(fuzz.structure, config, [&](auto& array) {
      fuzz_sequential(array, fuzz);
    });
    la::api::visit(fuzz.structure, config, [&](auto& array) {
      fuzz_phased(array, fuzz, /*threads=*/3, /*rounds=*/6,
                  /*ops_per_round=*/static_cast<std::uint32_t>(
                      fuzz.steps / 12 + 16));
    });
    run_snapshot_cycle(fuzz);
  } catch (const std::exception& e) {
    fail(fuzz, trace, ("unexpected exception: " + std::string(e.what()))
                          .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  const std::string only = opts.get_string("structure", "");
  const std::uint64_t seed_flag = opts.get_uint("seed", 0);
  const std::uint64_t steps = opts.get_uint("steps", 3000);
  const std::uint64_t capacity = opts.get_uint("capacity", 96);

  std::vector<std::string> structures;
  if (!only.empty()) {
    structures.push_back(api::resolve_structure(only));
  } else {
    structures = api::registered_names();
  }
  std::vector<std::uint64_t> seeds;
  if (seed_flag != 0) {
    seeds.push_back(seed_flag);
  } else {
    seeds = {20260727, 42, 7};
  }

  for (const auto& structure : structures) {
    for (const auto seed : seeds) {
      FuzzCase fuzz;
      fuzz.structure = structure;
      fuzz.seed = seed;
      fuzz.steps = steps;
      fuzz.capacity = capacity;
      const int before = failures;
      run_case(fuzz);
      if (failures == before) {
        std::printf("ok   %-18s seed=%llu steps=%llu\n", structure.c_str(),
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(steps));
      }
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d model fuzz run(s) failed\n", failures);
    return 1;
  }
  std::puts("test_model_fuzz: OK");
  return 0;
}
