// Registry-driven conformance test: every registered structure must honor
// the shared api::Renamer contract — distinct names while held (up to the
// contention bound), freed names reusable, collect() agreeing with the
// held set, out-of-range free throwing, and double-free failing loudly.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

template <typename Array>
void check_contract(Array& array, std::uint64_t capacity) {
  la::rng::MarsagliaXorshift rng(20260727);

  CHECK(array.capacity() >= capacity);
  CHECK(array.total_slots() >= capacity);

  // Distinct names while held, up to the contention bound.
  std::set<std::uint64_t> held;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    const auto r = array.get(rng);
    CHECK(r.probes >= 1);
    CHECK(r.name < array.total_slots());
    CHECK(held.insert(r.name).second);
  }
  CHECK(held.size() == capacity);

  // collect() sees exactly the held set.
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == capacity);
  CHECK(std::set<std::uint64_t>(collected.begin(), collected.end()) == held);

  // Free half; the freed names must become reusable (the next Gets
  // succeed and stay distinct from everything still held).
  std::vector<std::uint64_t> freed;
  for (auto it = held.begin();
       it != held.end() && freed.size() < capacity / 2;) {
    freed.push_back(*it);
    array.free(*it);
    it = held.erase(it);
  }
  for (std::size_t i = 0; i < freed.size(); ++i) {
    const auto r = array.get(rng);
    CHECK(held.insert(r.name).second);
  }
  CHECK(held.size() == capacity);
  collected.clear();
  CHECK(array.collect(collected) == capacity);

  // Out-of-range free throws std::out_of_range.
  bool threw_range = false;
  try {
    array.free(array.total_slots() + 17);
  } catch (const std::out_of_range&) {
    threw_range = true;
  }
  CHECK(threw_range);

  // Double-free fails loudly instead of corrupting occupancy.
  const std::uint64_t victim = *held.begin();
  held.erase(victim);
  array.free(victim);
  bool threw_double = false;
  try {
    array.free(victim);
  } catch (const std::logic_error&) {
    threw_double = true;
  }
  CHECK(threw_double);
  collected.clear();
  CHECK(array.collect(collected) == held.size());

  // Drain; the structure ends empty.
  for (const auto name : held) array.free(name);
  collected.clear();
  CHECK(array.collect(collected) == 0);
}

}  // namespace

int main() {
  using namespace la;

  const auto& infos = api::registered_structures();
  // The seven flat structures plus their seven sharded:* variants plus
  // the seven svc:sharded:* daemon-backed variants.
  CHECK(infos.size() == 21);

  for (const auto& info : infos) {
    current = std::string(info.name);
    api::RenamerConfig config;
    config.capacity = 48;  // keeps the splitter triangle small
    api::visit(current, config, [&](auto& array) {
      check_contract(array, config.capacity);
    });
    // Aliases resolve to the same canonical entry.
    for (const auto alias : info.aliases) {
      CHECK(api::resolve_structure(std::string(alias)) ==
            std::string(info.name));
    }
  }

  // SplitterRenamer edge cases: the Theta(n^2)-memory capacity cap must
  // refuse loudly through the registry path, and the recycling facade's
  // double-free / reserved-name-0 guards must fail before corrupting the
  // free list.
  {
    current = "splitter/capacity-refusal";
    api::RenamerConfig big;
    big.capacity = api::SplitterRenamer::kMaxCapacity + 1;
    bool refused = false;
    try {
      api::visit("splitter", big, [](auto& array) { (void)array; });
    } catch (const std::invalid_argument& e) {
      refused = true;
      CHECK(std::string(e.what()).find("capacity") != std::string::npos);
    }
    CHECK(refused);
  }
  {
    current = "splitter/double-free-edges";
    api::SplitterRenamer splitter(16);
    la::rng::MarsagliaXorshift rng(3);

    // Name 0 is reserved by the facade and can never be freed.
    bool threw_zero = false;
    try {
      splitter.free(0);
    } catch (const std::logic_error&) {
      threw_zero = true;
    }
    CHECK(threw_zero);

    // Double-freeing a recycled name fails both times it is not held —
    // including after the name has been through the Treiber free list.
    const auto first = splitter.get(rng);
    splitter.free(first.name);
    bool threw_double = false;
    try {
      splitter.free(first.name);
    } catch (const std::logic_error&) {
      threw_double = true;
    }
    CHECK(threw_double);

    // The recycled name comes back in O(1) and is then freeable again.
    const auto second = splitter.get(rng);
    CHECK(second.name == first.name);
    CHECK(second.probes == 1);
    splitter.free(second.name);
    bool threw_again = false;
    try {
      splitter.free(second.name);
    } catch (const std::logic_error&) {
      threw_again = true;
    }
    CHECK(threw_again);
  }

  // ShardedRenamer edge cases beyond the generic contract walk: the
  // shard math must route names back to the right shard, parked names
  // must stay double-free-safe, and collect() must drain the caches.
  {
    current = "sharded/name-routing";
    scale::ShardedConfig config;
    config.shards = 4;
    config.cache_capacity = 0;  // direct path: every name routes to inner
    scale::ShardedRenamer<core::LevelArray> array(
        config, [](std::uint32_t) {
          core::LevelArrayConfig inner;
          inner.capacity = 8;
          return std::make_unique<core::LevelArray>(inner);
        });
    CHECK(array.num_shards() == 4);
    CHECK(array.capacity() == 32);
    CHECK(array.total_slots() == 4 * array.shard_stride());
    la::rng::MarsagliaXorshift rng(11);
    std::vector<std::uint64_t> names;
    for (int i = 0; i < 32; ++i) names.push_back(array.get(rng).name);
    // Per-shard occupancy gates: exactly 8 names land in each stride
    // range, and every name frees back through the right shard.
    std::vector<std::uint64_t> per_shard(4, 0);
    for (const auto name : names) {
      CHECK(name < array.total_slots());
      ++per_shard[name / array.shard_stride()];
    }
    for (const auto count : per_shard) CHECK(count == 8);
    for (const auto name : names) array.free(name);
    std::vector<std::uint64_t> collected;
    CHECK(array.collect(collected) == 0);
  }
  {
    current = "sharded/parked-double-free";
    scale::ShardedConfig config;
    config.shards = 2;
    config.cache_capacity = 8;
    scale::ShardedRenamer<core::LevelArray> array(
        config, [](std::uint32_t) {
          core::LevelArrayConfig inner;
          inner.capacity = 8;
          return std::make_unique<core::LevelArray>(inner);
        });
    la::rng::MarsagliaXorshift rng(5);
    const auto r = array.get(rng);
    array.free(r.name);  // parks in this thread's cache
    bool threw_double = false;
    try {
      array.free(r.name);  // parked, not held — must still fail loudly
    } catch (const std::logic_error&) {
      threw_double = true;
    }
    CHECK(threw_double);
    // The parked name comes back as a cache hit...
    const auto again = array.get(rng);
    CHECK(again.name == r.name);
    CHECK(again.probes == 1);
    array.free(again.name);
    // ...and collect() drains the cache: the parked name is logically
    // free, so nothing is held and the shards get their slot back.
    std::vector<std::uint64_t> collected;
    CHECK(array.collect(collected) == 0);
    std::vector<std::uint64_t> inner_names;
    CHECK(array.shard(0).collect(inner_names) == 0);
    CHECK(array.shard(1).collect(inner_names) == 0);
    // Aliases: the '-' spelling resolves to the ':' canonical key.
    CHECK(api::resolve_structure("sharded-level") == "sharded:level");
  }

  // Unknown names throw and the message lists the registry.
  current = "(unknown)";
  bool threw = false;
  try {
    api::resolve_structure("no-such-structure");
  } catch (const std::invalid_argument& e) {
    threw = true;
    const std::string what = e.what();
    CHECK(what.find("level") != std::string::npos);
    CHECK(what.find("splitter") != std::string::npos);
  }
  CHECK(threw);

  if (failures != 0) {
    std::fprintf(stderr, "%d renamer contract check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_renamer_contract: OK");
  return 0;
}
