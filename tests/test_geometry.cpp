// Pins the batch geometry: slots sum to exactly L = 2n, batch 0 holds
// 3L/4, and the tail after each batch obeys the doubly-exponential law
// tail_{k+1} = tail_k^2 / L (exact on power-of-two L).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/renamer.hpp"
#include "core/geometry.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

void check_geometry(std::uint64_t n) {
  const std::uint64_t total = 2 * n;
  const la::core::Geometry geometry(total);

  CHECK(geometry.total_slots() == total);
  CHECK(geometry.num_batches() >= 1);
  CHECK(geometry.num_batches() <= 6);

  // Slots partition [0, L) exactly.
  std::uint64_t sum = 0;
  std::uint64_t expected_offset = 0;
  for (std::uint32_t k = 0; k < geometry.num_batches(); ++k) {
    const auto& batch = geometry.batch(k);
    CHECK(batch.offset() == expected_offset);
    CHECK(batch.size() >= 1);
    expected_offset = batch.end();
    sum += batch.size();
  }
  CHECK(sum == total);

  // Batch 0 holds 3L/4 (= 3n/2 slots for L = 2n).
  CHECK(geometry.batch(0).size() == total - total / 4);

  // Sizes strictly shrink across batches.
  for (std::uint32_t k = 0; k + 1 < geometry.num_batches(); ++k) {
    CHECK(geometry.batch(k + 1).size() < geometry.batch(k).size());
  }

  // Doubly-exponential decay: the tail after batch k squares away. For
  // power-of-two L the law tail_{k+1} = tail_k^2 / L is exact.
  if ((total & (total - 1)) == 0) {
    std::uint64_t tail = total / 4;
    for (std::uint32_t k = 0; k + 1 < geometry.num_batches(); ++k) {
      CHECK(total - geometry.batch(k).end() == tail);
      tail = tail * tail / total;
    }
  }

  // batch_of_slot agrees with the partition.
  for (std::uint32_t k = 0; k < geometry.num_batches(); ++k) {
    const auto& batch = geometry.batch(k);
    CHECK(geometry.batch_of_slot(batch.offset()) == k);
    CHECK(geometry.batch_of_slot(batch.end() - 1) == k);
  }
}

}  // namespace

int main() {
  for (const std::uint64_t n :
       {std::uint64_t{8}, std::uint64_t{32}, std::uint64_t{512},
        std::uint64_t{1024}, std::uint64_t{50000}, std::uint64_t{65536}}) {
    check_geometry(n);
  }

  // Known exact values for n = 1024 (L = 2048): 1536 + 384 + 120 + 8.
  {
    const la::core::Geometry geometry(2048);
    CHECK(geometry.num_batches() == 4);
    CHECK(geometry.batch(0).size() == 1536);
    CHECK(geometry.batch(1).size() == 384);
    CHECK(geometry.batch(2).size() == 120);
    CHECK(geometry.batch(3).size() == 8);
  }

  // LevelArray wires capacity through: L = 2n by default.
  {
    la::core::LevelArrayConfig config;
    config.capacity = 1000;
    const la::core::LevelArray array(config);
    CHECK(array.total_slots() == 2000);
    CHECK(array.geometry().num_batches() >= 2);
  }

  // Degenerate sizes must not crash.
  {
    const la::core::Geometry tiny(2);
    CHECK(tiny.num_batches() == 1);
    CHECK(tiny.batch(0).size() == 2);
  }

  // capacity = 1: the floor of two slots kicks in and the structure still
  // renames (Get/Free round-trips at the contention bound of one).
  {
    la::core::LevelArrayConfig config;
    config.capacity = 1;
    la::core::LevelArray array(config);
    CHECK(array.total_slots() == 2);
    CHECK(array.geometry().num_batches() == 1);
    la::rng::MarsagliaXorshift rng(7);
    const auto r = array.get(rng);
    CHECK(r.name < 2);
    array.free(r.name);
    const auto again = array.get(rng);
    CHECK(again.name < 2);
    array.free(again.name);
  }

  // size_multiplier just above 1.0: L rounds down to barely more than n,
  // yet all n names must still be grantable (the backup sweep guarantees
  // totality once the random probes run out of empty slots).
  {
    la::core::LevelArrayConfig config;
    config.capacity = 64;
    config.size_multiplier = 1.05;
    la::core::LevelArray array(config);
    CHECK(array.total_slots() == 67);
    la::rng::MarsagliaXorshift rng(11);
    std::vector<std::uint64_t> names;
    for (int i = 0; i < 64; ++i) names.push_back(array.get(rng).name);
    std::vector<std::uint64_t> collected;
    CHECK(array.collect(collected) == 64);
    for (const auto name : names) array.free(name);
    collected.clear();
    CHECK(array.collect(collected) == 0);
  }

  // probes_per_batch tails: probes_for(k) reads pv[min(k, pv.size()-1)],
  // so a vector longer than the batch count serves its raw tail entries
  // to out-of-range batch indices, a short vector repeats its last entry
  // for deeper batches, and zero entries are sanitized to one probe.
  {
    la::core::LevelArrayConfig config;
    config.capacity = 1024;  // L = 2048, 4 batches
    config.probes_per_batch = {4, 3, 2, 1, 9, 9, 9, 9, 9, 9, 9, 9};
    la::core::LevelArray long_tail(config);
    CHECK(long_tail.geometry().num_batches() == 4);
    CHECK(long_tail.probes_for(0) == 4);
    CHECK(long_tail.probes_for(3) == 1);
    CHECK(long_tail.probes_for(100) == 9);  // clamped to the last entry

    config.probes_per_batch = {2};
    la::core::LevelArray repeat_tail(config);
    CHECK(repeat_tail.probes_for(0) == 2);
    CHECK(repeat_tail.probes_for(3) == 2);

    config.probes_per_batch = {0, 0};
    la::core::LevelArray zero_tail(config);
    CHECK(zero_tail.probes_for(0) == 1);
    CHECK(zero_tail.probes_for(5) == 1);
  }

  // total_slots overflow guard: multiplier * capacity products beyond
  // 2^53 must throw before any cast or allocation happens, for both the
  // core config and the api config (which share core::scaled_slots).
  {
    bool threw = false;
    try {
      la::core::LevelArrayConfig config;
      config.capacity = std::uint64_t{1} << 40;
      config.size_multiplier = 1e9;
      la::core::LevelArray array(config);
    } catch (const std::overflow_error&) {
      threw = true;
    }
    CHECK(threw);

    threw = false;
    try {
      la::api::RenamerConfig config;
      config.capacity = std::uint64_t{1} << 40;
      config.size_factor = 1e9;
      (void)config.total_slots();
    } catch (const std::overflow_error&) {
      threw = true;
    }
    CHECK(threw);

    threw = false;
    try {
      la::api::RenamerConfig config;
      config.capacity = 1024;
      config.id_space_factor = -4.0;  // negative products are rejected too
      (void)config.id_space();
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    // Just inside the guard still works.
    CHECK(la::core::scaled_slots(2.0, 1024) == 2048);
    CHECK(la::core::scaled_slots(0.0, 1024) == 2);
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d geometry check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_geometry: OK");
  return 0;
}
