// Pins the batch geometry: slots sum to exactly L = 2n, batch 0 holds
// 3L/4, and the tail after each batch obeys the doubly-exponential law
// tail_{k+1} = tail_k^2 / L (exact on power-of-two L).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/geometry.hpp"
#include "core/level_array.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

void check_geometry(std::uint64_t n) {
  const std::uint64_t total = 2 * n;
  const la::core::Geometry geometry(total);

  CHECK(geometry.total_slots() == total);
  CHECK(geometry.num_batches() >= 1);
  CHECK(geometry.num_batches() <= 6);

  // Slots partition [0, L) exactly.
  std::uint64_t sum = 0;
  std::uint64_t expected_offset = 0;
  for (std::uint32_t k = 0; k < geometry.num_batches(); ++k) {
    const auto& batch = geometry.batch(k);
    CHECK(batch.offset() == expected_offset);
    CHECK(batch.size() >= 1);
    expected_offset = batch.end();
    sum += batch.size();
  }
  CHECK(sum == total);

  // Batch 0 holds 3L/4 (= 3n/2 slots for L = 2n).
  CHECK(geometry.batch(0).size() == total - total / 4);

  // Sizes strictly shrink across batches.
  for (std::uint32_t k = 0; k + 1 < geometry.num_batches(); ++k) {
    CHECK(geometry.batch(k + 1).size() < geometry.batch(k).size());
  }

  // Doubly-exponential decay: the tail after batch k squares away. For
  // power-of-two L the law tail_{k+1} = tail_k^2 / L is exact.
  if ((total & (total - 1)) == 0) {
    std::uint64_t tail = total / 4;
    for (std::uint32_t k = 0; k + 1 < geometry.num_batches(); ++k) {
      CHECK(total - geometry.batch(k).end() == tail);
      tail = tail * tail / total;
    }
  }

  // batch_of_slot agrees with the partition.
  for (std::uint32_t k = 0; k < geometry.num_batches(); ++k) {
    const auto& batch = geometry.batch(k);
    CHECK(geometry.batch_of_slot(batch.offset()) == k);
    CHECK(geometry.batch_of_slot(batch.end() - 1) == k);
  }
}

}  // namespace

int main() {
  for (const std::uint64_t n :
       {std::uint64_t{8}, std::uint64_t{32}, std::uint64_t{512},
        std::uint64_t{1024}, std::uint64_t{50000}, std::uint64_t{65536}}) {
    check_geometry(n);
  }

  // Known exact values for n = 1024 (L = 2048): 1536 + 384 + 120 + 8.
  {
    const la::core::Geometry geometry(2048);
    CHECK(geometry.num_batches() == 4);
    CHECK(geometry.batch(0).size() == 1536);
    CHECK(geometry.batch(1).size() == 384);
    CHECK(geometry.batch(2).size() == 120);
    CHECK(geometry.batch(3).size() == 8);
  }

  // LevelArray wires capacity through: L = 2n by default.
  {
    la::core::LevelArrayConfig config;
    config.capacity = 1000;
    const la::core::LevelArray array(config);
    CHECK(array.total_slots() == 2000);
    CHECK(array.geometry().num_batches() >= 2);
  }

  // Degenerate sizes must not crash.
  {
    const la::core::Geometry tiny(2);
    CHECK(tiny.num_batches() == 1);
    CHECK(tiny.batch(0).size() == 2);
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d geometry check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_geometry: OK");
  return 0;
}
