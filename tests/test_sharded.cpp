// Unit tests for the scale layer's own machinery — the pieces the
// generic harnesses (contract walk, stress matrix, model fuzz) exercise
// but never observe directly: cache hit accounting, bounded overflow
// flushes, drain-on-collect, the global-miss drain that reclaims parked
// capacity, thread-exit flushing with cache-slot recycling across thread
// generations, the uncached overflow mode past max_threads, and the
// name-routing edges (stride gaps, per-shard gates).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/renamer.hpp"
#include "arrays/random_array.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

using Sharded = la::scale::ShardedRenamer<la::core::LevelArray>;

Sharded make_sharded(la::scale::ShardedConfig config,
                     std::uint64_t shard_capacity) {
  return Sharded(config, [shard_capacity](std::uint32_t) {
    la::core::LevelArrayConfig inner;
    inner.capacity = shard_capacity;
    return std::make_unique<la::core::LevelArray>(inner);
  });
}

void check_cache_hits_and_flush() {
  current = "cache-hits-and-flush";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 4;
  config.cache_flush_batch = 2;
  Sharded array = make_sharded(config, 16);
  la::rng::MarsagliaXorshift rng(1);

  // Park more than the cache holds: the overflow flush must bound it.
  std::vector<std::uint64_t> names;
  for (int i = 0; i < 10; ++i) names.push_back(array.get(rng).name);
  for (const auto name : names) array.free(name);
  auto stats = array.stats();
  CHECK(stats.parked_frees == 10);
  CHECK(stats.shared_gets == 10);
  CHECK(stats.cache_hits == 0);

  // The next Gets pop parked names (most recent first), then fall back
  // to the shards for what was flushed.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) CHECK(seen.insert(array.get(rng).name).second);
  stats = array.stats();
  CHECK(stats.cache_hits >= 1);
  CHECK(stats.cache_hits <= 4);  // never more than the cache holds

  // LIFO: an immediate free + get round-trips the same name as a hit.
  const std::uint64_t name = *seen.begin();
  array.free(name);
  const auto r = array.get(rng);
  CHECK(r.name == name);
  CHECK(r.probes == 1);

  for (const auto held : seen) array.free(held);
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 0);
}

void check_drain_restores_shards() {
  current = "drain-restores-shards";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 8;
  Sharded array = make_sharded(config, 8);
  la::rng::MarsagliaXorshift rng(2);

  std::vector<std::uint64_t> names;
  for (int i = 0; i < 6; ++i) names.push_back(array.get(rng).name);
  for (const auto name : names) array.free(name);

  // Parked: the shards still see the slots as occupied.
  std::vector<std::uint64_t> inner_names;
  std::size_t inner_held = array.shard(0).collect(inner_names) +
                           array.shard(1).collect(inner_names);
  CHECK(inner_held == 6);

  array.drain_caches();
  inner_names.clear();
  inner_held = array.shard(0).collect(inner_names) +
               array.shard(1).collect(inner_names);
  CHECK(inner_held == 0);
  CHECK(array.stats().cache_drains >= 1);
}

void check_global_miss_reclaims_parked() {
  current = "global-miss-reclaim";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 8;
  config.cache_flush_batch = 8;
  Sharded array = make_sharded(config, 4);  // total capacity 8
  la::rng::MarsagliaXorshift rng(3);

  // Main holds shard 0's whole gate; a live worker saturates shard 1 and
  // parks everything in its own cache — the worker must stay alive, or
  // its exit hook would flush the cache and defuse the scenario.
  std::vector<std::uint64_t> held;
  for (int i = 0; i < 4; ++i) held.push_back(array.get(rng).name);
  std::atomic<int> phase{0};
  std::thread worker([&array, &phase] {
    la::rng::MarsagliaXorshift worker_rng(4);
    std::vector<std::uint64_t> names;
    for (int i = 0; i < 4; ++i) names.push_back(array.get(worker_rng).name);
    for (const auto name : names) array.free(name);  // all parked
    phase.store(1, std::memory_order_release);
    while (phase.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
  });
  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::yield();
  }

  // Main's cache is empty and both gates are saturated (holds + the
  // worker's parked slots). This Get must steal-drain the worker's bins
  // and then succeed — termination, not livelock.
  const auto r = array.get(rng);
  CHECK(r.name < array.total_slots());
  held.push_back(r.name);
  CHECK(array.stats().cache_drains >= 1);
  phase.store(2, std::memory_order_release);
  worker.join();
  for (const auto name : held) array.free(name);
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 0);
}

void check_thread_exit_flush_and_slot_reuse() {
  current = "thread-exit-flush";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 8;
  config.max_threads = 2;  // force slot recycling across generations
  Sharded array = make_sharded(config, 16);

  // Generations of short-lived threads: each parks names and exits; the
  // exit hook must flush them back (else later generations starve) and
  // recycle the cache slot (else generation 3+ runs uncached).
  for (int generation = 0; generation < 6; ++generation) {
    std::thread worker([&array] {
      la::rng::MarsagliaXorshift rng(7);
      std::vector<std::uint64_t> names;
      for (int i = 0; i < 6; ++i) names.push_back(array.get(rng).name);
      for (const auto name : names) array.free(name);
      // Exits with 6 names parked in its cache.
    });
    worker.join();
    // After the join, the exited thread's cache must be empty: the
    // shards hold nothing and a collect (which drains) finds nothing.
    std::vector<std::uint64_t> collected;
    CHECK(array.collect(collected) == 0);
    std::vector<std::uint64_t> inner_names;
    CHECK(array.shard(0).collect(inner_names) +
              array.shard(1).collect(inner_names) ==
          0);
  }
  // Every generation after the first must have re-used a recycled slot
  // and still parked (i.e. it did not fall into the uncached mode).
  CHECK(array.stats().parked_frees == 6 * 6);
}

void check_uncached_overflow_mode() {
  current = "uncached-overflow";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 4;
  config.max_threads = 1;  // the main thread claims the only slot
  Sharded array = make_sharded(config, 16);
  la::rng::MarsagliaXorshift rng(9);

  // Main thread claims the slot...
  const auto first = array.get(rng);
  // ...so a second thread runs uncached: its frees go straight to the
  // shards and its gets all come from the shards, yet stay correct.
  std::thread worker([&array] {
    la::rng::MarsagliaXorshift worker_rng(10);
    std::set<std::uint64_t> names;
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 8; ++i) {
        const auto r = array.get(worker_rng);
        if (!names.insert(r.name).second) {
          throw std::logic_error("uncached worker got a duplicate");
        }
      }
      for (const auto name : names) array.free(name);
      names.clear();
    }
  });
  worker.join();
  const auto stats = array.stats();
  CHECK(stats.direct_frees == 3 * 8);
  array.free(first.name);
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 0);
}

void check_routing_edges() {
  current = "routing-edges";
  la::scale::ShardedConfig config;
  config.shards = 3;
  config.cache_capacity = 0;  // exercise the cache-disabled mode too
  Sharded array = make_sharded(config, 5);
  la::rng::MarsagliaXorshift rng(11);

  CHECK(array.num_shards() == 3);
  CHECK(array.capacity() == 15);
  // Stride is the inner slot count (10) rounded up to a power of two.
  CHECK(array.shard_stride() == 16);
  CHECK(array.total_slots() == 48);

  // A name inside the stride gap (local 10..15 of shard 0) is out of
  // range even though it is below total_slots().
  bool threw = false;
  try {
    array.free(12);
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);

  // With caching off, a free+get pair round-trips through the shard.
  const auto r = array.get(rng);
  array.free(r.name);
  const auto stats = array.stats();
  CHECK(stats.parked_frees == 0);
  CHECK(stats.cache_hits == 0);
  CHECK(stats.direct_frees == 1);
  CHECK(stats.shared_gets == 1);

  // Zero shards is promoted to one, and the capacity survives.
  la::scale::ShardedConfig degenerate;
  degenerate.shards = 0;
  Sharded one = make_sharded(degenerate, 4);
  CHECK(one.num_shards() == 1);
  CHECK(one.capacity() == 4);
}

std::uint64_t gate_sum(const Sharded& array) {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < array.num_shards(); ++s) {
    total += array.gate_occupancy(s);
  }
  return total;
}

void check_batch_partial_refusal_and_refund() {
  current = "batch-partial-refusal";
  la::scale::ShardedConfig config;
  config.shards = 4;
  config.cache_capacity = 0;  // every exchange hits the gates directly
  Sharded array = make_sharded(config, 16);  // capacity 64
  la::rng::MarsagliaXorshift rng(21);

  // Ask for more than the whole structure holds: the grant must stop at
  // capacity exactly, and the refused remainder must be refunded at the
  // gates (not leak as phantom occupancy).
  std::vector<la::GetResult> got(80);
  const std::size_t granted = array.get_batch(rng, got.data(), 80);
  CHECK(granted == 64);
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < granted; ++i) {
    CHECK(seen.insert(got[i].name).second);
    CHECK(got[i].probes >= 1);
  }
  CHECK(gate_sum(array) == 64);

  // Saturated: a further batch must refuse outright (grant zero), again
  // without disturbing the gates.
  CHECK(array.get_batch(rng, got.data(), 8) == 0);
  CHECK(gate_sum(array) == 64);

  // Free everything in one batch; with the cache off the gates must
  // read exactly empty, and the full capacity must be re-claimable.
  std::vector<std::uint64_t> names(seen.begin(), seen.end());
  array.free_batch(names.data(), names.size());
  CHECK(gate_sum(array) == 0);
  CHECK(array.get_batch(rng, got.data(), 64) == 64);
  for (std::size_t i = 0; i < 64; ++i) names[i] = got[i].name;
  array.free_batch(names.data(), 64);
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 0);
}

void check_batch_gate_accounting_with_cache() {
  current = "batch-gate-accounting";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 8;
  config.cache_flush_batch = 8;
  Sharded array = make_sharded(config, 8);  // capacity 16
  la::rng::MarsagliaXorshift rng(22);

  std::vector<la::GetResult> got(16);
  CHECK(array.get_batch(rng, got.data(), 16) == 16);
  std::vector<std::uint64_t> names;
  for (const auto& r : got) names.push_back(r.name);

  // Free 10: the first 8 park in this thread's cache (still counted at
  // the gate — parked slots are occupied), the overflow 2 release
  // directly. Gate total must be holds (6) + parked (8).
  array.free_batch(names.data(), 10);
  CHECK(gate_sum(array) == 14);
  CHECK(array.stats().parked_frees == 8);
  CHECK(array.stats().direct_frees == 2);

  // Draining the parked names must hand their gate slots back exactly.
  array.drain_caches();
  CHECK(gate_sum(array) == 6);
  array.free_batch(names.data() + 10, 6);
  array.drain_caches();
  CHECK(gate_sum(array) == 0);
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 0);
}

void check_batch_error_contract() {
  current = "batch-error-contract";
  la::scale::ShardedConfig config;
  config.shards = 2;
  config.cache_capacity = 4;
  Sharded array = make_sharded(config, 8);
  la::rng::MarsagliaXorshift rng(23);

  std::vector<la::GetResult> got(3);
  CHECK(array.get_batch(rng, got.data(), 3) == 3);

  // A bad name mid-batch: names before it are freed, the throw surfaces,
  // names after it stay held.
  std::uint64_t bad_batch[3] = {got[0].name, array.total_slots() + 7,
                                got[1].name};
  bool threw = false;
  try {
    array.free_batch(bad_batch, 3);
  } catch (const std::out_of_range&) {
    threw = true;
  }
  CHECK(threw);
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 2);
  std::set<std::uint64_t> left(collected.begin(), collected.end());
  CHECK(left.count(got[1].name) == 1);
  CHECK(left.count(got[2].name) == 1);

  // A duplicate within one batch is a double free: the first occurrence
  // frees, the second throws.
  std::uint64_t dup_batch[2] = {got[1].name, got[1].name};
  threw = false;
  try {
    array.free_batch(dup_batch, 2);
  } catch (const std::logic_error&) {
    threw = true;
  }
  CHECK(threw);
  collected.clear();
  CHECK(array.collect(collected) == 1);
  CHECK(collected[0] == got[2].name);
  array.free(got[2].name);
  collected.clear();
  CHECK(array.collect(collected) == 0);
}

void check_batch_fallback_surface() {
  current = "batch-fallback";
  // A structure with no native batch ops rides the api loop: full grant,
  // unique names, frees restore emptiness.
  la::arrays::RandomArray array(32, 16);
  la::rng::MarsagliaXorshift rng(24);
  std::vector<la::GetResult> got(10);
  CHECK(la::api::get_batch(array, rng, got.data(), 10) == 10);
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> names;
  for (const auto& r : got) {
    CHECK(seen.insert(r.name).second);
    names.push_back(r.name);
  }
  la::api::free_batch(array, names.data(), names.size());
  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == 0);
}

}  // namespace

int main() {
  check_cache_hits_and_flush();
  check_drain_restores_shards();
  check_global_miss_reclaims_parked();
  check_thread_exit_flush_and_slot_reuse();
  check_uncached_overflow_mode();
  check_routing_edges();
  check_batch_partial_refusal_and_refund();
  check_batch_gate_accounting_with_cache();
  check_batch_error_contract();
  check_batch_fallback_surface();

  if (failures != 0) {
    std::fprintf(stderr, "%d sharded scale-layer check(s) failed\n",
                 failures);
    return 1;
  }
  std::puts("test_sharded: OK");
  return 0;
}
