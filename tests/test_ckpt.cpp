// Unit tests for the checkpoint/restore subsystem (src/ckpt/ +
// api::save/restore): the image wire format and its typed rejection of
// every corruption class, flat and sharded save/restore round-trips,
// the headline cross-configuration restore (sharded:level into
// sharded:linear with 2x shards — re-routed names, exactly reseeded
// gates, double-free still detected), the restore-adjacent
// seed_batch_occupancy edge (a full-capacity image must not overshoot
// the target's gates), the collect()/peek_held() split and its drain
// accounting, and the AnyRenamer replace cycle that migration rides on.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/snapshot.hpp"
#include "arrays/linear_probing_array.hpp"
#include "ckpt/any_renamer.hpp"
#include "ckpt/image.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

// True iff `fn` throws ckpt::ImageError (the typed rejection contract:
// corrupt or misfit images never surface as UB or a generic exception).
template <typename Fn>
bool throws_image_error(Fn&& fn) {
  try {
    fn();
  } catch (const la::ckpt::ImageError&) {
    return true;
  } catch (...) {
    return false;
  }
  return false;
}

using Level = la::core::LevelArray;
using Linear = la::arrays::LinearProbingArray;
using ShardedLevel = la::scale::ShardedRenamer<Level>;
using ShardedLinear = la::scale::ShardedRenamer<Linear>;

ShardedLevel make_sharded_level(std::uint32_t shards,
                                std::uint64_t shard_capacity) {
  la::scale::ShardedConfig config;
  config.shards = shards;
  return ShardedLevel(config, [shard_capacity](std::uint32_t) {
    la::core::LevelArrayConfig inner;
    inner.capacity = shard_capacity;
    return std::make_unique<Level>(inner);
  });
}

ShardedLinear make_sharded_linear(std::uint32_t shards,
                                  std::uint64_t inner_slots,
                                  std::uint64_t shard_capacity) {
  la::scale::ShardedConfig config;
  config.shards = shards;
  return ShardedLinear(config, [inner_slots, shard_capacity](std::uint32_t) {
    return std::make_unique<Linear>(inner_slots, shard_capacity);
  });
}

std::vector<std::uint64_t> sorted_collect(
    const std::vector<std::uint64_t>& raw) {
  std::vector<std::uint64_t> out = raw;
  std::sort(out.begin(), out.end());
  return out;
}

void check_image_roundtrip() {
  current = "image-roundtrip";
  la::ckpt::Image image;
  image.structure = "sharded:level";
  image.capacity = 16;
  image.total_slots = 64;
  image.shards = 2;
  image.shard_stride = 32;
  image.held = {0, 3, 31, 32, 63};

  const std::vector<std::uint8_t> bytes = image.encode();
  const la::ckpt::Image back = la::ckpt::Image::decode(bytes);
  CHECK(back.version == la::ckpt::kImageVersion);
  CHECK(back.structure == image.structure);
  CHECK(back.capacity == image.capacity);
  CHECK(back.total_slots == image.total_slots);
  CHECK(back.shards == image.shards);
  CHECK(back.shard_stride == image.shard_stride);
  CHECK(back.held == image.held);

  // Empty hold set and empty tag are valid images.
  la::ckpt::Image empty;
  empty.capacity = 1;
  empty.total_slots = 2;
  const la::ckpt::Image empty_back = la::ckpt::Image::decode(empty.encode());
  CHECK(empty_back.held.empty());
  CHECK(empty_back.structure.empty());
}

void check_image_rejects_corruption() {
  current = "image-rejects-corruption";
  la::ckpt::Image image;
  image.structure = "level";
  image.capacity = 8;
  image.total_slots = 16;
  image.held = {1, 5, 9};
  const std::vector<std::uint8_t> good = image.encode();
  CHECK(!throws_image_error([&] { (void)la::ckpt::Image::decode(good); }));

  // Truncation, at the header and mid-body.
  CHECK(throws_image_error(
      [&] { (void)la::ckpt::Image::decode(good.data(), 10); }));
  CHECK(throws_image_error(
      [&] { (void)la::ckpt::Image::decode(good.data(), good.size() - 3); }));

  // Bad magic.
  {
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(bad); }));
  }
  // Unsupported version (byte 8) — the CRC is recomputed so the version
  // check, not the checksum, must reject it.
  {
    la::ckpt::Image v2 = image;
    v2.version = 2;
    std::vector<std::uint8_t> bad = v2.encode();
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(bad); }));
  }
  // Flipped payload bit: caught by the CRC.
  {
    std::vector<std::uint8_t> bad = good;
    bad[good.size() - 8] ^= 0x01;
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(bad); }));
  }
  // Flipped CRC byte.
  {
    std::vector<std::uint8_t> bad = good;
    bad[good.size() - 1] ^= 0x01;
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(bad); }));
  }
  // Duplicate and unsorted held names (encode() writes whatever it is
  // given; decode() must reject both).
  {
    la::ckpt::Image dup = image;
    dup.held = {3, 3};
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(dup.encode()); }));
    dup.held = {5, 3};
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(dup.encode()); }));
  }
  // Held name outside the declared geometry, and more holds than the
  // declared capacity.
  {
    la::ckpt::Image oob = image;
    oob.held = {1, 16};
    CHECK(throws_image_error([&] { (void)la::ckpt::Image::decode(oob.encode()); }));
    la::ckpt::Image over = image;
    over.capacity = 2;
    over.held = {1, 2, 3};
    CHECK(throws_image_error(
        [&] { (void)la::ckpt::Image::decode(over.encode()); }));
  }
}

void check_save_restore_flat() {
  current = "save-restore-flat";
  la::core::LevelArrayConfig config;
  config.capacity = 16;
  Level source(config);
  la::rng::MarsagliaXorshift rng(7);
  std::set<std::uint64_t> held;
  for (int i = 0; i < 10; ++i) held.insert(source.get(rng).name);

  const la::ckpt::Image image = la::api::save(source, "level");
  CHECK(image.structure == "level");
  CHECK(image.capacity == source.capacity());
  CHECK(image.total_slots == source.total_slots());
  CHECK(image.shards == 0);
  CHECK(image.held.size() == held.size());
  for (const auto name : image.held) CHECK(held.count(name) == 1);

  // Wire round-trip, then restore into a fresh instance.
  Level target(config);
  la::api::restore(target, la::ckpt::Image::decode(image.encode()));
  std::vector<std::uint64_t> names;
  CHECK(target.collect(names) == held.size());
  for (const auto name : sorted_collect(names)) CHECK(held.count(name) == 1);

  // Adopted names behave like got names: free once fine, twice throws.
  const std::uint64_t name = *held.begin();
  target.free(name);
  bool threw = false;
  try {
    target.free(name);
  } catch (const std::logic_error&) {
    threw = true;
  }
  CHECK(threw);

  // Freed capacity is reusable after restore.
  CHECK(target.get(rng).name < target.total_slots());
}

void check_cross_restore_resharding() {
  current = "cross-restore-resharding";
  // Source: sharded:level, 2 shards x capacity 8. Target: sharded:linear,
  // 4 shards whose inner arrays are sized to the source stride, so every
  // name keeps its numeric identity and routes to a valid slot.
  ShardedLevel source = make_sharded_level(2, 8);
  la::rng::MarsagliaXorshift rng(11);
  std::set<std::uint64_t> held;
  for (int i = 0; i < 12; ++i) held.insert(source.get(rng).name);
  const std::uint64_t stride = source.shard_stride();

  const la::ckpt::Image image = la::api::save(source, "sharded:level");
  CHECK(image.shards == 2);
  CHECK(image.shard_stride == stride);
  CHECK(image.held.size() == held.size());

  ShardedLinear target = make_sharded_linear(4, stride, 8);
  CHECK(target.shard_stride() == stride);  // geometry-preserving target
  la::api::restore(target, image);

  // Every held name is held in the target — same numeric names.
  std::vector<std::uint64_t> names;
  CHECK(target.peek_held(names) == held.size());
  for (const auto name : sorted_collect(names)) CHECK(held.count(name) == 1);

  // Gates were reseeded exactly: each shard's reservation equals the
  // count of image names routing to it, and empty shards sit at zero.
  std::vector<std::uint64_t> per_shard(4, 0);
  for (const auto name : held) ++per_shard[name / stride];
  for (std::uint32_t s = 0; s < 4; ++s) {
    CHECK(target.gate_occupancy(s) == per_shard[s]);
  }

  // Double free of an adopted name is still detected through the
  // re-routed path.
  const std::uint64_t name = *held.begin();
  target.free(name);
  bool threw = false;
  try {
    target.free(name);
  } catch (const std::logic_error&) {
    threw = true;
  }
  CHECK(threw);

  // The freed name parks in the cache (its gate reservation is the
  // parked capacity); a draining collect returns it to its shard and
  // releases the gate slot.
  std::vector<std::uint64_t> after;
  CHECK(target.collect(after) == held.size() - 1);
  CHECK(target.gate_occupancy(static_cast<std::uint32_t>(name / stride)) ==
        per_shard[name / stride] - 1);
}

void check_capacity_one_and_empty() {
  current = "capacity-one-and-empty";
  la::core::LevelArrayConfig config;
  config.capacity = 1;
  Level source(config);
  la::rng::MarsagliaXorshift rng(3);
  const std::uint64_t name = source.get(rng).name;
  const la::ckpt::Image image = la::api::save(source, "level");
  CHECK(image.held.size() == 1);
  CHECK(image.held[0] == name);

  Level target(config);
  la::api::restore(target, image);
  target.free(name);
  std::vector<std::uint64_t> names;
  CHECK(target.collect(names) == 0);

  // Empty image into a fresh structure: a no-op restore, then normal ops.
  Level empty_source(config);
  const la::ckpt::Image empty = la::api::save(empty_source, "level");
  CHECK(empty.held.empty());
  Level empty_target(config);
  la::api::restore(empty_target, empty);
  CHECK(empty_target.get(rng).name < empty_target.total_slots());
}

void check_restore_rejects_misfits() {
  current = "restore-rejects-misfits";
  la::core::LevelArrayConfig big;
  big.capacity = 16;
  Level source(big);
  la::rng::MarsagliaXorshift rng(5);
  for (int i = 0; i < 12; ++i) (void)source.get(rng);
  const la::ckpt::Image image = la::api::save(source, "level");

  // Too many holds for the target's capacity.
  {
    la::core::LevelArrayConfig small;
    small.capacity = 4;
    Level target(small);
    CHECK(throws_image_error([&] { la::api::restore(target, image); }));
  }
  // A name that does not route to any target slot (flat bound).
  {
    la::ckpt::Image oob = image;
    oob.held.push_back(source.total_slots() + 100);
    oob.total_slots = source.total_slots() + 200;
    Level target(big);
    CHECK(throws_image_error([&] { la::api::restore(target, oob); }));
  }
  // Duplicate name handed straight to restore (bypassing decode).
  {
    la::ckpt::Image dup = image;
    if (dup.held.size() >= 2) dup.held[1] = dup.held[0];
    Level target(big);
    CHECK(throws_image_error([&] { la::api::restore(target, dup); }));
  }
  // Restore target must be empty.
  {
    Level target(big);
    (void)target.get(rng);
    CHECK(throws_image_error([&] { la::api::restore(target, image); }));
  }
  // Per-shard gate overflow: 16 low names all route to shard 0 of a
  // 2-shard target whose gate is 8 — adoption must stop at the gate and
  // surface as ImageError, not oversubscribe the shard.
  {
    Level full_source(big);
    const auto seeded = full_source.seed_batch_occupancy(0, 16);
    CHECK(seeded.size() == 16);
    const la::ckpt::Image low = la::api::save(full_source, "level");
    ShardedLinear target = make_sharded_linear(2, full_source.total_slots(), 8);
    CHECK(throws_image_error([&] { la::api::restore(target, low); }));
  }
}

void check_seed_batch_restore_gate_exactness() {
  current = "seed-batch-restore-gate";
  // The restore-adjacent seed_batch_occupancy edge: seed a source to its
  // full contention bound, restore the image into a sharded target whose
  // gates exactly fit, and verify the gates sit exactly at the bound —
  // no overshoot — so the next Get refuses instead of oversubscribing.
  ShardedLevel source = make_sharded_level(2, 4);
  la::rng::MarsagliaXorshift rng(13);
  std::vector<std::uint64_t> held;
  while (held.size() < source.capacity()) {
    la::GetResult got[4];
    const std::size_t granted = source.get_batch(rng, got, 4);
    for (std::size_t i = 0; i < granted; ++i) held.push_back(got[i].name);
    CHECK(granted != 0);
    if (granted == 0) break;
  }
  const std::uint64_t stride = source.shard_stride();
  const la::ckpt::Image image = la::api::save(source, "sharded:level");
  CHECK(image.held.size() == source.capacity());

  ShardedLinear target = make_sharded_linear(2, stride, 4);
  la::api::restore(target, image);
  CHECK(target.gate_occupancy(0) == 4);
  CHECK(target.gate_occupancy(1) == 4);

  // Saturated: a batch Get must grant nothing, and the refusal's exact
  // refund must leave the gates untouched.
  la::GetResult got[4];
  CHECK(target.get_batch(rng, got, 4) == 0);
  CHECK(target.gate_occupancy(0) == 4);
  CHECK(target.gate_occupancy(1) == 4);

  // One free reopens exactly one slot.
  target.free(image.held[0]);
  CHECK(target.get_batch(rng, got, 4) == 1);
  std::vector<std::uint64_t> names;
  CHECK(target.peek_held(names) == source.capacity());
}

void check_peek_held_vs_collect_drains() {
  current = "peek-held-vs-collect-drains";
  ShardedLevel array = make_sharded_level(2, 8);
  la::rng::MarsagliaXorshift rng(17);
  std::vector<std::uint64_t> names;
  for (int i = 0; i < 10; ++i) names.push_back(array.get(rng).name);
  // Park some frees in the per-thread cache: logically free, so neither
  // peek_held nor collect may report them.
  for (int i = 0; i < 4; ++i) {
    array.free(names.back());
    names.pop_back();
  }

  std::vector<std::uint64_t> peeked;
  CHECK(array.peek_held(peeked) == names.size());
  CHECK(sorted_collect(peeked) == sorted_collect(names));
  auto stats = array.stats();
  CHECK(stats.collect_drains == 0);  // peek_held never drains
  const std::uint64_t drains_before = stats.cache_drains;

  std::vector<std::uint64_t> collected;
  CHECK(array.collect(collected) == names.size());
  CHECK(sorted_collect(collected) == sorted_collect(names));
  stats = array.stats();
  CHECK(stats.collect_drains == 1);  // the forced exactness drain
  CHECK(stats.cache_drains == drains_before);  // counted separately

  for (const auto name : names) array.free(name);
  std::vector<std::uint64_t> empty;
  CHECK(array.collect(empty) == 0);
  CHECK(array.stats().collect_drains == 2);
}

void check_any_renamer_replace_cycle() {
  current = "any-renamer-replace-cycle";
  la::core::LevelArrayConfig config;
  config.capacity = 8;
  la::ckpt::AnyRenamer any(std::make_unique<Level>(config), "level");
  CHECK(any.tag() == "level");
  la::rng::MarsagliaXorshift rng(19);
  std::set<std::uint64_t> held;
  for (int i = 0; i < 6; ++i) held.insert(any.get(rng).name);

  // save/restore through the erased surface, into a differently shaped
  // impl (flat level -> 2-shard linear), then swap it in.
  const la::ckpt::Image image = la::api::save(any, any.tag());
  CHECK(image.held.size() == held.size());
  const std::uint64_t inner_slots = any.total_slots();
  {
    la::scale::ShardedConfig sharded;
    sharded.shards = 2;
    auto target = std::make_unique<ShardedLinear>(
        sharded, [inner_slots](std::uint32_t) {
          return std::make_unique<Linear>(inner_slots, 8);
        });
    la::api::restore(*target, image);
    any.replace(std::move(target), "sharded:linear");
  }
  CHECK(any.tag() == "sharded:linear");

  // The names survive the swap with their identity; frees land.
  std::vector<std::uint64_t> names;
  CHECK(any.collect(names) == held.size());
  for (const auto name : sorted_collect(names)) CHECK(held.count(name) == 1);
  for (const auto name : held) any.free(name);
  names.clear();
  CHECK(any.collect(names) == 0);
}

}  // namespace

int main() {
  check_image_roundtrip();
  check_image_rejects_corruption();
  check_save_restore_flat();
  check_cross_restore_resharding();
  check_capacity_one_and_empty();
  check_restore_rejects_misfits();
  check_seed_batch_restore_gate_exactness();
  check_peek_held_vs_collect_drains();
  check_any_renamer_replace_cycle();

  if (failures == 0) {
    std::printf("test_ckpt: OK\n");
    return 0;
  }
  std::printf("test_ckpt: %d check(s) FAILED\n", failures);
  return 1;
}
