// Bounded-wait Gets across the stack: api::get_for / get_batch_for must
// return a *timed-out refusal* — false / 0, counted in
// WaitStats::timeouts — when the structure sits at capacity past the
// absolute deadline, and must grant promptly once capacity exists.
// Checked at three layers:
//
//   * api dispatch: structures without the native surface fall back to
//     the untimed ops (and has_deadline_ops_v says so at compile time);
//   * scale::ShardedRenamer: a full structure refuses get_for and
//     get_batch_for at (not before) the deadline via the FIFO WaitQueue
//     park, and one Free is enough to turn the next timed Get around;
//   * svc::ServiceRenamer: the deadline travels the wire and the
//     *server's* pending-list expiry produces the refusal
//     (Status::kTimedOut -> false), visible in pending_expired.
//
// Plus a multi-thread oversubscribed churn whose termination proves
// liveness: every timed Get either grants or expires; nothing wedges.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/renamer.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "svc/service.hpp"
#include "sync/futex.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

using Sharded = la::scale::ShardedRenamer<la::core::LevelArray>;

std::uint64_t now_ns() { return la::sync::FutexWord::monotonic_now_ns(); }

Sharded make_sharded(std::uint64_t capacity, std::uint32_t shards) {
  la::scale::ShardedConfig cfg;
  cfg.shards = shards;
  la::core::LevelArrayConfig level;
  level.capacity = capacity / shards;
  return Sharded(cfg, [&level](std::uint32_t) {
    return std::make_unique<la::core::LevelArray>(level);
  });
}

// The deadline surface is native where it must be, absent where the
// untimed fallback is the only sound option.
static_assert(la::api::has_deadline_ops_v<Sharded>,
              "ShardedRenamer must expose native get_for/get_batch_for");
static_assert(!la::api::has_deadline_ops_v<la::core::LevelArray>,
              "LevelArray has no native deadline surface (fallback only)");
static_assert(la::api::has_deadline_ops_v<la::svc::ServiceRenamer<Sharded>>,
              "ServiceRenamer must forward the deadline surface");

// --- api fallback dispatch ----------------------------------------------

void test_api_fallback() {
  current = "api_fallback";
  la::core::LevelArrayConfig cfg;
  cfg.capacity = 32;
  la::core::LevelArray array(cfg);
  la::rng::MarsagliaXorshift rng(3);
  // Below capacity the fallback (plain get) must grant; the deadline is
  // advisory there by design.
  la::GetResult r;
  CHECK(la::api::get_for(array, rng, r, now_ns() + 1'000'000));
  CHECK(r.name < array.total_slots());
  la::GetResult batch[4];
  const std::size_t got =
      la::api::get_batch_for(array, rng, batch, 4, now_ns() + 1'000'000);
  CHECK(got >= 1);
  array.free(r.name);
  for (std::size_t i = 0; i < got; ++i) array.free(batch[i].name);
}

// --- ShardedRenamer: expiry at the deadline, grant after a Free ----------

void test_sharded_expiry() {
  current = "sharded_expiry";
  constexpr std::uint64_t kCapacity = 64;
  constexpr std::uint64_t kDeadlineNs = 40'000'000;  // 40ms
  Sharded structure = make_sharded(kCapacity, 4);
  la::rng::MarsagliaXorshift rng(7);

  // Exhaust the contention bound.
  std::vector<la::GetResult> held(kCapacity);
  std::size_t have = 0;
  while (have < kCapacity) {
    have += structure.get_batch(rng, held.data() + have, kCapacity - have);
  }
  CHECK(have == kCapacity);

  // Full structure: the timed Get must refuse at (not before) the
  // deadline, and count the timeout.
  {
    la::GetResult r;
    const std::uint64_t t0 = now_ns();
    CHECK(!structure.get_for(rng, r, t0 + kDeadlineNs));
    const std::uint64_t elapsed = now_ns() - t0;
    CHECK(elapsed >= kDeadlineNs - 2'000'000);
    CHECK(elapsed < 5'000'000'000ull);
    CHECK(structure.wait_stats().timeouts >= 1);
  }
  {
    la::GetResult batch[8];
    const std::uint64_t t0 = now_ns();
    CHECK(structure.get_batch_for(rng, batch, 8, t0 + kDeadlineNs) == 0);
    CHECK(now_ns() - t0 >= kDeadlineNs - 2'000'000);
    CHECK(structure.wait_stats().timeouts >= 2);
  }

  // One Free is enough: the next timed Get grants well within a generous
  // deadline instead of expiring.
  structure.free(held.back().name);
  held.pop_back();
  la::GetResult r;
  CHECK(structure.get_for(rng, r, now_ns() + 2'000'000'000ull));
  held.push_back(r);

  for (const auto& h : held) structure.free(h.name);
  std::vector<std::uint64_t> leftovers;
  CHECK(structure.collect(leftovers) == 0);
}

// --- oversubscribed churn liveness ---------------------------------------

void test_oversub_liveness() {
  current = "oversub_liveness";
  constexpr std::uint64_t kCapacity = 64;
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kTarget = 24;  // 4 * 24 = 96 > 64: oversubscribed
  constexpr std::uint64_t kIters = 1500;
  Sharded structure = make_sharded(kCapacity, 4);
  std::atomic<std::uint64_t> timeouts{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      la::rng::MarsagliaXorshift rng(100 + t);
      std::vector<std::uint64_t> held;
      held.reserve(kTarget);
      std::uint64_t local_timeouts = 0;
      for (std::uint64_t i = 0; i < kIters; ++i) {
        if (!held.empty() &&
            (held.size() >= kTarget || la::rng::bounded(rng, 4) == 0)) {
          const std::uint64_t victim = la::rng::bounded(rng, held.size());
          structure.free(held[victim]);
          held[victim] = held.back();
          held.pop_back();
          continue;
        }
        la::GetResult r;
        if (structure.get_for(rng, r, now_ns() + 2'000'000)) {
          held.push_back(r.name);
        } else {
          ++local_timeouts;
        }
      }
      for (const auto name : held) structure.free(name);
      timeouts.fetch_add(local_timeouts, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  // Termination is the liveness assertion; quiescence closes the books.
  std::vector<std::uint64_t> leftovers;
  CHECK(structure.collect(leftovers) == 0);
  // The structure's own count covers at least what the callers saw.
  CHECK(structure.wait_stats().timeouts >=
        timeouts.load(std::memory_order_relaxed));
}

// --- svc: the deadline travels the wire, the server enforces it ----------

void test_svc_expiry() {
  current = "svc_expiry";
  constexpr std::uint64_t kCapacity = 64;
  constexpr std::uint64_t kDeadlineNs = 80'000'000;  // 80ms
  la::svc::ServiceConfig cfg;
  cfg.segment.max_clients = 4;
  la::svc::ServiceRenamer<Sharded> svc(cfg, [] {
    la::scale::ShardedConfig scfg;
    scfg.shards = 4;
    la::core::LevelArrayConfig level;
    level.capacity = kCapacity / scfg.shards;
    return std::make_unique<Sharded>(scfg, [&level](std::uint32_t) {
      return std::make_unique<la::core::LevelArray>(level);
    });
  });
  la::rng::MarsagliaXorshift rng(11);
  CHECK(svc.capacity() == kCapacity);

  std::vector<la::GetResult> held(kCapacity);
  std::size_t have = 0;
  while (have < kCapacity) {
    have += svc.get_batch(rng, held.data() + have, kCapacity - have);
  }
  CHECK(have == kCapacity);

  // Exhausted: the request parks on the *server's* pending list and is
  // answered kTimedOut at the deadline — not at the next 50ms heartbeat
  // only, and never granted.
  {
    la::GetResult r;
    const std::uint64_t t0 = now_ns();
    CHECK(!svc.get_for(rng, r, t0 + kDeadlineNs));
    const std::uint64_t elapsed = now_ns() - t0;
    CHECK(elapsed >= kDeadlineNs - 2'000'000);
    CHECK(elapsed < 5'000'000'000ull);
  }
  {
    la::GetResult batch[8];
    CHECK(svc.get_batch_for(rng, batch, 8, now_ns() + 30'000'000) == 0);
  }
  CHECK(svc.wait_stats().timeouts >= 2);
  CHECK(svc.server_stats().pending_expired >= 2);

  // Capacity back: the timed path grants again.
  svc.free(held.back().name);
  held.pop_back();
  la::GetResult r;
  CHECK(svc.get_for(rng, r, now_ns() + 2'000'000'000ull));
  held.push_back(r);

  for (const auto& h : held) svc.free(h.name);
  std::vector<std::uint64_t> leftovers;
  CHECK(svc.collect(leftovers) == 0);
}

}  // namespace

int main() {
  test_api_fallback();
  test_sharded_expiry();
  test_oversub_liveness();
  test_svc_expiry();
  if (failures == 0) {
    std::printf("test_deadlines: all checks passed\n");
    return 0;
  }
  std::printf("test_deadlines: %d check(s) FAILED\n", failures);
  return 1;
}
