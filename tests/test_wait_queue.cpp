// WaitQueue fairness + timed-park robustness:
//
//   * FIFO grant order — waiters enqueued in a known order (each thread
//     holds the baton until its prepare_wait is in the queue) must be
//     granted strictly oldest-first by wake_one(); the returned tickets
//     prove it, since sequential enqueue makes ticket order == queue
//     order. This is the bounded-starvation claim in miniature: the
//     oldest waiter is never overtaken.
//   * Handoff re-entry — prepare_wait(w, front=true) puts a woken-but-
//     refused waiter back at the *head*, so wake_one() grants it before
//     older-looking tickets behind it.
//   * Grant conservation — a grant consumed by cancel_wait is re-donated
//     to the next queued waiter instead of evaporating.
//   * Timed expiry — commit_wait with an absolute deadline returns
//     kTimedOut close to the deadline and fully unlinks the waiter.
//   * Signal bombardment — a timed FutexWord park under a SIGUSR1 storm
//     (handler installed *without* SA_RESTART, so every delivery EINTRs
//     the futex syscall) must still expire at its absolute deadline:
//     neither early (EINTR surfacing as a timeout) nor late (a relative
//     timeout restarting from scratch per delivery never expires under a
//     10ms-interval storm). This is the regression test for the
//     commit_wait_for deadline-drift fix.
//   * Oversubscribed churn — threads park/re-park past 32 tickets so the
//     ticket%32 wake-bit channel wraps and collides; collisions may cost
//     spurious wakes but never a lost grant, proven by termination.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

#include "sync/futex.hpp"
#include "sync/wait_queue.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

std::uint64_t now_ns() { return la::sync::FutexWord::monotonic_now_ns(); }

// --- FIFO grant order ----------------------------------------------------

void test_fifo_order() {
  current = "fifo_order";
  constexpr std::uint32_t kThreads = 8;
  la::sync::WaitQueue q;

  // The baton serializes the *enqueues* (thread i's prepare_wait is in
  // the queue before thread i+1 starts), so queue position order equals
  // ticket order and wake_one()'s returned tickets must come back
  // strictly ascending.
  std::atomic<std::uint32_t> baton{0};
  std::atomic<std::uint32_t> done{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      while (baton.load(std::memory_order_acquire) != i) {
        std::this_thread::yield();
      }
      la::sync::WaitQueue::Waiter w;
      q.prepare_wait(w);
      baton.store(i + 1, std::memory_order_release);
      CHECK(q.commit_wait(w) == la::sync::WaitResult::kWoken);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (baton.load(std::memory_order_acquire) != kThreads) {
    std::this_thread::yield();
  }
  CHECK(q.waiters() == kThreads);

  std::uint64_t last = 0;
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    const std::uint64_t granted = q.wake_one();
    CHECK(granted != 0);
    CHECK(granted > last);  // strictly ascending = oldest-first
    last = granted;
  }
  for (auto& t : threads) t.join();
  CHECK(done.load(std::memory_order_acquire) == kThreads);
  CHECK(q.waiters() == 0);
  CHECK(q.wake_one() == 0);  // empty queue: the no-waiter fast path
}

// --- handoff (front re-entry) and grant conservation ---------------------

void test_handoff_and_cancel() {
  current = "handoff_cancel";
  la::sync::WaitQueue q;

  // front=true jumps the queue: b is granted before a despite b's later
  // (larger) ticket.
  {
    la::sync::WaitQueue::Waiter a;
    la::sync::WaitQueue::Waiter b;
    q.prepare_wait(a);
    q.prepare_wait(b, /*front=*/true);
    CHECK(b.ticket() > a.ticket());
    CHECK(q.wake_one() == b.ticket());
    CHECK(q.wake_one() == a.ticket());
    // Already granted: commit_wait returns immediately, no park.
    CHECK(q.commit_wait(a) == la::sync::WaitResult::kWoken);
    CHECK(q.commit_wait(b) == la::sync::WaitResult::kWoken);
    CHECK(q.waiters() == 0);
  }

  // cancel_wait before any grant: the queue forgets the waiter entirely.
  {
    la::sync::WaitQueue::Waiter w;
    q.prepare_wait(w);
    q.cancel_wait(w);
    CHECK(q.waiters() == 0);
    CHECK(q.wake_one() == 0);
  }

  // cancel_wait *after* a grant re-donates it: b still gets woken even
  // though the wake_one() grant landed on a first.
  {
    la::sync::WaitQueue::Waiter a;
    la::sync::WaitQueue::Waiter b;
    q.prepare_wait(a);
    q.prepare_wait(b);
    CHECK(q.wake_one() == a.ticket());
    q.cancel_wait(a);  // a no longer wants it -> re-donated to b
    CHECK(q.commit_wait(b) == la::sync::WaitResult::kWoken);
    CHECK(q.waiters() == 0);
  }
}

// --- timed expiry --------------------------------------------------------

void test_timed_expiry() {
  current = "timed_expiry";
  la::sync::WaitQueue q;
  la::sync::WaitQueue::Waiter w;
  constexpr std::uint64_t kDeadlineNs = 50'000'000;  // 50ms
  q.prepare_wait(w);
  const std::uint64_t t0 = now_ns();
  const auto r = q.commit_wait(w, t0 + kDeadlineNs);
  const std::uint64_t elapsed = now_ns() - t0;
  CHECK(r == la::sync::WaitResult::kTimedOut);
  // Not early (the absolute deadline is a floor) and not wildly late
  // (generous ceiling for loaded CI machines).
  CHECK(elapsed >= kDeadlineNs - 2'000'000);
  CHECK(elapsed < 5'000'000'000ull);
  // The timeout unlinked the waiter: nothing left to grant.
  CHECK(q.waiters() == 0);
  CHECK(q.wake_one() == 0);
}

// --- SIGUSR1 bombardment of a timed futex park ---------------------------

std::atomic<std::uint64_t> g_signals{0};
extern "C" void on_sigusr1(int) {
  g_signals.fetch_add(1, std::memory_order_relaxed);
}

void test_signal_bombardment() {
  current = "signal_bombardment";
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa = {};
  sa.sa_handler = on_sigusr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: every delivery EINTRs
  struct sigaction old = {};
  CHECK(::sigaction(SIGUSR1, &sa, &old) == 0);

  constexpr std::uint64_t kParkNs = 250'000'000;  // 250ms
  la::sync::FutexWord word;
  std::atomic<bool> parked{false};
  std::atomic<bool> finished{false};
  la::sync::WaitResult result = la::sync::WaitResult::kWoken;
  std::uint64_t elapsed = 0;

  std::thread waiter([&] {
    const std::uint32_t seen = word.prepare_wait();
    const std::uint64_t t0 = now_ns();
    parked.store(true, std::memory_order_release);
    result = word.commit_wait_for(seen, kParkNs);
    elapsed = now_ns() - t0;
    finished.store(true, std::memory_order_release);
  });

  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
  // Storm the parked thread for up to ~1s; stop as soon as it returns.
  const std::uint64_t storm_until = now_ns() + 1'000'000'000ull;
  while (!finished.load(std::memory_order_acquire) &&
         now_ns() < storm_until) {
#if defined(__unix__) || defined(__APPLE__)
    ::pthread_kill(waiter.native_handle(), SIGUSR1);
#endif
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  waiter.join();
  CHECK(::sigaction(SIGUSR1, &old, nullptr) == 0);

  // Nobody signalled the word: the park must end in a timeout...
  CHECK(result == la::sync::WaitResult::kTimedOut);
  // ...at the absolute deadline: not cut short by an EINTR (early), and
  // not restarted per delivery (a relative-timeout loop under a 5ms
  // storm would ride well past the storm window).
  CHECK(elapsed >= kParkNs - 2'000'000);
  CHECK(elapsed < 800'000'000ull);
  // The storm actually interrupted the wait (sanity: the scenario ran).
  CHECK(g_signals.load(std::memory_order_relaxed) >= 3);
#endif
}

// --- oversubscribed churn past the 32-bit wake-bit wrap ------------------

void test_oversub_churn() {
  current = "oversub_churn";
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint32_t kParksPerThread = 12;  // 72 tickets: bits wrap
  la::sync::WaitQueue q;
  std::atomic<std::uint32_t> remaining{kThreads * kParksPerThread};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (std::uint32_t round = 0; round < kParksPerThread; ++round) {
        la::sync::WaitQueue::Waiter w;
        q.prepare_wait(w, /*front=*/(round & 1) != 0);  // mix both paths
        CHECK(q.commit_wait(w) == la::sync::WaitResult::kWoken);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  // Grant one at a time until everyone has been through the queue the
  // full count. Liveness here *is* the assertion: a lost grant (bit
  // collision, handoff bug) would hang the loop, and the test's ctest
  // timeout turns that into a failure.
  while (remaining.load(std::memory_order_acquire) != 0) {
    if (q.wake_one() == 0) std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  CHECK(q.waiters() == 0);
  CHECK(q.tickets_issued() >= kThreads * kParksPerThread);
}

}  // namespace

int main() {
  test_fifo_order();
  test_handoff_and_cancel();
  test_timed_expiry();
  test_signal_bombardment();
  test_oversub_churn();
  if (failures == 0) {
    std::printf("test_wait_queue: all checks passed\n");
    return 0;
  }
  std::printf("test_wait_queue: %d check(s) FAILED\n", failures);
  return 1;
}
