// CI-sized stress matrix: every registered structure through every
// scenario with real threads, invariants checked on the merged event
// logs. Parameters are deliberately small (the suite also runs under
// ThreadSanitizer in CI, on few cores) — the full-size knobs live in the
// stress_runner CLI.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "stress/driver.hpp"

namespace {

int failures = 0;

void expect_ok(const la::stress::StressReport& report,
               const std::string& where) {
  if (!report.ok()) {
    ++failures;
    std::fprintf(stderr, "FAIL [%s]\n", where.c_str());
    for (const auto& violation : report.invariants.violations) {
      std::fprintf(stderr, "  violation: %s\n", violation.c_str());
    }
    if (report.balance_checked && !report.balanced) {
      std::fprintf(stderr, "  unbalanced: deep-batch fill %.3f\n",
                   report.heal_max_deep_fill);
    }
    return;
  }
  if (report.invariants.gets == 0) {
    ++failures;
    std::fprintf(stderr, "FAIL [%s] run performed no Gets\n", where.c_str());
  }
  std::printf("ok   %-28s events=%llu peak=%llu worst=%llu%s\n", where.c_str(),
              static_cast<unsigned long long>(report.invariants.events),
              static_cast<unsigned long long>(report.invariants.peak_concurrent),
              static_cast<unsigned long long>(report.trials.worst_case()),
              report.balance_checked ? " (balance checked)" : "");
}

// The checker must actually reject bad traces — a checker that passes
// everything would certify broken structures. Feed it synthetic
// violations of each invariant.
void check_rejects_bad_traces() {
  using la::stress::CheckConfig;
  using la::stress::Event;
  using la::stress::Op;

  CheckConfig config;
  config.total_slots = 8;
  config.max_concurrent = 2;
  config.reaper_thread = 9;

  const auto expect_violations = [&](std::vector<Event> trace,
                                     std::size_t count, const char* what) {
    const auto report = la::stress::check_trace(trace, config);
    if (report.violations.size() != count) {
      ++failures;
      std::fprintf(stderr, "FAIL checker[%s]: %zu violation(s), want %zu\n",
                   what, report.violations.size(), count);
      for (const auto& violation : report.violations) {
        std::fprintf(stderr, "  got: %s\n", violation.c_str());
      }
    }
  };

  // Clean trace: get/free by the same thread, reaper frees a leftover.
  expect_violations({{0, 3, 0, Op::kGet},
                     {1, 3, 0, Op::kFree},
                     {2, 5, 1, Op::kGet},
                     {3, 5, 9, Op::kFree}},
                    0, "clean");
  // Duplicate grant: name 3 handed to thread 1 while thread 0 holds it.
  expect_violations({{0, 3, 0, Op::kGet},
                     {1, 3, 1, Op::kGet},
                     {2, 3, 0, Op::kFree}},
                    1, "duplicate-grant");
  // Free of a name nobody holds (lost release / double free).
  expect_violations({{0, 3, 0, Op::kGet},
                     {1, 3, 0, Op::kFree},
                     {2, 3, 0, Op::kFree}},
                    1, "free-unheld");
  // Name outside [0, total_slots).
  expect_violations({{0, 8, 0, Op::kGet}, {1, 8, 0, Op::kFree}},
                    2, "out-of-range");
  // A worker freeing another worker's name (only the reaper may).
  expect_violations({{0, 3, 0, Op::kGet}, {1, 3, 1, Op::kFree}},
                    1, "wrong-thread-free");
  // Concurrency above the scenario bound.
  expect_violations({{0, 1, 0, Op::kGet},
                     {1, 2, 0, Op::kGet},
                     {2, 3, 0, Op::kGet},
                     {3, 1, 9, Op::kFree},
                     {4, 2, 9, Op::kFree},
                     {5, 3, 9, Op::kFree}},
                    1, "over-bound");
  // Leaked name at quiescence.
  expect_violations({{0, 3, 0, Op::kGet}}, 1, "leak");
  // Duplicate epochs mean the log itself is corrupt. (Two Gets of
  // distinct names, so the verdict is the same whichever way the
  // unstable sort orders the tie: one duplicate-epoch violation plus one
  // leak violation.)
  expect_violations({{7, 3, 0, Op::kGet}, {7, 4, 0, Op::kGet}},
                    2, "duplicate-epoch");
}

}  // namespace

int main() {
  using namespace la;

  check_rejects_bad_traces();

  // The full matrix at CI size: 4 threads on possibly 1-2 cores.
  for (const auto& info : api::registered_structures()) {
    for (const auto scenario : stress::all_scenarios()) {
      stress::StressConfig cfg;
      cfg.structure = std::string(info.name);
      cfg.scenario = scenario;
      cfg.threads = 4;
      cfg.ops_per_thread = 1500;
      cfg.capacity = 128;
      cfg.seed = 20260727;
      expect_ok(stress::run_stress(cfg),
                cfg.structure + "/" +
                    std::string(stress::scenario_name(scenario)));
    }
  }

  // The acceptance bar: >= 8 real threads against the paper's structure
  // and the fastest comparison structure, steady and burst.
  for (const std::string structure : {"level", "random"}) {
    for (const auto scenario :
         {stress::Scenario::kSteady, stress::Scenario::kBurst}) {
      stress::StressConfig cfg;
      cfg.structure = structure;
      cfg.scenario = scenario;
      cfg.threads = 8;
      cfg.ops_per_thread = 1000;
      cfg.capacity = 256;
      cfg.seed = 99;
      expect_ok(stress::run_stress(cfg),
                structure + "/" +
                    std::string(stress::scenario_name(scenario)) + "@8t");
    }
  }

  // A timed-mode cell, so both budget paths stay covered.
  {
    stress::StressConfig cfg;
    cfg.structure = "level";
    cfg.scenario = stress::Scenario::kSteady;
    cfg.threads = 4;
    cfg.ops_per_thread = 0;
    cfg.seconds = 0.05;
    cfg.capacity = 128;
    expect_ok(stress::run_stress(cfg), "level/steady(timed)");
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d stress matrix cell(s) failed\n", failures);
    return 1;
  }
  std::puts("test_stress_matrix: OK");
  return 0;
}
