// Schedule replay: a committed sim::Schedule is the oblivious adversary's
// move, fixed before any coin flips — so driving the identical Schedule
// through two different structures must produce the identical sequence of
// executed (process, op) activations, and re-running it against a fresh
// instance of the same structure must reproduce everything, probes
// included. This pins down the property the paper's adversary model
// needs: the activation order cannot leak information about the
// structure's random choices back into the schedule.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "arrays/random_array.hpp"
#include "arrays/sequential_scan_array.hpp"
#include "core/level_array.hpp"
#include "sim/executor.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

constexpr std::uint32_t kProcesses = 16;
constexpr std::uint64_t kSeed = 20260727;

std::vector<la::sim::ProcessInput> inputs() {
  std::vector<la::sim::ProcessInput> in;
  for (std::uint32_t p = 0; p < kProcesses; ++p) {
    in.push_back(la::sim::ProcessInput::churn(4, 3));
  }
  return in;
}

struct Replay {
  std::vector<la::sim::StepRecord> trace;
  std::uint64_t completed_gets = 0;
  // The full probe-count histogram, not just the Get count — equality
  // here pins the probe streams themselves, not merely how many Gets ran.
  std::vector<std::uint64_t> probe_histogram;
};

template <typename Structure>
Replay run(Structure& structure, const la::sim::Schedule& schedule) {
  Replay result;
  la::sim::BasicExecutor<Structure> executor(structure, kSeed, inputs(),
                                             schedule);
  executor.set_step_recorder(&result.trace);
  executor.run();
  result.completed_gets = executor.completed_gets();
  result.probe_histogram = executor.get_stats().histogram();
  return result;
}

}  // namespace

int main() {
  using namespace la;

  // One committed adversary move, replayed everywhere below. Skewed is
  // the nastiest schedule shape (a few processes hog the order).
  const auto schedule =
      sim::Schedule::skewed(kProcesses, 4000, 1.2, kSeed);

  core::LevelArrayConfig config;
  config.capacity = kProcesses * 3;
  core::LevelArray level_a(config);
  core::LevelArray level_b(config);
  arrays::RandomArray random(2 * kProcesses * 3, kProcesses * 3);
  arrays::SequentialScanArray seq(2 * kProcesses * 3, kProcesses * 3);

  const auto on_level_a = run(level_a, schedule);
  const auto on_level_b = run(level_b, schedule);
  const auto on_random = run(random, schedule);
  const auto on_seq = run(seq, schedule);

  CHECK(!on_level_a.trace.empty());

  // Same structure, fresh instance: bit-identical replay, probes and all.
  CHECK(on_level_a.trace == on_level_b.trace);
  CHECK(on_level_a.completed_gets == on_level_b.completed_gets);
  CHECK(on_level_a.probe_histogram == on_level_b.probe_histogram);

  // Different structures: the executed activation order is structure-
  // independent — only the probe counts (the structures' own work) may
  // differ.
  CHECK(on_level_a.trace == on_random.trace);
  CHECK(on_level_a.trace == on_seq.trace);
  CHECK(on_level_a.completed_gets == on_random.completed_gets);
  CHECK(on_level_a.completed_gets == on_seq.completed_gets);

  // A copied Schedule is the same committed move.
  const sim::Schedule copy = schedule;
  CHECK(copy.order() == schedule.order());
  core::LevelArray level_c(config);
  const auto on_copy = run(level_c, copy);
  CHECK(on_copy.trace == on_level_a.trace);

  // Different schedule shapes genuinely differ (the recorder is not
  // insensitive to its input).
  const auto robin = sim::Schedule::round_robin(kProcesses, 4000);
  core::LevelArray level_d(config);
  const auto on_robin = run(level_d, robin);
  CHECK(on_robin.trace != on_level_a.trace);

  if (failures != 0) {
    std::fprintf(stderr, "%d schedule replay check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_schedule_replay: OK");
  return 0;
}
