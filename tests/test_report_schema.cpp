// Golden test for the levelarray-bench-v1 report writer: builds a
// BenchReport from fixed inputs, round-trips the rendered document
// through a minimal recursive-descent JSON parser, and asserts the
// schema contract (required keys, nonzero ops/s, escaping, null for
// non-finite doubles) — so a schema break fails in ctest, not only in
// the python bench-smoke tier. Also byte-compares the rendered document
// against a committed golden (with the volatile git field spliced), so
// key *order* — part of the PR-over-PR diffability story — is pinned
// too.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util/report.hpp"
#include "stats/summary.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

// --- a ~100-line JSON value + parser, enough for the v1 schema ----------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  bool has(const std::string& key) const { return fields.count(key) != 0; }
  const JsonValue& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) {
      throw std::runtime_error("missing key: " + key);
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  bool try_consume(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue value;
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.text = parse_string();
      return value;
    }
    if (try_consume("null")) return value;
    if (try_consume("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (try_consume("false")) {
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.fields.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            throw std::runtime_error("bad \\u escape");
          }
          const unsigned code =
              static_cast<unsigned>(std::strtoul(
                  text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          out.push_back(static_cast<char>(code));  // v1 only emits < 0x20
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- the fixture: a report with every value shape the schema uses -------

la::bench::BenchReport golden_report() {
  using la::bench::JsonObject;
  la::bench::BenchReport report("golden_bench");
  la::stats::TrialStats trials;
  for (int i = 0; i < 10; ++i) trials.record(1);
  trials.record(4);

  report.add_run()
      .set("structure", "level")
      .set("rng", "marsaglia")
      .set("threads", std::uint32_t{8})
      .set_object("config", JsonObject()
                                .set("capacity", std::uint64_t{1024})
                                .set("size_factor", 2.0)
                                .set("flag", true))
      .set("ops_per_sec", 12345.5)
      .set_object("probes", la::bench::probe_stats_json(trials));
  report.add_run()
      .set("structure", "sharded:level")
      .set("rng", "pcg32")
      .set("threads", std::uint32_t{1})
      .set_object("config", JsonObject().set("capacity", std::uint64_t{8}))
      .set("ops_per_sec", 1.0)
      .set("note", "escape check: \"quotes\" \\ backslash \n newline \x01")
      .set("bad_measurement", std::nan(""));
  return report;
}

// The expected rendering, with {GIT} for the volatile field. Everything
// else — key order included — is pinned.
const char kGolden[] =
    "{\n"
    "  \"schema\": \"levelarray-bench-v1\",\n"
    "  \"bench\": \"golden_bench\",\n"
    "  \"git\": {GIT},\n"
    "  \"runs\": [\n"
    "    {\"structure\": \"level\", \"rng\": \"marsaglia\", \"threads\": 8, "
    "\"config\": {\"capacity\": 1024, \"size_factor\": 2, \"flag\": true}, "
    "\"ops_per_sec\": 12345.5, \"probes\": {\"operations\": 11, "
    "\"avg\": 1.27272727273, \"stddev\": 0.904534033733, \"worst\": 4, "
    "\"p99\": 4, \"p999\": 4}},\n"
    "    {\"structure\": \"sharded:level\", \"rng\": \"pcg32\", "
    "\"threads\": 1, \"config\": {\"capacity\": 8}, \"ops_per_sec\": 1, "
    "\"note\": \"escape check: \\\"quotes\\\" \\\\ backslash \\n newline "
    "\\u0001\", \"bad_measurement\": null}\n"
    "  ]\n}\n";

std::string expected_golden() {
  std::string expected = kGolden;
  const std::string placeholder = "{GIT}";
  const std::string git = "\"" + la::bench::git_describe() + "\"";
  expected.replace(expected.find(placeholder), placeholder.size(), git);
  return expected;
}

void check_parsed_schema(const JsonValue& doc) {
  current = "parsed-schema";
  CHECK(doc.kind == JsonValue::Kind::kObject);
  CHECK(doc.at("schema").text == "levelarray-bench-v1");
  CHECK(doc.at("bench").text == "golden_bench");
  CHECK(doc.at("git").kind == JsonValue::Kind::kString);
  const JsonValue& runs = doc.at("runs");
  CHECK(runs.kind == JsonValue::Kind::kArray);
  CHECK(runs.items.size() == 2);
  for (const JsonValue& run : runs.items) {
    // The conventional per-run keys every driver must emit.
    CHECK(run.at("structure").kind == JsonValue::Kind::kString);
    CHECK(run.at("rng").kind == JsonValue::Kind::kString);
    CHECK(run.at("threads").kind == JsonValue::Kind::kNumber);
    CHECK(run.at("config").kind == JsonValue::Kind::kObject);
    CHECK(run.at("ops_per_sec").kind == JsonValue::Kind::kNumber);
    CHECK(run.at("ops_per_sec").number > 0);
  }
  const JsonValue& probes = runs.items[0].at("probes");
  for (const char* key :
       {"operations", "avg", "stddev", "worst", "p99", "p999"}) {
    CHECK(probes.has(key));
    CHECK(probes.at(key).kind == JsonValue::Kind::kNumber);
  }
  CHECK(probes.at("operations").number == 11);
  CHECK(probes.at("worst").number == 4);
  // Escaping round-trips, and non-finite doubles are null, not 0.
  const JsonValue& second = runs.items[1];
  CHECK(second.at("note").text ==
        "escape check: \"quotes\" \\ backslash \n newline \x01");
  CHECK(second.at("bad_measurement").kind == JsonValue::Kind::kNull);
}

}  // namespace

int main() {
  using namespace la;

  const bench::BenchReport report = golden_report();
  const std::string rendered = report.render();

  // 1. Byte-exact golden (key order is part of the contract).
  current = "golden-bytes";
  const std::string expected = expected_golden();
  if (rendered != expected) {
    ++failures;
    std::fprintf(stderr, "FAIL [golden-bytes] rendering drifted\n");
    std::fprintf(stderr, "--- expected ---\n%s\n--- rendered ---\n%s\n",
                 expected.c_str(), rendered.c_str());
  }

  // 2. The document round-trips through a real parser.
  current = "round-trip";
  try {
    check_parsed_schema(JsonParser(rendered).parse());
  } catch (const std::exception& e) {
    ++failures;
    std::fprintf(stderr, "FAIL [round-trip] %s\n", e.what());
  }

  // 3. write_file output is byte-identical to render().
  current = "write-file";
  {
    const std::string path = "test_report_schema.tmp.json";
    std::ostringstream errors;
    CHECK(report.write_file(path, errors));
    std::ifstream in(path);
    std::ostringstream read_back;
    read_back << in.rdbuf();
    CHECK(read_back.str() == rendered);
    std::remove(path.c_str());
    // An unwritable path reports failure instead of dying.
    std::ostringstream quiet;
    CHECK(!report.write_file("no-such-dir/x/y.json", quiet));
    CHECK(!quiet.str().empty());
  }

  // 4. Duplicate keys are a driver bug and must throw.
  current = "duplicate-key";
  {
    bool threw = false;
    try {
      bench::JsonObject object;
      object.set("ops_per_sec", 1.0).set("ops_per_sec", 2.0);
    } catch (const std::logic_error&) {
      threw = true;
    }
    CHECK(threw);
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d report schema check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_report_schema: OK");
  return 0;
}
