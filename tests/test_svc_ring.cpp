// Unit tests for the svc layer's SPSC ring and the futex eventcount it
// composes with: slot-sequence handshake at capacities 2 and 64 across
// multiple laps (capacity 1 is degenerate — one slot cannot tell
// "published at p" from "free for p+1" — and must be rejected),
// free-running-cursor arithmetic straight through
// uint32 wraparound, full/empty edge conditions, dead-producer resets,
// a real producer/consumer thread pair with the consumer parked on an
// eventcount (every item must arrive, in order, with no lost wakeup),
// and an eventcount ping-pong that only terminates if no signal is ever
// dropped. Run under TSan by scripts/check.sh tsan.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/ring.hpp"
#include "sync/futex.hpp"
#include "sync/spin_barrier.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

// A minimal slot: the ring template only needs `seq` (protocol.hpp's
// RequestSlot/ResponseSlot are the production instantiations).
struct TestSlot {
  std::atomic<std::uint32_t> seq{0};
  std::uint64_t value = 0;
};

void check_capacity_validation() {
  current = "capacity-validation";
  CHECK(la::svc::valid_ring_capacity(2));
  CHECK(la::svc::valid_ring_capacity(64));
  CHECK(!la::svc::valid_ring_capacity(0));
  // One slot cannot distinguish "published at p" (seq == p+1) from
  // "free for p+1" (also seq == p+1): the producer would overwrite the
  // unconsumed slot and the consumer would wedge. Rejected by contract.
  CHECK(!la::svc::valid_ring_capacity(1));
  CHECK(!la::svc::valid_ring_capacity(3));
  CHECK(!la::svc::valid_ring_capacity(6));
}

// Interleaved push/pop for several laps, starting the cursors at `start`
// (reset_empty_at accepts any position, which is also how we drive the
// cursors straight through the 2^32 boundary).
void laps_at(std::uint32_t capacity, std::uint32_t start,
             std::uint64_t items) {
  std::vector<TestSlot> slots(capacity);
  la::svc::RingView<TestSlot> ring(slots.data(), capacity);
  ring.initialize();
  ring.reset_empty_at(start);

  std::uint32_t head = start;  // producer
  std::uint32_t tail = start;  // consumer
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  // Alternate a burst of pushes (until full or done) with a burst of
  // pops, so both the partially-full and full regimes recur every lap.
  // Single-threaded, so every outer round must consume at least one
  // item; a round that cannot means the handshake wedged — fail loudly
  // instead of spinning forever.
  std::uint64_t rounds = 0;
  while (consumed < items) {
    if (++rounds > 2 * items + 16) {
      CHECK(!"ring wedged: no progress in a single-threaded lap");
      return;
    }
    while (produced < items) {
      TestSlot* slot = ring.try_begin_push(head);
      if (slot == nullptr) break;  // full
      slot->value = produced;
      ring.commit_push(*slot, head);
      ++head;
      ++produced;
    }
    bool popped = false;
    while (true) {
      TestSlot* slot = ring.try_begin_pop(tail);
      if (slot == nullptr) break;  // empty
      CHECK(slot->value == consumed);
      ring.commit_pop(*slot, tail);
      ++tail;
      ++consumed;
      popped = true;
    }
    CHECK(popped || produced > consumed);  // never wedged
  }
  CHECK(produced == items && consumed == items);
  CHECK(ring.try_begin_pop(tail) == nullptr);  // drained
}

void check_wraparound_laps() {
  current = "wraparound-laps";
  for (const std::uint32_t capacity : {2u, 64u}) {
    // Several laps from zero...
    laps_at(capacity, 0, 7ull * capacity + 3);
    // ...and straight through the uint32 position wrap.
    laps_at(capacity, 0xFFFFFF80u, 7ull * capacity + 0x100);
  }
}

void check_full_empty_edges() {
  current = "full-empty-edges";
  std::vector<TestSlot> slots(2);
  la::svc::RingView<TestSlot> ring(slots.data(), 2);
  ring.initialize();

  // Empty: nothing to pop.
  CHECK(ring.try_begin_pop(0) == nullptr);
  // Fill to capacity; the next push must refuse.
  TestSlot* a = ring.try_begin_push(0);
  CHECK(a != nullptr);
  a->value = 10;
  ring.commit_push(*a, 0);
  TestSlot* b = ring.try_begin_push(1);
  CHECK(b != nullptr);
  b->value = 11;
  ring.commit_push(*b, 1);
  CHECK(ring.try_begin_push(2) == nullptr);  // full
  // One pop frees exactly one push.
  TestSlot* c = ring.try_begin_pop(0);
  CHECK(c != nullptr && c->value == 10);
  ring.commit_pop(*c, 0);
  CHECK(ring.try_begin_push(2) != nullptr);
}

void check_reset_discards_inflight() {
  current = "reset-discards-inflight";
  std::vector<TestSlot> slots(4);
  la::svc::RingView<TestSlot> ring(slots.data(), 4);
  ring.initialize();
  // A dead producer left three published entries and a half-written slot.
  for (std::uint32_t p = 0; p < 3; ++p) {
    TestSlot* slot = ring.try_begin_push(p);
    slot->value = p;
    ring.commit_push(*slot, p);
  }
  // The reclaimer resets at the consumer's cursor: everything in flight
  // is discarded and the ring is empty-but-usable from there.
  ring.reset_empty_at(7);
  CHECK(ring.try_begin_pop(7) == nullptr);
  for (std::uint32_t p = 7; p < 11; ++p) {
    TestSlot* slot = ring.try_begin_push(p);
    CHECK(slot != nullptr);
    if (slot == nullptr) return;
    slot->value = p;
    ring.commit_push(*slot, p);
  }
  CHECK(ring.try_begin_push(11) == nullptr);  // full again at the new lap
}

// Real SPSC thread pair: the producer pushes a monotone stream and rings
// a bell after each publish; the consumer verifies order and parks on
// the bell with the eventcount protocol whenever the ring is empty. If
// any wakeup were lost the consumer would sleep forever on the last
// items (no timed backstop here — that is the point of the test).
void check_threaded_spsc_eventcount() {
  current = "threaded-spsc-eventcount";
  constexpr std::uint32_t kCapacity = 8;
  constexpr std::uint64_t kItems = 200000;
  std::vector<TestSlot> slots(kCapacity);
  la::svc::RingView<TestSlot> ring(slots.data(), kCapacity);
  ring.initialize();
  la::sync::FutexWord bell;

  std::thread producer([&] {
    std::uint32_t head = 0;
    la::sync::Backoff backoff;
    for (std::uint64_t i = 0; i < kItems; ++i) {
      TestSlot* slot;
      while ((slot = ring.try_begin_push(head)) == nullptr) {
        backoff.pause();  // consumer side applies backpressure by pace
      }
      backoff.reset();
      slot->value = i;
      ring.commit_push(*slot, head);
      ++head;
      bell.signal();
    }
  });

  std::uint32_t tail = 0;
  std::uint64_t expect = 0;
  bool ordered = true;
  while (expect < kItems) {
    TestSlot* slot = ring.try_begin_pop(tail);
    if (slot == nullptr) {
      // Eventcount: register, re-check, then sleep untimed.
      const std::uint32_t seen = bell.prepare_wait();
      slot = ring.try_begin_pop(tail);
      if (slot != nullptr) {
        bell.cancel_wait();
      } else {
        bell.commit_wait(seen);
        continue;
      }
    }
    ordered = ordered && slot->value == expect;
    ring.commit_pop(*slot, tail);
    ++tail;
    ++expect;
  }
  producer.join();
  CHECK(ordered);
  CHECK(ring.try_begin_pop(tail) == nullptr);
}

// Two threads alternating strictly via two eventcounts, untimed waits:
// kRounds handoffs only complete if no signal is ever lost in either
// direction (the classic lost-wakeup shape: decide-to-sleep vs signal).
void check_eventcount_ping_pong() {
  current = "eventcount-ping-pong";
  constexpr std::uint64_t kRounds = 100000;
  std::atomic<std::uint64_t> turn{0};
  la::sync::FutexWord bell_even;  // signaled when turn becomes even
  la::sync::FutexWord bell_odd;   // signaled when turn becomes odd

  auto play = [&](std::uint64_t parity, la::sync::FutexWord& mine,
                  la::sync::FutexWord& theirs) {
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      const std::uint64_t want = 2 * round + parity;
      while (turn.load(std::memory_order_acquire) != want) {
        const std::uint32_t seen = mine.prepare_wait();
        if (turn.load(std::memory_order_acquire) == want) {
          mine.cancel_wait();
          break;
        }
        mine.commit_wait(seen);
      }
      turn.store(want + 1, std::memory_order_release);
      theirs.signal();
    }
  };

  std::thread even([&] { play(0, bell_even, bell_odd); });
  play(1, bell_odd, bell_even);
  even.join();
  CHECK(turn.load() == 2 * kRounds);
}

}  // namespace

int main() {
  check_capacity_validation();
  check_wraparound_laps();
  check_full_empty_edges();
  check_reset_discards_inflight();
  check_threaded_spsc_eventcount();
  check_eventcount_ping_pong();
  if (failures == 0) {
    std::printf("test_svc_ring: all checks passed\n");
    return 0;
  }
  std::printf("test_svc_ring: %d check(s) FAILED\n", failures);
  return 1;
}
