// Scan-engine parity: the word engine (8 slots per load, SWAR masks)
// must agree with the per-byte reference on every occupancy pattern —
// in particular around word boundaries and tail remainders, where SWAR
// bugs live (the borrow-propagating zero-byte mask this suite was
// written against misclassified bytes above the first clear slot).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "arrays/bitmap_array.hpp"
#include "core/level_array.hpp"
#include "core/slot_scan.hpp"
#include "rng/rng.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

using la::core::slot_scan::count_held;
using la::core::slot_scan::count_held_bytewise;
using la::core::slot_scan::find_first_clear;
using la::core::slot_scan::find_first_clear_bytewise;
using la::core::slot_scan::for_each_held;
using la::core::slot_scan::for_each_held_bytewise;

std::vector<std::uint64_t> collect_word(const la::sync::TasCell* cells,
                                        std::uint64_t n) {
  std::vector<std::uint64_t> out;
  for_each_held(cells, n, [&](std::uint64_t i) { out.push_back(i); });
  return out;
}

std::vector<std::uint64_t> collect_byte(const la::sync::TasCell* cells,
                                        std::uint64_t n) {
  std::vector<std::uint64_t> out;
  for_each_held_bytewise(cells, n, [&](std::uint64_t i) { out.push_back(i); });
  return out;
}

// Word vs byte on one concrete occupancy pattern.
void check_parity(const std::vector<la::sync::TasCell>& cells) {
  const auto n = static_cast<std::uint64_t>(cells.size());
  CHECK(count_held(cells.data(), n) == count_held_bytewise(cells.data(), n));
  CHECK(collect_word(cells.data(), n) == collect_byte(cells.data(), n));
  CHECK(find_first_clear(cells.data(), n) ==
        find_first_clear_bytewise(cells.data(), n));
  // Suffix scans exercise every word-phase of the same pattern (the
  // engine takes unaligned base pointers).
  for (std::uint64_t start = 1; start < n && start <= 9; ++start) {
    CHECK(count_held(cells.data() + start, n - start) ==
          count_held_bytewise(cells.data() + start, n - start));
    CHECK(find_first_clear(cells.data() + start, n - start) ==
          find_first_clear_bytewise(cells.data() + start, n - start));
  }
}

}  // namespace

int main() {
  using namespace la;

  // Word-boundary and tail-remainder sizes, plus a couple of long ones.
  const std::uint64_t sizes[] = {1, 7, 8, 9, 63, 64, 65, 200, 1037};

  // --- deterministic edge patterns -----------------------------------
  for (const auto n : sizes) {
    {
      std::vector<sync::TasCell> all_clear(n);
      CHECK(count_held(all_clear.data(), n) == 0);
      CHECK(collect_word(all_clear.data(), n).empty());
      CHECK(find_first_clear(all_clear.data(), n) == 0);
      check_parity(all_clear);
    }
    {
      std::vector<sync::TasCell> all_held(n);
      for (auto& cell : all_held) CHECK(cell.try_acquire());
      CHECK(count_held(all_held.data(), n) == n);
      CHECK(find_first_clear(all_held.data(), n) == n);  // none clear
      const auto names = collect_word(all_held.data(), n);
      CHECK(names.size() == n);
      for (std::uint64_t i = 0; i < names.size(); ++i) {
        CHECK(names[i] == i);  // ascending order
      }
      check_parity(all_held);
    }
    // One held slot at every boundary-interesting index.
    for (const std::uint64_t at : {std::uint64_t{0}, std::uint64_t{7},
                                   std::uint64_t{8}, std::uint64_t{63},
                                   std::uint64_t{64}, n - 1}) {
      if (at >= n) continue;
      std::vector<sync::TasCell> one(n);
      CHECK(one[at].try_acquire());
      CHECK(count_held(one.data(), n) == 1);
      CHECK(collect_word(one.data(), n) ==
            std::vector<std::uint64_t>{at});
      // With slot 0 held the first clear is 1 (== n when n is 1).
      CHECK(find_first_clear(one.data(), n) == (at == 0 ? 1 : 0));
      check_parity(one);
    }
    // All held except one clear slot — the backup sweep's target shape.
    for (const std::uint64_t clear_at :
         {std::uint64_t{0}, n / 2, n - 1}) {
      std::vector<sync::TasCell> dense(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (i != clear_at) CHECK(dense[i].try_acquire());
      }
      CHECK(find_first_clear(dense.data(), n) == clear_at);
      CHECK(count_held(dense.data(), n) == n - 1);
      check_parity(dense);
    }
  }

  // --- random occupancy patterns -------------------------------------
  rng::MarsagliaXorshift rng(20260727);
  for (const auto n : sizes) {
    for (int round = 0; round < 32; ++round) {
      std::vector<sync::TasCell> cells(n);
      // Densities from near-empty to near-full.
      const std::uint64_t density_pct = rng::bounded(rng, 101);
      for (auto& cell : cells) {
        if (rng::bounded(rng, 100) < density_pct) {
          CHECK(cell.try_acquire());
        }
      }
      check_parity(cells);
    }
  }

  // --- LevelArray collect vs its byte-wise reference -----------------
  {
    core::LevelArrayConfig config;
    config.capacity = 3000;  // odd-sized batches, non-multiple-of-8 tail
    core::LevelArray array(config);
    std::vector<std::uint64_t> held;
    for (int i = 0; i < 1500; ++i) held.push_back(array.get(rng).name);
    // Free a random third so the pattern has interior holes.
    for (std::size_t i = 0; i < held.size();) {
      if (rng::bounded(rng, 3) == 0) {
        array.free(held[i]);
        held[i] = held.back();
        held.pop_back();
      } else {
        ++i;
      }
    }
    std::vector<std::uint64_t> word_names, byte_names;
    CHECK(array.collect(word_names) == array.collect_bytewise(byte_names));
    CHECK(word_names == byte_names);
    CHECK(word_names.size() == held.size());

    // batch_occupancy (word-counted per batch range) sums to the total.
    std::uint64_t sum = 0;
    for (const auto count : array.batch_occupancy()) sum += count;
    CHECK(sum == held.size());
  }

  // --- bitmap bit-domain engine agrees with its own byte-domain twin --
  {
    arrays::BitmapActivityArray bits(1037, 500);
    std::vector<std::uint64_t> names;
    for (int i = 0; i < 400; ++i) names.push_back(bits.get(rng).name);
    std::vector<std::uint64_t> collected;
    CHECK(bits.collect(collected) == names.size());
    std::vector<std::uint64_t> sorted = names;
    std::sort(sorted.begin(), sorted.end());
    CHECK(collected == sorted);
  }

  if (failures == 0) std::printf("test_slot_scan: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
