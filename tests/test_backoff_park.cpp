// The third backoff tier and the blocked-Get park/wake path it enables:
// tier transitions of sync::Backoff itself, a ShardedRenamer Get that
// provably parks on the free signal and is woken by a Free (not by a
// timeout — we wait for the parks counter before releasing, so a lost
// wakeup would hang the test into its ctest timeout), and an
// oversubscribed batched churn (demand far above the contention bound)
// that must run to completion through the drive loop's park tier.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/renamer.hpp"
#include "bench_util/algos.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "sync/spin_barrier.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

using Sharded = la::scale::ShardedRenamer<la::core::LevelArray>;

Sharded make_sharded(std::uint32_t shards, std::uint64_t shard_capacity) {
  la::scale::ShardedConfig config;
  config.shards = shards;
  return Sharded(config, [shard_capacity](std::uint32_t) {
    la::core::LevelArrayConfig inner;
    inner.capacity = shard_capacity;
    return std::make_unique<la::core::LevelArray>(inner);
  });
}

void check_backoff_tiers() {
  current = "backoff-tiers";
  la::sync::Backoff backoff;
  CHECK(!backoff.should_park());
  // Spin tier (256) + yield tier (64): parking is advised only after
  // both are spent, and one pause short of the boundary is still "spin".
  for (int i = 0; i < 319; ++i) backoff.pause();
  CHECK(!backoff.should_park());
  backoff.pause();
  CHECK(backoff.should_park());
  // Once over the boundary it stays advised until reset.
  backoff.pause();
  CHECK(backoff.should_park());
  backoff.reset();
  CHECK(!backoff.should_park());
}

// A Get against a fully-held array must park on the free signal and be
// woken by the Free. The releasing thread waits until the getter has
// provably parked (wait_stats().parks advances) before freeing, so the
// wake cannot be explained by the spin or yield tiers: if the futex
// signal were lost, the getter would sleep and the test would hang.
void check_parked_get_woken_by_free() {
  current = "parked-get-woken-by-free";
  Sharded array = make_sharded(2, 4);  // contention bound 8
  la::rng::MarsagliaXorshift rng(3);

  std::vector<std::uint64_t> held;
  for (int i = 0; i < 8; ++i) held.push_back(array.get(rng).name);

  const std::uint64_t before_parks = array.wait_stats().parks;
  std::atomic<bool> got{false};
  std::atomic<std::uint64_t> got_name{0};
  std::thread getter([&] {
    la::rng::MarsagliaXorshift rng2(5);
    const la::GetResult r = array.get(rng2);  // blocks until capacity
    got_name.store(r.name, std::memory_order_relaxed);
    got.store(true, std::memory_order_release);
  });

  // Wait for a real park, then assert the getter is still blocked.
  la::sync::Backoff backoff;
  while (array.wait_stats().parks == before_parks) backoff.pause();
  CHECK(!got.load(std::memory_order_acquire));

  array.free(held.back());
  getter.join();
  CHECK(got.load(std::memory_order_acquire));
  held.pop_back();
  // The woken Get may land on any free slot (L = 2n leaves slack), but
  // never on one still held.
  for (const auto name : held) {
    CHECK(got_name.load(std::memory_order_relaxed) != name);
  }

  const la::api::WaitStats waits = array.wait_stats();
  CHECK(waits.parks > before_parks);
  CHECK(waits.wait_rounds >= waits.parks);  // rounds precede every park

  for (const auto name : held) array.free(name);
  std::vector<std::uint64_t> leftovers;
  CHECK(array.collect(leftovers) == 1);  // the getter's name
  array.free(got_name.load(std::memory_order_relaxed));
}

// Oversubscription through the real drive loop: 4 threads churning
// batches of 8 against a contention bound of 24 — steady-state demand
// (32) structurally exceeds the bound, so refusals are constant and
// threads cycle through the park tier. Timed mode, because that is the
// drive loop's oversubscription contract: the retry loop's deadline
// escape is what guarantees exit even when a full batch never fits.
void check_oversubscribed_churn_completes() {
  current = "oversubscribed-churn";
  Sharded array = make_sharded(4, 6);  // contention bound 24
  la::bench::DriverConfig driver;
  driver.threads = 4;
  driver.emulation_multiplier = 8;  // demand N = 32 > the bound
  driver.prefill = 0.5;             // 16 held up front, within the bound
  driver.ops_per_thread = 0;
  driver.seconds = 0.25;
  driver.batch = 8;
  const la::bench::RunResult result = la::bench::run_churn(array, driver);
  CHECK(result.total_ops > 0);
  // The refusal traffic must be visible in the wait accounting (the
  // structure's own gate rounds fold in via api::WaitStats).
  CHECK(result.gate_wait_rounds > 0);
  std::vector<std::uint64_t> leftovers;
  CHECK(array.collect(leftovers) == 0);
}

}  // namespace

int main() {
  check_backoff_tiers();
  check_parked_get_woken_by_free();
  check_oversubscribed_churn_completes();
  if (failures == 0) {
    std::printf("test_backoff_park: all checks passed\n");
    return 0;
  }
  std::printf("test_backoff_park: %d check(s) FAILED\n", failures);
  return 1;
}
