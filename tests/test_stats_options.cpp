// Pins the shared utility layers: Welford, TrialStats, and the Options
// command-line parser (uint lists, doubles, defaults, --csv, unused-key
// tracking).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util/options.hpp"
#include "stats/summary.hpp"
#include "stats/welford.hpp"

namespace {

int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

bool near(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) <= eps;
}

}  // namespace

int main() {
  using namespace la;

  // --- Welford --------------------------------------------------------
  {
    stats::Welford w;
    CHECK(w.count() == 0);
    CHECK(near(w.mean(), 0.0));
    CHECK(near(w.stddev(), 0.0));
    for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) w.add(x);
    CHECK(w.count() == 5);
    CHECK(near(w.mean(), 3.0));
    CHECK(near(w.variance(), 2.5));  // sample variance
    CHECK(near(w.stddev(), std::sqrt(2.5)));
    CHECK(near(w.min(), 1.0));
    CHECK(near(w.max(), 5.0));
  }

  // --- TrialStats -----------------------------------------------------
  {
    stats::TrialStats t;
    for (const std::uint64_t probes : {1, 1, 2, 6}) t.record(probes);
    CHECK(t.operations() == 4);
    CHECK(t.worst_case() == 6);
    CHECK(near(t.average(), 2.5));
    CHECK(near(t.p99(), 6.0));
    const auto h = t.histogram();
    CHECK(h.size() == 7);
    CHECK(h.at(1) == 2);
    CHECK(h.at(2) == 1);
    CHECK(h.at(3) == 0);
    CHECK(h.at(6) == 1);

    stats::TrialStats other;
    other.record(4);
    other.merge(t);
    CHECK(other.operations() == 5);
    CHECK(other.worst_case() == 6);
    CHECK(near(other.average(), (1 + 1 + 2 + 6 + 4) / 5.0));

    // Percentiles walk the histogram: for 100 ones and 1 ten, p99 is 1.
    stats::TrialStats tail;
    for (int i = 0; i < 100; ++i) tail.record(1);
    tail.record(10);
    CHECK(near(tail.p99(), 1.0));
    CHECK(near(tail.p999(), 10.0));
  }

  // --- Options --------------------------------------------------------
  {
    std::vector<std::string> args = {"prog",       "--n=1,2,8", "--x=3.5",
                                     "--name=abc", "--csv",     "--stray=1",
                                     "--dists=a,b"};
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& a : args) argv.push_back(a.data());
    bench::Options opts(static_cast<int>(argv.size()), argv.data());

    const auto ns = opts.get_uint_list("n", {7});
    CHECK(ns.size() == 3);
    CHECK(ns[0] == 1 && ns[1] == 2 && ns[2] == 8);
    CHECK(near(opts.get_double("x", 0.0), 3.5));
    CHECK(opts.get_string("name", "") == "abc");
    CHECK(opts.has("csv"));
    CHECK(!opts.has("quiet"));

    // Defaults pass through untouched when the key is absent.
    CHECK(opts.get_uint("missing", 7) == 7);
    CHECK(near(opts.get_double("missing2", 0.25), 0.25));
    const auto defaults = opts.get_uint_list("missing3", {4, 5});
    CHECK(defaults.size() == 2 && defaults[0] == 4 && defaults[1] == 5);

    const auto strings = opts.get_string_list("dists", {});
    CHECK(strings.size() == 2 && strings[0] == "a" && strings[1] == "b");

    // Only --stray was never queried.
    const auto unused = opts.unused_keys();
    CHECK(unused.size() == 1);
    CHECK(!unused.empty() && unused[0] == "stray");

    // Malformed numbers must throw, not silently zero.
    bool threw = false;
    try {
      (void)opts.get_uint("name", 0);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d stats/options check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_stats_options: OK");
  return 0;
}
