// Failure modes of the rename-service daemon, with real processes:
//
//   * Server death mid-request — a client whose server was SIGKILLed
//     (shutdown flag never set) must NOT re-park forever: the timed
//     response park expires, the probe of the published server pid
//     fails, and the exchange surfaces a distinct "server process died"
//     runtime_error. Before the probe existed the client wedged
//     indefinitely here.
//   * pid-reuse reclaim — the dead-client sweep compares the claim
//     generation token (the claimant's kernel start time) against the
//     pid's *current* owner, so a slot whose pid is alive but whose
//     token no longer matches is provably a recycled pid and is
//     reclaimed. Forging the token of a live holder simulates exactly
//     that; before token comparison a recycled pid kept the slot (and
//     its names) leaked forever. Negative controls: a matching token
//     and a zero token (stamp unavailable) must both keep the slot.
//
// Fork choreography (same rules as test_svc_reclaim): every child is
// forked before any thread exists in the parent; the holder child blocks
// in the Client ctor until its segment's server publishes ready.
#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "svc/client.hpp"
#include "svc/segment.hpp"
#include "svc/server.hpp"
#include "sync/spin_barrier.hpp"

namespace {

int failures = 0;
std::string current;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL [%s] %s:%d: %s\n", current.c_str(),      \
                   __FILE__, __LINE__, #cond);                            \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

constexpr std::uint64_t kCapacity = 64;
constexpr std::uint64_t kHolderHolds = 6;
constexpr std::uint64_t kCollectCapacity = 512;

// The death-test server child: serve segment A until SIGKILLed.
[[noreturn]] void server_child(la::svc::SegmentView seg) {
  la::core::LevelArrayConfig cfg;
  cfg.capacity = kCapacity;
  la::core::LevelArray structure(cfg);
  la::svc::Server<la::core::LevelArray> server(seg, structure);
  server.start();
  for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// The collect-test server child: seed most of the array before serving,
// so every kCollect response streams many chunks; then serve segment C
// until SIGKILLed.
[[noreturn]] void collect_server_child(la::svc::SegmentView seg) {
  la::core::LevelArrayConfig cfg;
  cfg.capacity = kCollectCapacity;
  la::core::LevelArray structure(cfg);
  const std::uint32_t batches = structure.geometry().num_batches();
  for (std::uint32_t k = 0; k < batches; ++k) {
    (void)structure.seed_batch_occupancy(
        k, structure.geometry().batch(k).size() * 7 / 8);
  }
  la::svc::Server<la::core::LevelArray> server(seg, structure);
  server.start();
  for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// The token-test holder child: claim a ring on segment B, hold names,
// announce via scratch[0], and park until SIGKILLed. It stays *alive*
// through the sweeps — only the forged token may condemn it.
[[noreturn]] void holder_child(la::svc::SegmentView seg) {
  la::svc::Client client(seg);
  la::rng::MarsagliaXorshift rng(17);
  std::vector<la::GetResult> got(kHolderHolds);
  std::size_t have = 0;
  la::sync::Backoff backoff;
  while (have < kHolderHolds) {
    have += client.get_batch(rng, got.data() + have, kHolderHolds - have);
    if (have < kHolderHolds) backoff.pause();
  }
  seg.header().scratch[0].store(have, std::memory_order_release);
  for (;;) std::this_thread::yield();
}

void test_server_death(la::svc::SegmentView seg, pid_t server_pid) {
  current = "server_death";
  la::svc::Client client(seg);  // blocks until the child publishes ready
  la::rng::MarsagliaXorshift rng(5);

  // Round trip while the server lives: the wire works.
  la::GetResult r = client.get(rng);
  CHECK(r.name < client.total_slots());
  client.free(r.name);

  // SIGKILL sets no shutdown flag; reap so the pid probe sees ESRCH
  // (a zombie still "exists" to kill(pid, 0)).
  CHECK(::kill(server_pid, SIGKILL) == 0);
  int status = 0;
  CHECK(::waitpid(server_pid, &status, 0) == server_pid);
  CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  bool threw = false;
  try {
    (void)client.get(rng);
  } catch (const std::runtime_error& e) {
    threw = true;
    CHECK(std::string(e.what()).find("server process died") !=
          std::string::npos);
  }
  CHECK(threw);
}

// The streaming-collect regression: a server SIGKILLed between the
// chunks of a multi-chunk kCollect stream must surface as the same
// "server process died" error, not a wedge — every response wait in the
// stream (and the request push behind it) arms the liveness probe. The
// server child pre-seeds most of its array so each collect streams many
// kMaxBatch-sized chunks, widening the between-chunks window the kill
// lands in.
void test_server_death_mid_collect(la::svc::SegmentView seg,
                                   pid_t server_pid) {
  current = "server_death_mid_collect";

  std::atomic<std::uint64_t> first_collect{0};
  std::string error;
  std::thread collector([&] {
    try {
      la::svc::Client client(seg);  // blocks until the child is ready
      std::vector<std::uint64_t> names;
      const std::size_t found = client.collect(names);
      first_collect.store(found, std::memory_order_release);
      for (;;) {
        names.clear();
        (void)client.collect(names);
      }
    } catch (const std::runtime_error& e) {
      error = e.what();
      if (first_collect.load(std::memory_order_acquire) == 0) {
        first_collect.store(1, std::memory_order_release);  // unblock main
      }
    }
  });

  // Wait for one whole streamed collect, let the loop run into another
  // stream, then kill the server with no shutdown flag and reap it.
  {
    la::sync::Backoff backoff;
    while (first_collect.load(std::memory_order_acquire) == 0) {
      backoff.pause();
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  CHECK(::kill(server_pid, SIGKILL) == 0);
  int status = 0;
  CHECK(::waitpid(server_pid, &status, 0) == server_pid);
  CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  collector.join();
  // The first collect proves the stream spanned several chunks; the
  // error proves the mid-stream death surfaced instead of wedging (the
  // ctest timeout is what would catch the wedge).
  CHECK(first_collect.load(std::memory_order_acquire) >
        2 * la::svc::kMaxBatch);
  CHECK(!error.empty());
  CHECK(error.find("server process died") != std::string::npos ||
        error.find("server shut down") != std::string::npos);
}

void test_forged_token(la::svc::SegmentView seg, pid_t holder_pid) {
  current = "forged_token";

  la::scale::ShardedConfig sharded;
  sharded.shards = 4;
  la::core::LevelArrayConfig level;
  level.capacity = kCapacity / sharded.shards;
  la::scale::ShardedRenamer<la::core::LevelArray> structure(
      sharded, [&level](std::uint32_t) {
        return std::make_unique<la::core::LevelArray>(level);
      });
  la::svc::Server<la::scale::ShardedRenamer<la::core::LevelArray>> server(
      seg, structure);
  server.start();

  // Wait until the holder provably holds names.
  {
    la::sync::Backoff backoff;
    while (seg.header().scratch[0].load(std::memory_order_acquire) == 0) {
      backoff.pause();
    }
  }
  CHECK(seg.header().scratch[0].load(std::memory_order_acquire) ==
        kHolderHolds);

  // Find the holder's claimed slot.
  la::svc::ClientSlot* slot = nullptr;
  for (std::uint32_t i = 0; i < seg.config().max_clients; ++i) {
    la::svc::ClientSlot& cs = seg.client_slot(i);
    if (cs.state.load(std::memory_order_acquire) ==
            la::svc::ClientSlot::kClaimed &&
        cs.pid.load(std::memory_order_acquire) ==
            static_cast<std::uint32_t>(holder_pid)) {
      slot = &cs;
      break;
    }
  }
  CHECK(slot != nullptr);
  if (slot == nullptr) {
    server.stop();
    return;
  }
  const std::uint64_t token =
      slot->claim_token.load(std::memory_order_acquire);
  CHECK(token != 0);  // Linux: the start-time stamp must be in place

  // Negative control 1: live pid + matching token -> kept.
  server.request_sweep();
  CHECK(server.stats().reclaims == 0);

  // Negative control 2: a zero token (stamp unavailable) degrades to
  // pid-only liveness -> a live pid is still kept.
  slot->claim_token.store(0, std::memory_order_release);
  server.request_sweep();
  CHECK(server.stats().reclaims == 0);

  // The forgery: a live pid whose current start time cannot match the
  // stamped token is exactly what a recycled pid looks like. The sweep
  // must reclaim the slot and recover every held name.
  slot->claim_token.store(token + 0x5EED, std::memory_order_release);
  server.request_sweep();
  const la::svc::ServerStats stats = server.stats();
  CHECK(stats.reclaims == 1);
  CHECK(stats.reclaimed_names == kHolderHolds);

  // Quiescence: nothing is held, and the full contention bound is
  // re-acquirable (a leaked name would cap this short).
  {
    std::vector<std::uint64_t> leftovers;
    CHECK(structure.collect(leftovers) == 0);
  }
  {
    la::svc::Client client(seg);
    la::rng::MarsagliaXorshift rng(23);
    std::vector<la::GetResult> got(kCapacity);
    std::size_t have = 0;
    la::sync::Backoff backoff;
    for (int attempts = 0; have < kCapacity && attempts < 200000;
         ++attempts) {
      have += client.get_batch(rng, got.data() + have, kCapacity - have);
      if (have < kCapacity) backoff.pause();
    }
    CHECK(have == kCapacity);
    for (std::size_t i = 0; i < have; ++i) client.free(got[i].name);
  }

  // The holder is parked on names that no longer exist for it; end it.
  CHECK(::kill(holder_pid, SIGKILL) == 0);
  int status = 0;
  CHECK(::waitpid(holder_pid, &status, 0) == holder_pid);
  CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  CHECK(server.error().empty());
  server.stop();
}

}  // namespace

int main() {
  using namespace la;

  svc::SegmentConfig seg_config;
  seg_config.max_clients = 8;
  svc::Segment segment_a(seg_config);  // server-death test
  svc::Segment segment_b(seg_config);  // forged-token test
  svc::Segment segment_c(seg_config);  // death-mid-collect test

  // Fork every child before any thread exists in this process.
  const pid_t server_pid = ::fork();
  if (server_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (server_pid == 0) server_child(segment_a.view());

  const pid_t collect_server_pid = ::fork();
  if (collect_server_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (collect_server_pid == 0) collect_server_child(segment_c.view());

  const pid_t holder_pid = ::fork();
  if (holder_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (holder_pid == 0) {
    // Blocks in the Client ctor until test_forged_token starts its
    // server on segment B.
    std::thread worker([&] { holder_child(segment_b.view()); });
    worker.join();  // unreachable
    ::_exit(4);
  }

  test_server_death(segment_a.view(), server_pid);
  test_server_death_mid_collect(segment_c.view(), collect_server_pid);
  test_forged_token(segment_b.view(), holder_pid);

  if (failures == 0) {
    std::printf("test_svc_failures: all checks passed\n");
    return 0;
  }
  std::printf("test_svc_failures: %d check(s) FAILED\n", failures);
  return 1;
}
