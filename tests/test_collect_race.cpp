// Targeted TSan regression: the word-scan Collect engine and the backup
// sweep racing concurrent Free/Get on a near-full deep batch. The stress
// matrix hits this only incidentally (collect() runs at quiescence
// there); this test pins a scanner thread on collect()/batch_occupancy
// the whole time churn workers run the structure at the edge of its
// contention bound — where Gets fall through to the deterministic backup
// sweep and deep batches sit near full, i.e. where slot_scan's 8-slots-
// per-load reads overlap the most writes.
//
// A second section runs the same shape against the sharded scale layer,
// where a concurrent collect() additionally *drains* the other threads'
// cache bins mid-churn — the cache-steal protocol under instrumentation.
//
// A third section churns the sharded layer through the *batch* surface
// (Get-k/Free-k, k<=4): multi-claim word scans, the fetch_add(k) gate
// with its partial-refusal refund, and whole-bin parking all race the
// scanner's collect()/drain_caches() steals.
//
// A fourth section pins the snapshot surfaces: the scanner alternates
// api::save() (a draining collect into a ckpt::Image) with the
// non-perturbing peek_held() while churn runs — the racy-snapshot reads
// behind checkpointing, under instrumentation.
//
// Assertions are racy-snapshot-shaped (a concurrent scan may see any
// interleaving — a non-atomic scan can even count a couple more slots
// than the instantaneous holds): every collected name in range, counts
// bounded by the slot space, and exact agreement once the run quiesces.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/snapshot.hpp"
#include "ckpt/image.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace {

int failures = 0;

#define CHECK_MSG(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL %s:%d: %s (%s)\n", __FILE__, __LINE__,   \
                   #cond, msg);                                           \
      ++failures;                                                         \
    }                                                                     \
  } while (0)

// Churn workers near the contention bound + one scanner looping the
// collect surfaces. `scan` is called with (array, out_vector) and must
// return the number of names appended.
template <typename Array, typename Scan>
void run_race(Array& array, std::uint64_t capacity, std::uint32_t workers,
              std::uint64_t ops_per_worker, const char* what, Scan scan,
              const std::vector<std::uint64_t>& pre_held = {}) {
  // Near-full: leave two free names per worker so every Get terminates.
  const std::uint64_t target = (capacity - 2 * workers) / workers;
  std::atomic<bool> done{false};
  la::sync::SpinBarrier barrier(workers + 1);
  std::vector<std::vector<std::uint64_t>> leftovers(workers);
  std::vector<std::string> errors(workers);

  {
    la::sync::ThreadGroup group;
    group.spawn(workers, [&](std::uint32_t tid) {
      la::rng::MarsagliaXorshift rng(la::rng::mix_seed(2026, tid));
      std::vector<std::uint64_t>& held = leftovers[tid];
      held.reserve(static_cast<std::size_t>(target));
      try {
        barrier.wait();
        for (std::uint64_t op = 0; op < ops_per_worker; ++op) {
          if (held.size() >= target ||
              (!held.empty() && la::rng::bounded(rng, 4) == 0)) {
            const std::uint64_t victim = la::rng::bounded(rng, held.size());
            array.free(held[victim]);
            held[victim] = held.back();
            held.pop_back();
          } else {
            held.push_back(array.get(rng).name);
          }
        }
      } catch (const std::exception& e) {
        errors[tid] = e.what();
      }
      done.store(true, std::memory_order_release);
    });

    // Scanner: hammer the collect surfaces until the first worker
    // finishes (so scan count scales with machine speed, not a guess) —
    // but never fewer than a floor: on an oversubscribed single core the
    // scanner may not get a timeslice before then, and the floor scans
    // still race whichever workers are left running.
    constexpr std::uint64_t kMinScans = 50;
    barrier.wait();
    std::vector<std::uint64_t> out;
    std::uint64_t scans = 0;
    while (!done.load(std::memory_order_acquire) || scans < kMinScans) {
      out.clear();
      const std::size_t found = scan(array, out);
      CHECK_MSG(found == out.size(), what);
      CHECK_MSG(found <= array.total_slots(), what);
      for (const auto name : out) {
        if (name >= array.total_slots()) {
          CHECK_MSG(name < array.total_slots(), what);
          break;
        }
      }
      ++scans;
    }
    CHECK_MSG(scans > 0, what);
  }

  for (std::uint32_t tid = 0; tid < workers; ++tid) {
    CHECK_MSG(errors[tid].empty(), errors[tid].c_str());
  }

  // Quiescent: collect must now agree exactly with the leftovers.
  std::set<std::uint64_t> expected(pre_held.begin(), pre_held.end());
  for (const auto& held : leftovers) {
    expected.insert(held.begin(), held.end());
  }
  std::vector<std::uint64_t> collected;
  array.collect(collected);
  CHECK_MSG(std::set<std::uint64_t>(collected.begin(), collected.end()) ==
                expected,
            what);
  for (const auto& held : leftovers) {
    for (const auto name : held) array.free(name);
  }
  for (const auto name : pre_held) array.free(name);
  collected.clear();
  CHECK_MSG(array.collect(collected) == 0, what);
  std::printf("ok   %s\n", what);
}

// Batch-surface variant: workers exchange names in k<=4 batches. A
// worker takes whatever get_batch grants (the gate may refuse partially
// near the bound) and backs off on a zero grant instead of spinning —
// progress is guaranteed because a refused worker eventually frees.
template <typename Array>
void run_batch_race(Array& array, std::uint64_t capacity,
                    std::uint32_t workers, std::uint64_t ops_per_worker,
                    const char* what) {
  const std::uint64_t target = (capacity - 2 * workers) / workers;
  std::atomic<bool> done{false};
  la::sync::SpinBarrier barrier(workers + 1);
  std::vector<std::vector<std::uint64_t>> leftovers(workers);
  std::vector<std::string> errors(workers);

  {
    la::sync::ThreadGroup group;
    group.spawn(workers, [&](std::uint32_t tid) {
      la::rng::MarsagliaXorshift rng(la::rng::mix_seed(4096, tid));
      std::vector<std::uint64_t>& held = leftovers[tid];
      held.reserve(static_cast<std::size_t>(target));
      std::vector<la::GetResult> got(4);
      std::vector<std::uint64_t> victims(4);
      la::sync::Backoff backoff;
      try {
        barrier.wait();
        for (std::uint64_t op = 0; op < ops_per_worker; ++op) {
          if (held.size() >= target ||
              (!held.empty() && la::rng::bounded(rng, 4) == 0)) {
            std::size_t m =
                1 + static_cast<std::size_t>(la::rng::bounded(rng, 4));
            if (m > held.size()) m = held.size();
            for (std::size_t i = 0; i < m; ++i) {
              const std::uint64_t victim =
                  la::rng::bounded(rng, held.size());
              victims[i] = held[victim];
              held[victim] = held.back();
              held.pop_back();
            }
            array.free_batch(victims.data(), m);
          } else {
            std::size_t k =
                1 + static_cast<std::size_t>(la::rng::bounded(rng, 4));
            const std::uint64_t room = target - held.size();
            if (k > room) k = static_cast<std::size_t>(room);
            const std::size_t granted = array.get_batch(rng, got.data(), k);
            for (std::size_t i = 0; i < granted; ++i) {
              held.push_back(got[i].name);
            }
            if (granted == 0) backoff.pause();
          }
        }
      } catch (const std::exception& e) {
        errors[tid] = e.what();
      }
      done.store(true, std::memory_order_release);
    });

    constexpr std::uint64_t kMinScans = 50;
    barrier.wait();
    std::vector<std::uint64_t> out;
    std::uint64_t scans = 0;
    while (!done.load(std::memory_order_acquire) || scans < kMinScans) {
      // Alternate the full collect (which itself steals the bins) with a
      // bare drain_caches(), so the steal path also runs without the
      // scan right behind it.
      if ((scans & 1) != 0) array.drain_caches();
      out.clear();
      const std::size_t found = array.collect(out);
      CHECK_MSG(found == out.size(), what);
      CHECK_MSG(found <= array.total_slots(), what);
      for (const auto name : out) {
        if (name >= array.total_slots()) {
          CHECK_MSG(name < array.total_slots(), what);
          break;
        }
      }
      ++scans;
    }
    CHECK_MSG(scans > 0, what);
  }

  for (std::uint32_t tid = 0; tid < workers; ++tid) {
    CHECK_MSG(errors[tid].empty(), errors[tid].c_str());
  }

  std::set<std::uint64_t> expected;
  for (const auto& held : leftovers) {
    expected.insert(held.begin(), held.end());
  }
  std::vector<std::uint64_t> collected;
  array.collect(collected);
  CHECK_MSG(std::set<std::uint64_t>(collected.begin(), collected.end()) ==
                expected,
            what);
  for (const auto& held : leftovers) {
    if (!held.empty()) array.free_batch(held.data(), held.size());
  }
  collected.clear();
  CHECK_MSG(array.collect(collected) == 0, what);
  std::printf("ok   %s\n", what);
}

}  // namespace

int main() {
  using namespace la;
  constexpr std::uint64_t kCapacity = 256;
  constexpr std::uint32_t kWorkers = 3;
  constexpr std::uint64_t kOps = 40000;

  // LevelArray at the contention edge: seed the deepest batches full
  // first (the paper's bad state), so the scanner overlaps backup sweeps
  // and near-full deep batches from the first op.
  {
    core::LevelArrayConfig config;
    config.capacity = kCapacity;
    core::LevelArray array(config);
    std::vector<std::uint64_t> seeded;
    const std::uint32_t batches = array.geometry().num_batches();
    for (std::uint32_t k = 1; k < batches; ++k) {
      const auto names = array.seed_batch_occupancy(
          k, array.geometry().batch(k).size());
      seeded.insert(seeded.end(), names.begin(), names.end());
    }
    // Hand the seeded names to the run as pre-held ballast: free them
    // into the churn by releasing half up front.
    for (std::size_t i = 0; i < seeded.size(); i += 2) {
      array.free(seeded[i]);
    }
    std::vector<std::uint64_t> ballast;
    for (std::size_t i = 1; i < seeded.size(); i += 2) {
      ballast.push_back(seeded[i]);
    }
    const std::uint64_t free_capacity = kCapacity - ballast.size();
    run_race(array, free_capacity, kWorkers, kOps,
             "level/collect-vs-backup-sweep",
             [](core::LevelArray& a, std::vector<std::uint64_t>& out) {
               // Alternate all three scan surfaces.
               static int which = 0;
               switch (which++ % 3) {
                 case 0: return a.collect(out);
                 case 1: return a.collect_bytewise(out);
                 default: {
                   const auto occupancy = a.batch_occupancy();
                   std::size_t total = 0;
                   for (const auto n : occupancy) total += n;
                   (void)total;  // the read is the test; the value is racy
                   return a.collect(out);
                 }
               }
             },
             ballast);
  }

  // Sharded scale layer: the scanner's collect() drains the workers'
  // cache bins (exchange-steals) while they keep parking — the
  // cache-drain-vs-collect interaction under TSan.
  {
    scale::ShardedConfig config;
    config.shards = 4;
    config.cache_capacity = 16;
    scale::ShardedRenamer<core::LevelArray> array(
        config, [](std::uint32_t) {
          core::LevelArrayConfig inner;
          inner.capacity = kCapacity / 4;
          return std::make_unique<core::LevelArray>(inner);
        });
    run_race(array, kCapacity, kWorkers, kOps,
             "sharded:level/collect-drain-vs-park",
             [](scale::ShardedRenamer<core::LevelArray>& a,
                std::vector<std::uint64_t>& out) { return a.collect(out); });
  }

  // Sharded scale layer, batch surface: concurrent get_batch/free_batch
  // (amortized gate RMWs, multi-claim word scans, whole-bin parking)
  // racing collect() and bare drain_caches() steals.
  {
    scale::ShardedConfig config;
    config.shards = 4;
    config.cache_capacity = 16;
    scale::ShardedRenamer<core::LevelArray> array(
        config, [](std::uint32_t) {
          core::LevelArrayConfig inner;
          inner.capacity = kCapacity / 4;
          return std::make_unique<core::LevelArray>(inner);
        });
    run_batch_race(array, kCapacity, kWorkers, kOps,
                   "sharded:level/batch-churn-vs-collect-drain");
  }

  // Snapshot surfaces racing churn: api::save's draining collect and the
  // non-perturbing peek_held word scan, alternated while Get/Free runs —
  // exactly what a live checkpoint reads. Exactness is only claimed at
  // quiescence (run_race's final audit); mid-churn both are bounded racy
  // snapshots.
  {
    scale::ShardedConfig config;
    config.shards = 4;
    config.cache_capacity = 16;
    scale::ShardedRenamer<core::LevelArray> array(
        config, [](std::uint32_t) {
          core::LevelArrayConfig inner;
          inner.capacity = kCapacity / 4;
          return std::make_unique<core::LevelArray>(inner);
        });
    run_race(array, kCapacity, kWorkers, kOps,
             "sharded:level/snapshot-vs-churn",
             [](scale::ShardedRenamer<core::LevelArray>& a,
                std::vector<std::uint64_t>& out) -> std::size_t {
               static int which = 0;
               if (which++ % 2 == 0) {
                 const ckpt::Image image = api::save(a, "sharded:level");
                 out.assign(image.held.begin(), image.held.end());
                 return out.size();
               }
               return a.peek_held(out);
             });
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d collect race check(s) failed\n", failures);
    return 1;
  }
  std::puts("test_collect_race: OK");
  return 0;
}
