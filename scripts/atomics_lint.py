#!/usr/bin/env python3
"""Static memory-order audit for the lock-free core.

Every explicit std::memory_order_* call site in src/ must appear in
scripts/atomics_manifest.tsv together with a justification; the manifest
is the reviewed record of WHY each ordering is sufficient. The lint
fails when

  * a call site exists that the manifest does not list (unlisted),
  * the manifest lists a site that no longer exists (stale),
  * the number of sites behind a manifest row changed (count drift),
  * a site kept its (file, symbol, op) identity but weakened its
    ordering relative to the manifest (downgrade — the bug class the
    model checker in src/verify/ catches dynamically; this catches it
    at diff time, before any schedule runs),
  * a manifest row still carries a TODO justification.

Call sites are keyed by (file, enclosing symbol, operation, ordering) —
NOT by line number — so unrelated edits never churn the manifest.
Intentional unchecked sites carry `// atomics-lint: ignore` (or
`mutation` for seeded-bug branches) on the same or preceding line.

Usage:
  scripts/atomics_lint.py                  check src/ against the manifest
  scripts/atomics_lint.py --write-manifest rewrite the manifest from the
                                           tree, preserving existing
                                           justifications
  scripts/atomics_lint.py --self-test      prove the lint has teeth on an
                                           in-memory acquire->relaxed
                                           downgrade

src/verify/ is excluded: it is the checking machinery (memory orders
appear there as *data* — interposition shims, trace renderers, harness
cells), not library code whose orderings need auditing.
"""

import argparse
import collections
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
MANIFEST = os.path.join(REPO, "scripts", "atomics_manifest.tsv")
EXCLUDE_DIRS = {os.path.join("src", "verify")}

ORDER_RE = re.compile(r"std::memory_order_(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")
# Strength lattice for downgrade detection. release and acquire are
# incomparable halves of acq_rel; treat them as equal rank so swapping
# one for the other reports as a *change*, not silently as an upgrade.
ORDER_RANK = {
    "relaxed": 0,
    "consume": 1,
    "acquire": 2,
    "release": 2,
    "acq_rel": 3,
    "seq_cst": 4,
}
OP_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set|"
    r"clear|wait)\s*\($"
    r"|(atomic_thread_fence)\s*\($"
)
IGNORE_RE = re.compile(r"//\s*atomics-lint:\s*(ignore|mutation)\b")
# Heuristic for "the function this site lives in": the last line above it
# that looks like a function definition header (name + parens + opening
# brace on the same or a continuation line). Deterministic and stable is
# what matters here, not parser-grade accuracy.
FUNC_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?"
    r"(?:[\w:<>,*&~\[\]\s]+?\s)??"
    r"(~?[A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*|operator\S+)\s*"
    r"\([^;]*$|"
    r"^\s*(?:class|struct)\s+([A-Za-z_]\w*)"
)

Site = collections.namedtuple("Site", "file symbol op order line")


def list_sources():
    out = []
    for root, dirs, files in os.walk(SRC):
        rel = os.path.relpath(root, REPO)
        if any(rel == d or rel.startswith(d + os.sep) for d in EXCLUDE_DIRS):
            dirs[:] = []
            continue
        for name in sorted(files):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(root, name))
    return sorted(out)


def enclosing_symbols(lines):
    """symbol[i] = best-effort name of the function/struct containing line i."""
    symbols = []
    current = "(file scope)"
    brace_depth = 0
    pending = None  # candidate seen, waiting for its opening brace
    for line in lines:
        code = line.split("//", 1)[0]
        m = FUNC_RE.match(code)
        if m and brace_depth <= 2:  # file scope or inside a class body
            name = m.group(1) or m.group(2)
            if name and name not in ("if", "for", "while", "switch", "return",
                                     "sizeof", "catch", "static_assert"):
                pending = name
        if "{" in code and pending is not None:
            current = pending
            pending = None
        symbols.append(current)
        brace_depth += code.count("{") - code.count("}")
    return symbols


def extract_file(path, text=None):
    if text is None:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    rel = os.path.relpath(path, REPO).replace(os.sep, "/")
    lines = text.split("\n")
    symbols = enclosing_symbols(lines)
    sites = []
    for i, line in enumerate(lines):
        if IGNORE_RE.search(line) or (i > 0 and IGNORE_RE.search(lines[i - 1])):
            continue
        for m in ORDER_RE.finditer(line.split("//", 1)[0]):
            # The operation is the nearest atomic method call opened before
            # this token, scanning back through the current statement (it
            # may start on an earlier line for wrapped argument lists).
            window_lines = lines[max(0, i - 4):i] + [line[:m.start()]]
            window = " ".join(w.split("//", 1)[0] for w in window_lines)
            stmt = re.split(r"[;{}]", window)[-1]
            op = None
            for om in re.finditer(
                    r"(?:(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|"
                    r"fetch_or|fetch_and|fetch_xor|compare_exchange_weak|"
                    r"compare_exchange_strong|test_and_set|clear|wait)|"
                    r"\b(atomic_thread_fence))\s*\(", stmt):
                op = om.group(1) or "fence"
            if op is None:
                # Not a call argument (e.g. a default parameter, an enum
                # table, a using-alias): not an executable site.
                continue
            sites.append(Site(rel, symbols[i], op, m.group(1), i + 1))
    return sites


def extract_tree():
    sites = []
    for path in list_sources():
        sites.extend(extract_file(path))
    return sites


def key(site):
    return (site.file, site.symbol, site.op, site.order)


def load_manifest(path=MANIFEST):
    rows = {}
    if not os.path.exists(path):
        return rows
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#") or line.startswith("file\t"):
                continue
            parts = line.split("\t")
            if len(parts) != 6:
                sys.exit(f"{path}:{lineno}: expected 6 tab-separated fields, "
                         f"got {len(parts)}")
            file_, symbol, op, order, count, why = parts
            rows[(file_, symbol, op, order)] = (int(count), why)
    return rows


def write_manifest(sites, path=MANIFEST):
    old = load_manifest(path)
    counted = collections.Counter(key(s) for s in sites)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Audited memory orderings for every explicit std::memory_order_*\n")
        f.write("# call site under src/ (src/verify/ excluded — that is the checker).\n")
        f.write("# Columns: file, enclosing symbol, op, ordering, site count,\n")
        f.write("# justification. Regenerate with scripts/atomics_lint.py\n")
        f.write("# --write-manifest (existing justifications are preserved);\n")
        f.write("# the lint fails while any justification still says TODO.\n")
        f.write("file\tsymbol\top\torder\tcount\tjustification\n")
        for k in sorted(counted):
            why = old.get(k, (0, "TODO: justify"))[1]
            f.write("\t".join([k[0], k[1], k[2], k[3], str(counted[k]), why]) + "\n")
    print(f"wrote {len(counted)} entries to {os.path.relpath(path, REPO)}")


def check(sites, manifest, out=sys.stdout):
    counted = collections.Counter(key(s) for s in sites)
    where = collections.defaultdict(list)
    for s in sites:
        where[key(s)].append(f"{s.file}:{s.line}")
    errors = []

    manifest = dict(manifest)
    header = ("file", "symbol", "op", "order")
    manifest.pop(header, None)

    for k, n in sorted(counted.items()):
        if k in manifest:
            continue
        # Same identity under a different ordering in the manifest means
        # the ordering itself changed — name the direction.
        ident = k[:3]
        olds = [mk for mk in manifest if mk[:3] == ident and mk not in counted]
        if olds:
            old_order = olds[0][3]
            direction = ("DOWNGRADE" if ORDER_RANK[k[3]] < ORDER_RANK[old_order]
                         else "upgrade" if ORDER_RANK[k[3]] > ORDER_RANK[old_order]
                         else "change")
            errors.append(
                f"ordering {direction}: {k[0]} {k[1]} {k[2]} is "
                f"{k[3]} but the manifest requires {old_order} "
                f"({', '.join(where[k])}) — if intended, re-justify it and "
                f"rerun --write-manifest")
        else:
            errors.append(
                f"unlisted call site: {k[0]} {k[1]} {k[2]} {k[3]} x{n} "
                f"({', '.join(where[k])}) — add it to the manifest with a "
                f"justification (--write-manifest, then replace the TODO)")

    for mk, (count, why) in sorted(manifest.items()):
        if mk not in counted:
            if any(k[:3] == mk[:3] for k in counted):
                continue  # already reported above as an ordering change
            errors.append(
                f"stale manifest entry: {mk[0]} {mk[1]} {mk[2]} {mk[3]} — "
                f"no such call site remains; remove it (--write-manifest)")
        elif counted[mk] != count:
            errors.append(
                f"count drift: {mk[0]} {mk[1]} {mk[2]} {mk[3]} has "
                f"{counted[mk]} sites, manifest says {count} "
                f"({', '.join(where[mk])}) — rerun --write-manifest and "
                f"review the new sites")
        if mk in counted and why.strip().upper().startswith("TODO"):
            errors.append(
                f"missing justification: {mk[0]} {mk[1]} {mk[2]} {mk[3]} "
                f"still says '{why}'")

    for e in errors:
        print(f"atomics-lint: {e}", file=out)
    return len(errors)


def self_test():
    good = (
        "struct Cell {\n"
        "  bool try_acquire() {\n"
        "    return !flag_.exchange(true, std::memory_order_acquire);\n"
        "  }\n"
        "  void release() {\n"
        "    flag_.store(false, std::memory_order_release);\n"
        "  }\n"
        "};\n"
    )
    bad = good.replace("std::memory_order_acquire", "std::memory_order_relaxed")
    fake = os.path.join(SRC, "fake", "cell.hpp")

    good_sites = extract_file(fake, good)
    assert len(good_sites) == 2, good_sites
    assert {(s.symbol, s.op, s.order) for s in good_sites} == {
        ("try_acquire", "exchange", "acquire"),
        ("release", "store", "release"),
    }, good_sites

    manifest = {key(s): (1, "claim/release pairing") for s in good_sites}
    import io
    sink = io.StringIO()
    assert check(good_sites, manifest, out=sink) == 0, sink.getvalue()

    bad_sites = extract_file(fake, bad)
    sink = io.StringIO()
    n = check(bad_sites, manifest, out=sink)
    report = sink.getvalue()
    assert n > 0, "downgrade not detected"
    assert "DOWNGRADE" in report and "relaxed" in report, report

    ignored = extract_file(fake, good.replace(
        "    return !flag_.exchange",
        "    // atomics-lint: ignore\n    return !flag_.exchange"))
    assert len(ignored) == 1, ignored

    print("self-test OK: clean tree passes, acquire->relaxed downgrade "
          "fails, ignore marker suppresses")


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--write-manifest", action="store_true",
                        help="regenerate the manifest, preserving justifications")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in teeth check and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    sites = extract_tree()
    if args.write_manifest:
        write_manifest(sites)
        return 0
    manifest = load_manifest()
    if not manifest:
        sys.exit(f"manifest not found: {MANIFEST} (run --write-manifest first)")
    errors = check(sites, manifest)
    if errors:
        print(f"atomics-lint: {errors} problem(s); see "
              f"scripts/atomics_manifest.tsv for the audited baseline",
              file=sys.stderr)
        return 1
    print(f"atomics-lint: {len(sites)} call sites match the manifest "
          f"({len(manifest)} audited entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
