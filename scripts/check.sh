#!/usr/bin/env bash
# Full verification: the tier-1 build+test pass, then an
# AddressSanitizer/UBSan configure preset with the unit + smoke tests
# rerun under the sanitizers.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== renamer API conformance (every registered structure) =="
./build/test_renamer_contract

echo "== ASan/UBSan preset =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "${JOBS}"
(cd build-asan && ctest --output-on-failure)

echo "check.sh: all green"
