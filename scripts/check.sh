#!/usr/bin/env bash
# Full verification, tier by tier (see README "Testing tiers"):
#   1. tier-1 build + ctest (unit, conformance, stress matrix, smokes)
#   2. bench-smoke: the --json pipeline emits parseable, nonzero reports
#   3. AddressSanitizer/UBSan preset, same suite
#   4. ThreadSanitizer preset, the concurrency-bearing targets
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== bench-smoke: machine-readable bench pipeline =="
./build/collect_cost --scan=word --capacities=20000 --reps=200 \
  --json=build/BENCH_collect.json > /dev/null
./build/fig2_throughput --threads=1,2 --mult=100 --seconds=0.05 \
  --json=build/BENCH_fig2.json > /dev/null
python3 scripts/validate_bench_json.py \
  build/BENCH_collect.json build/BENCH_fig2.json

echo "== ASan/UBSan preset =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "${JOBS}"
(cd build-asan && ctest --output-on-failure)

echo "== TSan preset: stress matrix under real-thread races =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" \
  --target test_stress_matrix test_renamer_contract stress_runner
./build-tsan/test_renamer_contract
./build-tsan/test_stress_matrix
./build-tsan/stress_runner --structure=all --scenario=all --threads=8 \
  --ops=2000

echo "check.sh: all green"
