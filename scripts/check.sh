#!/usr/bin/env bash
# Tiered verification (see README "Testing tiers"). With no argument,
# every tier runs in order:
#   1. tier-1 build + full ctest (unit + stress + smoke labels)
#   2. svc: the rename-service daemon with real forked client processes
#   3. ckpt: checkpoint/restore and the live re-sharding migration
#   4. bench-smoke: the --json pipeline emits parseable, nonzero reports,
#      and the committed scaling/batch/svc/migrate gates hold
#   5. verify: the exhaustive interleaving model checker over the
#      lock-free core (src/verify/), every cell within its schedule
#      budget, plus the mutant teeth checks
#   6. lint: the static memory-order audit (scripts/atomics_lint.py
#      against scripts/atomics_manifest.tsv) and, when clang-tidy is
#      installed, the zero-warning .clang-tidy gate
#   7. AddressSanitizer/UBSan preset, same suite
#   8. ThreadSanitizer preset, the concurrency-bearing targets
#
# A single argument runs one tier against the tier-1 build:
#   scripts/check.sh unit     # fast single-process tests only (ctest -L)
#   scripts/check.sh stress   # real-thread suites
#   scripts/check.sh smoke    # second-scale bench driver sweeps
#   scripts/check.sh svc      # rename-service daemon, real processes
#   scripts/check.sh ckpt     # checkpoint/restore + live migration
#   scripts/check.sh verify   # model-check the lock-free core
#   scripts/check.sh lint     # atomics manifest audit + clang-tidy
#   scripts/check.sh bench-smoke | asan | tsan
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
TIER="${1:-all}"

build_tier1() {
  cmake -B build -S .
  cmake --build build -j "${JOBS}"
}

run_bench_smoke() {
  echo "== bench-smoke: machine-readable bench pipeline =="
  ./build/collect_cost --scan=word --capacities=20000 --reps=200 \
    --json=build/BENCH_collect.json > /dev/null
  ./build/fig2_throughput --threads=1,2 --mult=100 --seconds=0.05 \
    --json=build/BENCH_fig2.json > /dev/null
  ./build/scaling_sweep --threads=1,2 --mult=2000 --seconds=0.05 \
    --json=build/BENCH_scaling.json > /dev/null
  ./build/scaling_sweep --algo=sharded:level --threads=2 --batch=1,16 \
    --mult=2000 --seconds=0.05 --cache=0 \
    --json=build/BENCH_batch.json > /dev/null
  python3 scripts/validate_bench_json.py \
    build/BENCH_collect.json build/BENCH_fig2.json build/BENCH_scaling.json \
    build/BENCH_batch.json
  # The scale-layer acceptance bar on the *committed* snapshot (the
  # sharded win is a production-scale locality property — regenerate
  # with `scaling_sweep --json=BENCH_scaling.json`, defaults are the
  # production-scale config): sharded:level >= flat level at 8 threads.
  python3 scripts/validate_bench_json.py --scaling-gate=8 BENCH_scaling.json
  # The batch-amortization acceptance bar on the *committed* snapshot:
  # sharded:level at batch=16 must be >= 1.5x batch=1 at 8 threads.
  # Regenerate with
  #   scaling_sweep --algo=sharded:level --threads=8 --batch=1,4,16,64 \
  #     --cache=0 --json=BENCH_batch.json
  # (cache=0 so every exchange pays the gate + probe path the batch
  # surface amortizes — the uncached regime is what the gate measures).
  python3 scripts/validate_bench_json.py --batch-gate=16 BENCH_batch.json
  # The rename-service daemon: one server process + forked clients over
  # the shared-memory rings, kill-one reclaim included, plus the
  # svc-vs-in-process acceptance bar on the *committed* snapshot.
  # Regenerate with
  #   svc_churn --clients=4 --ops=100000 --batch=16 --kill-one \
  #     --json=BENCH_svc.json
  ./build/svc_churn --clients=4 --ops=100000 --batch=16 --kill-one \
    --json=build/BENCH_svc.json > /dev/null
  python3 scripts/validate_bench_json.py --svc-gate=16 build/BENCH_svc.json
  python3 scripts/validate_bench_json.py --svc-gate=16 BENCH_svc.json
  # Live re-sharding migration: churn throughput across a mid-run
  # save/rebuild/restore swap, gated on the fresh run AND the committed
  # snapshot. Regenerate with
  #   migrate_churn --threads=4 --ops=60000 --batch=8 \
  #     --json=BENCH_migrate.json
  ./build/migrate_churn --threads=4 --ops=60000 --batch=8 \
    --json=build/BENCH_migrate.json > /dev/null
  python3 scripts/validate_bench_json.py --migrate-gate \
    build/BENCH_migrate.json
  python3 scripts/validate_bench_json.py --migrate-gate BENCH_migrate.json
}

run_svc() {
  echo "== svc: multi-process daemon smoke (1 server + 4 forked clients) =="
  ./build/svc_churn --clients=4 --ops=100000 --batch=16 --kill-one
  ./build/test_svc_reclaim
  ./build/test_svc_failures
}

run_ckpt() {
  echo "== ckpt: checkpoint/restore + live re-sharding migration =="
  ./build/test_ckpt
  # Live migration under churn: sharded:level (4 shards) swapped for
  # sharded:linear (8 shards) mid-run, trace checked across the boundary.
  ./build/migrate_churn --threads=4 --ops=20000 --batch=8
}

run_verify() {
  echo "== verify: exhaustive interleaving model checker =="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target verify_runner verify_runner_mutant
  # Every cell under its committed schedule budget (full DFS for the
  # small trees, preemption-bounded for the big ones), plus the teeth
  # checks: the seeded TasCell ordering mutant and the in-cell relaxed
  # publish MUST be caught with a printed counterexample.
  (cd build && ctest --output-on-failure -j "${JOBS}" -L verify)
}

run_lint() {
  echo "== lint: static memory-order audit =="
  python3 scripts/atomics_lint.py --self-test
  python3 scripts/atomics_lint.py
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "== lint: clang-tidy (.clang-tidy, zero-warning gate) =="
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    # Library + verify sources; headers ride along via HeaderFilterRegex.
    clang-tidy -p build --quiet --warnings-as-errors='*' \
      src/*/*.cpp
  else
    echo "clang-tidy not installed; skipping the tidy half (CI runs it)"
  fi
}

run_asan() {
  echo "== ASan/UBSan preset =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build build-asan -j "${JOBS}"
  (cd build-asan && ctest --output-on-failure)
}

run_tsan() {
  echo "== TSan preset: stress + collect-race under real-thread races =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j "${JOBS}" \
    --target test_stress_matrix test_renamer_contract test_collect_race \
             test_model_fuzz test_svc_ring test_backoff_park \
             test_wait_queue test_deadlines test_ckpt migrate_churn \
             stress_runner
  # The svc ring + eventcount under TSan: the SPSC handshake and the
  # park/wake protocol are where a lost fence shows up. (The fork-based
  # svc suites stay out of TSan — it does not support multi-process.)
  ./build-tsan/test_svc_ring
  ./build-tsan/test_backoff_park
  # The FIFO wait queue and the deadline paths: ticket grants, timed
  # parks, and the park/wake handoff under real races.
  ./build-tsan/test_wait_queue
  ./build-tsan/test_deadlines
  ./build-tsan/test_renamer_contract
  ./build-tsan/test_collect_race
  ./build-tsan/test_model_fuzz --structure=sharded:level --seed=20260727
  # Checkpoint/restore (sequential paths) and the live migration cell:
  # worker quiesce, save/rebuild/restore, resume — all in-process
  # threads, so TSan sees the whole handshake.
  ./build-tsan/test_ckpt
  ./build-tsan/migrate_churn --threads=4 --ops=10000 --batch=8
  ./build-tsan/test_stress_matrix
  ./build-tsan/stress_runner --structure=all --scenario=all --threads=8 \
    --ops=2000
  ./build-tsan/stress_runner --structure=sharded:level --scenario=oversub \
    --threads=8 --ops=2000 --deadline=10ms
}

case "${TIER}" in
  unit|stress|smoke)
    build_tier1
    echo "== tier: ctest -L ${TIER} =="
    (cd build && ctest --output-on-failure -j "${JOBS}" -L "${TIER}")
    ;;
  svc)
    build_tier1
    run_svc
    ;;
  ckpt)
    build_tier1
    run_ckpt
    ;;
  bench-smoke)
    build_tier1
    run_bench_smoke
    ;;
  verify)
    run_verify
    ;;
  lint)
    run_lint
    ;;
  asan)
    run_asan
    ;;
  tsan)
    run_tsan
    ;;
  all)
    echo "== tier-1: configure + build + ctest =="
    build_tier1
    (cd build && ctest --output-on-failure -j "${JOBS}")
    run_svc
    run_ckpt
    run_bench_smoke
    run_verify
    run_lint
    run_asan
    run_tsan
    ;;
  *)
    echo "usage: $0 [unit|stress|smoke|svc|ckpt|bench-smoke|verify|lint|asan|tsan]" >&2
    exit 2
    ;;
esac

echo "check.sh: ${TIER} green"
