#!/usr/bin/env python3
"""Validate levelarray-bench-v1 reports: the one checker both the
bench-smoke tier (scripts/check.sh) and the CI bench-artifacts job run,
so the schema contract cannot drift between the two copies.

Usage: validate_bench_json.py REPORT.json [REPORT.json ...]
Exits nonzero if any report fails to parse, misses the schema tag, has
no runs, or has a run without positive ops_per_sec.
"""
import json
import sys


def validate(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "levelarray-bench-v1", (
        f"{path}: schema is {doc.get('schema')!r}")
    assert doc["runs"], f"{path}: no runs"
    for run in doc["runs"]:
        assert isinstance(run.get("structure"), str), f"{path}: {run}"
        ops = run["ops_per_sec"]
        assert ops is not None and ops > 0, f"{path}: ops_per_sec {ops}: {run}"
    print(f"{path}: ok ({len(doc['runs'])} run(s), ops/s nonzero)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for report in sys.argv[1:]:
        validate(report)
