#!/usr/bin/env python3
"""Validate levelarray-bench-v1 reports: the one checker both the
bench-smoke tier (scripts/check.sh) and the CI bench-artifacts job run,
so the schema contract cannot drift between the two copies.

Usage: validate_bench_json.py [--scaling-gate=T] REPORT.json [...]
Exits nonzero if any report fails to parse, misses the schema tag, has
no runs, or has a run without positive ops_per_sec.

--scaling-gate=T additionally asserts the scale-layer acceptance bar on
the given reports: at thread count T, the sharded:level run must be at
least as fast as the flat level run (the claim BENCH_scaling.json
commits to).
"""
import json
import sys


def validate(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "levelarray-bench-v1", (
        f"{path}: schema is {doc.get('schema')!r}")
    assert doc["runs"], f"{path}: no runs"
    for run in doc["runs"]:
        assert isinstance(run.get("structure"), str), f"{path}: {run}"
        ops = run["ops_per_sec"]
        assert ops is not None and ops > 0, f"{path}: ops_per_sec {ops}: {run}"
    print(f"{path}: ok ({len(doc['runs'])} run(s), ops/s nonzero)")
    return doc


def check_scaling_gate(path: str, doc: dict, threads: int) -> None:
    ops = {}
    for run in doc["runs"]:
        if run.get("threads") == threads:
            ops[run["structure"]] = run["ops_per_sec"]
    assert "level" in ops and "sharded:level" in ops, (
        f"{path}: --scaling-gate={threads} needs level and sharded:level "
        f"runs at {threads} threads (have {sorted(ops)})")
    assert ops["sharded:level"] >= ops["level"], (
        f"{path}: sharded:level ({ops['sharded:level']:.0f} ops/s) is "
        f"slower than level ({ops['level']:.0f} ops/s) at {threads} threads")
    print(f"{path}: scaling gate ok (sharded:level "
          f"{ops['sharded:level'] / ops['level']:.2f}x level "
          f"at {threads} threads)")


if __name__ == "__main__":
    gate = None
    reports = []
    for arg in sys.argv[1:]:
        if arg.startswith("--scaling-gate="):
            gate = int(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            sys.exit(f"unknown flag {arg}\n\n{__doc__}")
        else:
            reports.append(arg)
    if not reports:
        sys.exit(__doc__)
    for report in reports:
        parsed = validate(report)
        if gate is not None:
            check_scaling_gate(report, parsed, gate)
