#!/usr/bin/env python3
"""Validate levelarray-bench-v1 reports: the one checker both the
bench-smoke tier (scripts/check.sh) and the CI bench-artifacts job run,
so the schema contract cannot drift between the two copies.

Usage: validate_bench_json.py [--scaling-gate=T] [--batch-gate=B]
                              [--svc-gate=B] [--migrate-gate]
                              REPORT.json [...]
Exits nonzero if any report fails to parse, misses the schema tag, has
no runs, has a run without positive ops_per_sec, or carries a malformed
optional batch field (must be an integer >= 1 when present).

--scaling-gate=T additionally asserts the scale-layer acceptance bar on
the given reports: at thread count T, the sharded:level run must be at
least as fast as the flat level run (the claim BENCH_scaling.json
commits to). Only batch=1 (or batch-less) runs participate.

--batch-gate=B asserts the batch-amortization acceptance bar (the claim
BENCH_batch.json commits to): at the highest thread count where
sharded:level has both a batch=1 and a batch=B run, the batch=B run
must deliver at least 1.5x the batch=1 ops/s.

--svc-gate=B asserts the rename-service daemon's acceptance bar (the
claim BENCH_svc.json commits to): the multi-process svc:sharded:level
run at batch=B must deliver at least SVC_RATIO_FLOOR of the in-process
sharded:level baseline in the same report. The wire protocol costs two
ring hops and a server-side execution per exchange, so the floor is a
sanity bound against pathological regressions (a deadlocking ring or a
park storm shows up as orders of magnitude, not percent).

--migrate-gate asserts the live re-sharding migration acceptance bar
(the claim BENCH_migrate.json commits to): the report must carry a
pre-migration run and a post-migration run, the migration must have
carried a nonzero hold set across a measured nonzero pause with exactly
zero invariant failures, and post-migration throughput must hold at
least MIGRATE_RATIO_FLOOR of the pre-migration rate (the structure
changed shape underneath the clients, so parity is not demanded — but a
migration that wedges the service shows up as orders of magnitude).
"""
import json
import sys

BATCH_SPEEDUP_FLOOR = 1.5
# Measured ~0.02-0.05x on the 1-core reference container at batch=16,
# clients=4; the floor leaves ~4-10x headroom for load noise.
SVC_RATIO_FLOOR = 0.005
# Post-migration vs pre-migration throughput: measured ~0.7-1.1x on the
# reference container (sharded:linear behind the same wire); the floor
# only rules out a wedged or thrashing post-migration service.
MIGRATE_RATIO_FLOOR = 0.05


def run_batch(run: dict) -> int:
    """The run's batch size; pre-batch reports carry no field (= 1)."""
    return run.get("batch", 1)


def validate(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "levelarray-bench-v1", (
        f"{path}: schema is {doc.get('schema')!r}")
    assert doc["runs"], f"{path}: no runs"
    for run in doc["runs"]:
        assert isinstance(run.get("structure"), str), f"{path}: {run}"
        ops = run["ops_per_sec"]
        assert ops is not None and ops > 0, f"{path}: ops_per_sec {ops}: {run}"
        batch = run_batch(run)
        assert isinstance(batch, int) and batch >= 1, (
            f"{path}: batch {batch!r}: {run}")
        # Bounded-wait accounting (optional; emitted by --deadline runs):
        # timeouts is a count, timeout_rate a fraction, and a run that
        # reports timeouts without a deadline in force is malformed.
        if "timeouts" in run:
            timeouts = run["timeouts"]
            assert isinstance(timeouts, int) and timeouts >= 0, (
                f"{path}: timeouts {timeouts!r}: {run}")
            if timeouts > 0:
                assert run.get("deadline_ns", 0) > 0, (
                    f"{path}: {timeouts} timeout(s) without a deadline: "
                    f"{run}")
        if "timeout_rate" in run:
            rate = run["timeout_rate"]
            assert (isinstance(rate, (int, float))
                    and 0.0 <= rate <= 1.0), (
                f"{path}: timeout_rate {rate!r}: {run}")
    print(f"{path}: ok ({len(doc['runs'])} run(s), ops/s nonzero)")
    return doc


def check_scaling_gate(path: str, doc: dict, threads: int) -> None:
    ops = {}
    for run in doc["runs"]:
        if run.get("threads") == threads and run_batch(run) == 1:
            ops[run["structure"]] = run["ops_per_sec"]
    assert "level" in ops and "sharded:level" in ops, (
        f"{path}: --scaling-gate={threads} needs level and sharded:level "
        f"runs at {threads} threads (have {sorted(ops)})")
    assert ops["sharded:level"] >= ops["level"], (
        f"{path}: sharded:level ({ops['sharded:level']:.0f} ops/s) is "
        f"slower than level ({ops['level']:.0f} ops/s) at {threads} threads")
    print(f"{path}: scaling gate ok (sharded:level "
          f"{ops['sharded:level'] / ops['level']:.2f}x level "
          f"at {threads} threads)")


def check_batch_gate(path: str, doc: dict, batch: int) -> None:
    assert batch > 1, f"--batch-gate={batch}: gate batch must exceed 1"
    # ops[(threads, batch)] for the gated structure.
    ops = {}
    for run in doc["runs"]:
        if run.get("structure") == "sharded:level":
            ops[(run.get("threads"), run_batch(run))] = run["ops_per_sec"]
    paired = sorted(t for (t, b) in ops
                    if b == 1 and (t, batch) in ops and t is not None)
    assert paired, (
        f"{path}: --batch-gate={batch} needs sharded:level runs at both "
        f"batch=1 and batch={batch} for a common thread count "
        f"(have {sorted(ops)})")
    threads = paired[-1]
    single, batched = ops[(threads, 1)], ops[(threads, batch)]
    speedup = batched / single
    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"{path}: sharded:level batch={batch} is only {speedup:.2f}x "
        f"batch=1 at {threads} threads ({batched:.0f} vs {single:.0f} "
        f"ops/s; floor {BATCH_SPEEDUP_FLOOR}x)")
    print(f"{path}: batch gate ok (sharded:level batch={batch} "
          f"{speedup:.2f}x batch=1 at {threads} threads)")


def check_svc_gate(path: str, doc: dict, batch: int) -> None:
    svc = baseline = None
    for run in doc["runs"]:
        if run_batch(run) != batch:
            continue
        if run.get("structure") == "svc:sharded:level":
            svc = run["ops_per_sec"]
        elif run.get("structure") == "sharded:level":
            baseline = run["ops_per_sec"]
    assert svc is not None and baseline is not None, (
        f"{path}: --svc-gate={batch} needs a svc:sharded:level run and a "
        f"sharded:level baseline at batch={batch} "
        f"(have {sorted(r.get('structure') for r in doc['runs'])})")
    ratio = svc / baseline
    assert ratio >= SVC_RATIO_FLOOR, (
        f"{path}: svc:sharded:level is only {ratio:.4f}x the in-process "
        f"baseline at batch={batch} ({svc:.0f} vs {baseline:.0f} ops/s; "
        f"floor {SVC_RATIO_FLOOR}x)")
    print(f"{path}: svc gate ok (svc:sharded:level {ratio:.3f}x the "
          f"in-process baseline at batch={batch})")


def check_migrate_gate(path: str, doc: dict) -> None:
    pre = post = None
    for run in doc["runs"]:
        if run.get("mode") == "pre-migration":
            pre = run
        elif run.get("mode") == "post-migration":
            post = run
    assert pre is not None and post is not None, (
        f"{path}: --migrate-gate needs a pre-migration and a "
        f"post-migration run "
        f"(have {sorted(r.get('mode') for r in doc['runs'])})")
    carried = post.get("names_migrated", 0)
    assert isinstance(carried, int) and carried > 0, (
        f"{path}: migration carried no names (names_migrated "
        f"{carried!r}) — the run never held state across the boundary")
    pause = post.get("migrate_pause_ns", 0)
    assert isinstance(pause, int) and pause > 0, (
        f"{path}: migrate_pause_ns {pause!r} — the pause was not measured")
    migrations = post.get("migrations", 0)
    assert migrations == 1, (
        f"{path}: expected exactly 1 migration, report carries "
        f"{migrations!r}")
    bad = post.get("invariant_failures", None)
    assert bad == 0, (
        f"{path}: invariant_failures {bad!r} — the migration-spanning "
        f"trace must replay with zero violations")
    ratio = post["ops_per_sec"] / pre["ops_per_sec"]
    assert ratio >= MIGRATE_RATIO_FLOOR, (
        f"{path}: post-migration throughput is only {ratio:.4f}x "
        f"pre-migration ({post['ops_per_sec']:.0f} vs "
        f"{pre['ops_per_sec']:.0f} ops/s; floor {MIGRATE_RATIO_FLOOR}x)")
    print(f"{path}: migrate gate ok ({carried} name(s) carried, "
          f"{pause / 1e6:.3f}ms pause, post {ratio:.2f}x pre)")


if __name__ == "__main__":
    gate = None
    batch_gate = None
    svc_gate = None
    migrate_gate = False
    reports = []
    for arg in sys.argv[1:]:
        if arg.startswith("--scaling-gate="):
            gate = int(arg.split("=", 1)[1])
        elif arg.startswith("--batch-gate="):
            batch_gate = int(arg.split("=", 1)[1])
        elif arg.startswith("--svc-gate="):
            svc_gate = int(arg.split("=", 1)[1])
        elif arg == "--migrate-gate":
            migrate_gate = True
        elif arg.startswith("--"):
            sys.exit(f"unknown flag {arg}\n\n{__doc__}")
        else:
            reports.append(arg)
    if not reports:
        sys.exit(__doc__)
    for report in reports:
        parsed = validate(report)
        if gate is not None:
            check_scaling_gate(report, parsed, gate)
        if batch_gate is not None:
            check_batch_gate(report, parsed, batch_gate)
        if svc_gate is not None:
            check_svc_gate(report, parsed, svc_gate)
        if migrate_gate:
            check_migrate_gate(report, parsed)
