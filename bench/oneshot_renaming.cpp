// oneshot_renaming — the one-shot setting of Broder-Karlin [13] and
// Alistarh et al. [6], which the paper's analysis subsumes: every process
// performs exactly one Get (no Free), against an oblivious adversary.
// Expected probes O(1), worst case O(log log n) w.h.p.
//
// Sweeps n and reports average and worst-case probes next to log log n,
// so the sub-logarithmic growth is visible; also reports the final
// occupancy split across batches (the doubly-exponential decay).
#include <iostream>
#include <vector>

#include "arrays/splitter_grid.hpp"
#include "bench_util/options.hpp"
#include "sim/executor.hpp"
#include "sim/metrics.hpp"
#include "stats/table.hpp"
#include "stats/welford.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace {

void print_usage() {
  std::cout <<
      "oneshot_renaming: one-shot executions (the [6,13] setting)\n"
      "  --n=1024,4096,16384,65536   process counts to sweep\n"
      "  --ci=1               probes per batch (1 = implementation,\n"
      "                       16 = analysis constants)\n"
      "  --trials=5           independent repetitions per n (fresh seeds)\n"
      "  --with-splitter      also run the Moir-Anderson splitter grid\n"
      "                       (deterministic comparator, O(n) worst case,\n"
      "                       real threads, smaller n recommended)\n"
      "  --seed=42            base seed\n"
      "  --csv                emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto ns = opts.get_uint_list("n", {1024, 4096, 16384, 65536});
  const auto ci = opts.get_uint("ci", 1);
  const auto trials = std::max<std::uint64_t>(opts.get_uint("trials", 5), 1);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# One-shot renaming: every process performs exactly one Get "
               "(c_i = " << ci << ", " << trials << " repetitions)\n";

  stats::Table table({"n", "loglog_n", "avg_trials", "worst_trials",
                      "worst_over_loglog", "backup_gets"});
  stats::Table occupancy_table({"n", "batch", "occupied", "batch_size",
                                "fill_%"}, 2);

  for (const auto n : ns) {
    double avg_sum = 0.0;
    std::uint64_t worst = 0;
    std::uint64_t backup = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      core::LevelArrayConfig config;
      config.capacity = n;
      config.probes_per_batch = {static_cast<std::uint8_t>(ci)};
      core::LevelArray array(config);
      std::vector<sim::ProcessInput> inputs(n, sim::ProcessInput::one_shot());
      sim::Executor exec(
          array, seed + trial * 1000003 + n, std::move(inputs),
          sim::Schedule::uniform_random(static_cast<std::uint32_t>(n),
                                        static_cast<std::size_t>(n) * 64 *
                                            std::max<std::size_t>(ci, 1),
                                        seed + trial));
      exec.run();
      if (exec.completed_gets() != n) {
        std::cerr << "one-shot run did not complete: " << exec.completed_gets()
                  << "/" << n << " gets\n";
        return 1;
      }
      avg_sum += exec.get_stats().average();
      worst = std::max<std::uint64_t>(worst, exec.get_stats().worst_case());
      backup += exec.backup_gets();

      if (trial == 0) {
        const auto occupancy = exec.array().batch_occupancy();
        for (std::uint32_t b = 0;
             b < std::min<std::uint32_t>(6, exec.array().geometry().num_batches());
             ++b) {
          const auto size = exec.array().geometry().batch(b).size();
          occupancy_table.add_row(
              {std::uint64_t{n}, std::uint64_t{b}, occupancy[b],
               std::uint64_t{size},
               100.0 * static_cast<double>(occupancy[b]) /
                   static_cast<double>(size)});
        }
      }
    }
    const double loglog = static_cast<double>(sim::loglog_batches(n));
    table.add_row({std::uint64_t{n},
                   std::uint64_t{sim::loglog_batches(n)},
                   avg_sum / static_cast<double>(trials), worst,
                   static_cast<double>(worst) / loglog, backup});
  }

  if (opts.has("csv")) {
    table.print_csv(std::cout);
    std::cout << "\n";
    occupancy_table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\n# final batch occupancy (first repetition): the "
                 "doubly-exponential decay across batches\n";
    occupancy_table.print(std::cout);
  }

  if (opts.has("with-splitter")) {
    // The deterministic comparator (Moir-Anderson splitter grid) with real
    // threads: worst-case steps grow linearly in n, versus the
    // LevelArray's log log n above.
    std::cout << "\n# Moir-Anderson splitter grid (deterministic one-shot "
                 "renaming comparator)\n";
    stats::Table splitter_table(
        {"n", "avg_steps", "worst_steps", "namespace", "max_name_used"});
    for (const auto n : ns) {
      if (n > 4096) {
        std::cerr << "skipping splitter n=" << n
                  << " (quadratic memory; cap 4096)\n";
        continue;
      }
      arrays::SplitterGrid grid(static_cast<std::uint32_t>(n));
      std::vector<std::uint32_t> probes(n);
      std::vector<std::uint64_t> names(n);
      sync::SpinBarrier barrier(static_cast<std::uint32_t>(n) < 64
                                    ? static_cast<std::uint32_t>(n)
                                    : 64);
      // Thread count capped at 64; each thread performs n/threads gets
      // (one-shot per emulated process, ids distinct).
      const std::uint32_t threads = barrier.participants();
      {
        sync::ThreadGroup group;
        group.spawn(threads, [&](std::uint32_t tid) {
          barrier.wait();
          for (std::uint64_t p = tid; p < n; p += threads) {
            const auto result = grid.get(p + 1);
            probes[p] = result.probes;
            names[p] = result.name;
          }
        });
      }
      stats::Welford steps;
      std::uint64_t max_name = 0;
      for (std::uint64_t p = 0; p < n; ++p) {
        steps.add(static_cast<double>(probes[p]));
        max_name = std::max(max_name, names[p]);
      }
      splitter_table.add_row({std::uint64_t{n}, steps.mean(),
                              static_cast<std::uint64_t>(steps.max()),
                              grid.namespace_size(), max_name});
    }
    if (opts.has("csv")) {
      splitter_table.print_csv(std::cout);
    } else {
      splitter_table.print(std::cout);
    }
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
