// fig3_healing — reproduces the paper's Figure 3: the self-healing
// property. The array is initialized in a bad state (batch B0 a quarter
// full, batch B1 half full — overcrowded per Definition 2) and a typical
// register/deregister schedule runs from that state. A snapshot of each
// batch's fill percentage is taken every --snapshot-every operations
// (paper: 4000); the distribution smoothly returns to the balanced steady
// state, reaching it within ~32000 operations in the paper's runs.
//
// Output: one row per snapshot ("state" in the figure), one column per
// batch, cell = percentage of that batch's slots occupied.
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "rng/rng.hpp"
#include "sim/metrics.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "fig3_healing: Fig. 3 — batch distribution over time from a bad state\n"
      "  --structure=level      structure to heal (needs the batch-occupancy\n"
      "                         and bad-state-seeding surfaces)\n"
      "  --capacity=1024        contention bound n (array has L = 2n slots)\n"
      "  --snapshots=8          number of states to print (paper: 8)\n"
      "  --snapshot-every=4000  operations between snapshots (paper: 4000)\n"
      "  --b0-fill=0.25         initial fill of batch 0 (paper: 1/4)\n"
      "  --b1-fill=0.5          initial fill of batch 1 (paper: 1/2)\n"
      "  --batches=7            batches to display (paper plots 7)\n"
      "  --rng=marsaglia        probe RNG (marsaglia | lehmer | pcg32)\n"
      "  --seed=42              RNG seed\n"
      "  --csv                  emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto structure =
      bench::parse_algo(opts.get_string("structure", "level"));
  const auto capacity = opts.get_uint("capacity", 1024);
  const auto snapshots = opts.get_uint("snapshots", 8);
  const auto snapshot_every = opts.get_uint("snapshot-every", 4000);
  const double b0_fill = opts.get_double("b0-fill", 0.25);
  const double b1_fill = opts.get_double("b1-fill", 0.5);
  const auto batches_flag = opts.get_uint("batches", 7);
  const auto rng_kind =
      rng::parse_rng_kind(opts.get_string("rng", "marsaglia"));
  const auto seed = opts.get_uint("seed", 42);

  api::RenamerConfig rc;
  rc.capacity = capacity;
  rc.rng_kind = rng_kind;

  int status = 1;
  try {
    status = api::visit(structure, rc, [&](auto& array) {
      using Structure = std::decay_t<decltype(array)>;
      // The figure needs the bad-state-seeding, occupancy, and geometry
      // surfaces; any registered structure that exposes them heals here.
      if constexpr (api::has_batch_occupancy_v<Structure> &&
                    api::has_seed_batch_occupancy_v<Structure> &&
                    api::has_geometry_v<Structure>) {
        const auto show_batches =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                batches_flag, array.geometry().num_batches()));

        // Build the bad initial state; the seeded names form the churn
        // pool, so the schedule is compact (every held name is eventually
        // freed).
        std::vector<std::uint64_t> pool;
        const auto b0 = array.seed_batch_occupancy(
            0, static_cast<std::uint64_t>(
                   b0_fill *
                   static_cast<double>(array.geometry().batch(0).size())));
        pool.insert(pool.end(), b0.begin(), b0.end());
        if (array.geometry().num_batches() > 1) {
          const auto b1 = array.seed_batch_occupancy(
              1, static_cast<std::uint64_t>(
                     b1_fill *
                     static_cast<double>(array.geometry().batch(1).size())));
          pool.insert(pool.end(), b1.begin(), b1.end());
        }

        std::cout << "# Figure 3: self-healing — batch fill % over time\n"
                  << "# " << bench::algo_name(structure) << ", n = " << capacity
                  << ", initial B0 fill = " << b0_fill
                  << ", B1 fill = " << b1_fill << " (overcrowded: threshold "
                  << sim::overcrowding_threshold(1, capacity) << " occupants)\n"
                  << "# snapshot every " << snapshot_every << " ops\n"
                  << "# note: the 'balanced' column applies the Definition 2 "
                     "thresholds, which the paper calibrates for the analysis "
                     "constants c_i >= 16; with the implementation's c_i = 1 "
                     "the steady state sits near the deep-batch thresholds, so "
                     "occasional NOs after convergence are expected.\n";

        std::vector<std::string> headers = {"state", "ops", "balanced"};
        for (std::uint32_t b = 0; b < show_batches; ++b) {
          headers.push_back("B" + std::to_string(b) + "_%full");
        }
        stats::Table table(std::move(headers), 1);

        const auto emit_row = [&](std::uint64_t state, std::uint64_t ops_done) {
          const auto occupancy = array.batch_occupancy();
          const auto report = sim::evaluate_balance(occupancy, capacity);
          std::vector<stats::Table::Cell> row = {
              std::uint64_t{state}, std::uint64_t{ops_done},
              std::string(report.fully_balanced() ? "yes" : "NO")};
          for (std::uint32_t b = 0; b < show_batches; ++b) {
            row.push_back(100.0 * static_cast<double>(occupancy[b]) /
                          static_cast<double>(array.geometry().batch(b).size()));
          }
          table.add_row(std::move(row));
        };

        api::with_rng(rng_kind, [&](auto tag) {
          typename decltype(tag)::type rng(seed);
          // The churn schedule needs at least one held name to recycle.
          if (pool.empty()) pool.push_back(array.get(rng).name);
          emit_row(0, 0);
          for (std::uint64_t state = 1; state < snapshots; ++state) {
            for (std::uint64_t op = 0; op < snapshot_every; ++op) {
              // Typical schedule: release a random held slot, register anew.
              const std::size_t victim = rng::bounded(rng, pool.size());
              array.free(pool[victim]);
              pool[victim] = array.get(rng).name;
            }
            emit_row(state, state * snapshot_every);
          }
        });

        if (opts.has("csv")) {
          table.print_csv(std::cout);
        } else {
          table.print(std::cout);
        }
        return 0;
      } else {
        std::cerr << "fig3_healing: structure '" << structure
                  << "' has no batch-occupancy surface to plot; "
                     "pick one with batches (e.g. level)\n";
        return 1;
      }
    });
  } catch (const std::invalid_argument& e) {
    // A structure may refuse the configuration (e.g. the splitter's
    // quadratic-memory cap); fail with the reason, not a std::terminate.
    std::cerr << "fig3_healing: " << e.what() << "\n";
    return 1;
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return status;
}
