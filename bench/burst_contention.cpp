// burst_contention — thundering-herd arrival bursts: all threads release
// from a barrier simultaneously, register, deregister, and wait for the
// next round. This isolates the *contention transient* that steady-state
// churn averages away — the regime where randomized probing either
// shines (LevelArray: losers re-randomize over a 3n/2-slot batch) or
// collapses (LinearProbing: losers pile onto the same cluster).
//
// Reports per-round worst-case probes aggregated over many rounds, for
// any registered structure (--algo=all runs the full registry).
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/welford.hpp"
#include "sync/cache.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace {

void print_usage() {
  std::cout <<
      "burst_contention: synchronized arrival bursts (thundering herd)\n"
      "  --threads=8          threads per burst\n"
      "  --rounds=2000        bursts\n"
      "  --holds=8            names each thread grabs per burst\n"
      "  --size-factor=2.0    L = size-factor * (threads * holds)\n"
      "  --algo=level,random,linear ('all' = every registered structure)\n"
      "  --seed=42\n"
      "  --csv\n";
}

template <typename Array>
void run_burst(const std::string& label, Array& array, std::uint32_t threads,
               std::uint32_t rounds, std::uint32_t holds,
               la::stats::Table& table, std::uint64_t seed) {
  using namespace la;
  sync::SpinBarrier barrier(threads);
  std::vector<sync::CachePadded<stats::TrialStats>> per_thread(threads);
  // Worst case within each round, merged across rounds.
  stats::Welford round_worst;
  std::vector<sync::CachePadded<std::uint64_t>> this_round_worst(threads);

  for (std::uint32_t round = 0; round < rounds; ++round) {
    {
      sync::ThreadGroup group;
      group.spawn(threads, [&](std::uint32_t tid) {
        rng::MarsagliaXorshift rng(
            rng::mix_seed(seed + round, tid));
        barrier.wait();  // the herd thunders
        std::uint64_t worst = 0;
        std::vector<std::uint64_t> names;
        names.reserve(holds);
        for (std::uint32_t i = 0; i < holds; ++i) {
          const auto r = array.get(rng);
          names.push_back(r.name);
          per_thread[tid]->record(r.probes);
          worst = std::max<std::uint64_t>(worst, r.probes);
        }
        for (const auto name : names) array.free(name);
        *this_round_worst[tid] = worst;
      });
    }
    std::uint64_t round_max = 0;
    for (std::uint32_t tid = 0; tid < threads; ++tid) {
      round_max = std::max(round_max, *this_round_worst[tid]);
    }
    round_worst.add(static_cast<double>(round_max));
  }

  stats::TrialStats merged;
  for (auto& stats : per_thread) merged.merge(*stats);
  table.add_row({label, merged.operations(), merged.average(),
                 merged.stddev(), round_worst.mean(),
                 static_cast<std::uint64_t>(round_worst.max()), merged.p99()});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 8));
  const auto rounds = static_cast<std::uint32_t>(opts.get_uint("rounds", 2000));
  const auto holds = static_cast<std::uint32_t>(opts.get_uint("holds", 8));
  const double size_factor = opts.get_double("size-factor", 2.0);
  const auto algos = bench::expand_algos(
      opts.get_string_list("algo", {"level", "random", "linear"}));
  const auto seed = opts.get_uint("seed", 42);

  api::RenamerConfig config;
  config.capacity = static_cast<std::uint64_t>(threads) * holds;
  config.size_factor = size_factor;

  std::cout << "# Burst contention: " << threads << " threads x " << holds
            << " names per burst, " << rounds << " bursts, L = "
            << config.total_slots() << "\n";

  stats::Table table({"algo", "gets", "avg_trials", "stddev",
                      "mean_round_worst", "max_round_worst", "p99"});
  for (const auto& algo : algos) {
    try {
      api::visit(algo, config, [&](auto& array) {
        run_burst(std::string(bench::algo_name(algo)), array, threads, rounds,
                  holds, table, seed);
      });
    } catch (const std::invalid_argument& e) {
      // A structure may refuse a sweep point (e.g. the splitter's
      // quadratic-memory cap); keep the rest of the sweep's results.
      std::cerr << "warning: skipping " << algo << ": " << e.what() << "\n";
    }
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
