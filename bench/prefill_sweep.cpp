// prefill_sweep — reproduces the paper's in-text robustness claim (§6):
// "The results are similar for pre-fill percentages between 0% and 90%".
// Sweeps the pre-fill fraction at a fixed thread count for each algorithm
// and reports the three Fig. 2 trial metrics. The paper deliberately tests
// exaggerated contention (90%) to expose worst-case behaviour.
#include <iostream>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "prefill_sweep: trial metrics vs pre-fill percentage (paper §6)\n"
      "  --threads=4         worker threads\n"
      "  --ops=40000         ops per thread per point\n"
      "  --mult=1000         emulated registrants per thread\n"
      "  --prefills=0,25,50,75,90   pre-fill percentages\n"
      "  --algo=level,random,linear structures ('all' = every registered)\n"
      "  --size-factor=2.0   L = size-factor * N\n"
      "  --seed=42           base RNG seed\n"
      "  --csv               emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 4));
  const auto ops = opts.get_uint("ops", 40000);
  const auto mult = opts.get_uint("mult", 1000);
  const auto prefills = opts.get_uint_list("prefills", {0, 25, 50, 75, 90});
  const auto algos = bench::expand_algos(
      opts.get_string_list("algo", {"level", "random", "linear"}));
  const double size_factor = opts.get_double("size-factor", 2.0);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Pre-fill sweep: " << threads << " threads, N = " << mult
            << " * threads, L = " << size_factor << " * N\n";

  stats::Table table({"algo", "prefill_%", "avg_trials", "stddev",
                      "worst_global", "p99"});
  for (const auto& algo : algos) {
    for (const auto prefill_pct : prefills) {
      bench::SweepPoint point;
      point.driver.threads = threads;
      point.driver.emulation_multiplier = mult;
      point.driver.prefill = static_cast<double>(prefill_pct) / 100.0;
      point.driver.ops_per_thread = ops;
      point.driver.seed = seed;
      point.size_factor = size_factor;
      bench::RunResult result;
      try {
        result = bench::run_algo(algo, point);
      } catch (const std::invalid_argument& e) {
        // A structure may refuse a sweep point (e.g. the splitter's
        // quadratic-memory cap); keep the rest of the sweep's results.
        std::cerr << "warning: skipping " << algo << ": " << e.what() << "\n";
        continue;
      }
      table.add_row({std::string(bench::algo_name(algo)),
                     std::uint64_t{prefill_pct}, result.trials.average(),
                     result.trials.stddev(), result.trials.worst_case(),
                     result.trials.p99()});
    }
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
