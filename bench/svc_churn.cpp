// svc_churn — the rename-service daemon's multi-process harness and
// bench: forks N real client processes that churn batched Get-k/Free-k
// traffic through the shared-memory segment against one server process
// (this one), checks every client's event trace with the stress
// invariant checker, exercises the dead-client reclaim path by
// kill -9'ing a client that holds names, and reports aggregate
// throughput next to an in-process sharded:level baseline driven by the
// same loop shape (bench_util's churn driver).
//
//   svc_churn --clients=4 --ops=100000 --batch=16 --kill-one
//   svc_churn --clients=4 --json=BENCH_svc.json
//
// Process choreography (fork-before-threads, so ASan-instrumented
// children never fork a multithreaded parent):
//   1. the parent creates the anonymous MAP_SHARED segment;
//   2. every child (N churners + optionally one holder victim) is forked
//      — each constructs a svc::Client and spins on header.ready;
//   3. the parent builds the sharded structure, starts the Server, and
//      waits; children churn, verify their traces, and report ops +
//      elapsed through the segment's scratch words;
//   4. with --kill-one, the holder child parks holding names, the parent
//      SIGKILLs it, waitpid()s (kill(pid,0) sees zombies as alive), and
//      asks the server to sweep — every held name must come back.
//
// Exit status is the number of failed checks, so scripts/check.sh and CI
// gate on it directly.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "bench_util/report.hpp"
#include "bench_util/timing.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "stress/invariants.hpp"
#include "svc/client.hpp"
#include "svc/segment.hpp"
#include "svc/server.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace la;

// Scratch-word layout (svc::Header::scratch, kScratchWords = 16):
//   [0]       holder -> parent: number of names held (nonzero = parked)
//   [1]       reserved
//   [2 + 2i]  churn child i -> parent: individual ops completed
//   [3 + 2i]  churn child i -> parent: elapsed nanoseconds
constexpr std::uint32_t kMaxClients = 7;
constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

std::uint64_t ops_word(std::uint32_t i) { return 2 + 2 * std::uint64_t{i}; }
std::uint64_t ns_word(std::uint32_t i) { return 3 + 2 * std::uint64_t{i}; }

// The churn loop one client process runs: batched Free-k/Get-k against
// its svc::Client, every op recorded in a local event log that is
// replayed through the invariant checker before exit. The log is local
// to the process (cross-process uniqueness is enforced by the server's
// per-pid bitmaps and the parent's final collect()==0 check), so what
// this verifies end-to-end is the client library and wire protocol:
// names in range, no duplicate grants to this process, frees accepted
// exactly once, clean drain.
int churn(svc::SegmentView seg, std::uint32_t idx, std::uint64_t ops_target,
          std::uint64_t share, std::uint64_t batch, std::uint64_t seed) {
  svc::Client client(seg);
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, idx + 1));
  stress::EpochClock clock;
  stress::EventLog log;
  log.reserve(ops_target + 2 * share);
  std::vector<std::uint64_t> held;
  std::vector<std::uint64_t> victims(batch);
  std::vector<GetResult> got(batch);
  std::uint64_t ops = 0;

  bench::Stopwatch watch;
  while (ops < ops_target) {
    const std::size_t nfree = held.size() < batch ? held.size() : batch;
    for (std::size_t j = 0; j < nfree; ++j) {
      const std::uint64_t victim = rng::bounded(rng, held.size());
      victims[j] = held[victim];
      held[victim] = held.back();
      held.pop_back();
      // Free tickets before the release (see event_log.hpp).
      log.record(clock, idx, stress::Op::kFree, victims[j]);
    }
    if (nfree != 0) {
      client.free_batch(victims.data(), nfree);
      ops += nfree;
    }
    std::size_t want = batch;
    if (held.size() + want > share) want = share - held.size();
    sync::Backoff backoff;
    while (want != 0) {
      const std::size_t granted = client.get_batch(rng, got.data(), want);
      for (std::size_t j = 0; j < granted; ++j) {
        log.record(clock, idx, stress::Op::kGet, got[j].name);
        held.push_back(got[j].name);
      }
      ops += granted;
      want -= granted;
      if (want != 0) backoff.pause();
    }
  }
  for (const auto name : held) {
    log.record(clock, idx, stress::Op::kFree, name);
    client.free(name);
  }
  held.clear();
  const double elapsed = watch.elapsed_seconds();

  seg.header().scratch[ops_word(idx)].store(ops, std::memory_order_relaxed);
  seg.header().scratch[ns_word(idx)].store(
      static_cast<std::uint64_t>(elapsed * static_cast<double>(kNsPerSec)),
      std::memory_order_relaxed);

  std::vector<stress::Event> trace = log.events();
  stress::CheckConfig check;
  check.total_slots = client.total_slots();
  check.max_concurrent = share;
  check.expect_empty_at_end = true;
  const stress::InvariantReport report = stress::check_trace(trace, check);
  for (const auto& violation : report.violations) {
    std::fprintf(stderr, "violation [client %u] %s\n", idx,
                 violation.c_str());
  }
  return report.ok() ? 0 : 2;
}

// The --kill-one victim: grab `hold` names, announce them through
// scratch[0], then park until SIGKILL. Never exits on its own.
[[noreturn]] void hold_forever(svc::SegmentView seg, std::uint64_t hold,
                               std::uint64_t seed) {
  svc::Client client(seg);
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, 0xDEADu));
  std::vector<GetResult> got(hold);
  std::size_t have = 0;
  sync::Backoff backoff;
  while (have < hold) {
    const std::size_t granted =
        client.get_batch(rng, got.data() + have, hold - have);
    have += granted;
    if (have < hold) backoff.pause();
  }
  seg.header().scratch[0].store(have, std::memory_order_release);
  for (;;) std::this_thread::yield();  // parked mid-hold until SIGKILL
}

// Run `fn` on a joined thread, so its ring attachment is released by the
// thread-exit hook before the child leaves via _exit (which skips TLS
// destructors on the main thread).
int on_worker_thread(int (*fn)(svc::SegmentView, std::uint32_t,
                               std::uint64_t, std::uint64_t, std::uint64_t,
                               std::uint64_t),
                     svc::SegmentView seg, std::uint32_t idx,
                     std::uint64_t ops, std::uint64_t share,
                     std::uint64_t batch, std::uint64_t seed) {
  int rc = 4;
  std::thread worker([&] { rc = fn(seg, idx, ops, share, batch, seed); });
  worker.join();
  return rc;
}

void print_usage() {
  std::printf(
      "svc_churn: multi-process rename-service churn + reclaim harness\n"
      "  --clients=4      forked client processes (1..%u)\n"
      "  --ops=100000     individual Get+Free ops per client\n"
      "  --batch=16       names per Get-k/Free-k exchange\n"
      "  --mult=64        share of the contention bound per client\n"
      "  --ring-depth=8   request/response ring slots per client\n"
      "  --kill-one       fork one extra holder and SIGKILL it mid-hold\n"
      "  --hold=32        names the --kill-one victim holds\n"
      "  --seed=42        base RNG seed\n"
      "  --json=<path>    write the levelarray-bench-v1 report (includes\n"
      "                   an in-process sharded:level baseline)\n",
      kMaxClients);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto clients =
      static_cast<std::uint32_t>(opts.get_uint("clients", 4));
  const std::uint64_t ops_target = opts.get_uint("ops", 100000);
  std::uint64_t batch = opts.get_uint("batch", 16);
  if (batch == 0) batch = 1;
  const std::uint64_t mult = opts.get_uint("mult", 64);
  const auto ring_depth =
      static_cast<std::uint32_t>(opts.get_uint("ring-depth", 8));
  const bool kill_one = opts.has("kill-one");
  const std::uint64_t hold = opts.get_uint("hold", 32);
  const std::uint64_t seed = opts.get_uint("seed", 42);
  const std::string json_path = opts.get_string("json", "");

  if (clients == 0 || clients > kMaxClients) {
    std::fprintf(stderr, "svc_churn: --clients must be 1..%u\n", kMaxClients);
    return 1;
  }
  const std::uint64_t share = mult == 0 ? 1 : mult;
  const std::uint64_t capacity =
      share * clients + (kill_one ? hold : 0);

  // Two rings per client process (the Client's shared ring + its worker
  // thread's dedicated ring), plus slack for the holder.
  svc::SegmentConfig seg_config;
  seg_config.max_clients = 2 * (clients + (kill_one ? 1 : 0)) + 2;
  seg_config.ring_depth = ring_depth;
  svc::Segment segment(seg_config);
  svc::SegmentView seg = segment.view();

  // Fork every child BEFORE any thread exists in this process.
  std::vector<pid_t> children;
  for (std::uint32_t i = 0; i < clients; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("svc_churn: fork");
      return 1;
    }
    if (pid == 0) {
      ::_exit(on_worker_thread(churn, seg, i, ops_target, share, batch,
                               seed));
    }
    children.push_back(pid);
  }
  pid_t holder = -1;
  if (kill_one) {
    holder = ::fork();
    if (holder < 0) {
      std::perror("svc_churn: fork");
      return 1;
    }
    if (holder == 0) {
      std::thread worker([&] { hold_forever(seg, hold, seed); });
      worker.join();  // unreachable
      ::_exit(4);
    }
  }

  // Now threads: the sharded structure and the server workers.
  scale::ShardedConfig sharded;
  sharded.shards = 8;
  core::LevelArrayConfig level;
  level.capacity = (capacity + sharded.shards - 1) / sharded.shards;
  scale::ShardedRenamer<core::LevelArray> structure(
      sharded,
      [&level](std::uint32_t) {
        return std::make_unique<core::LevelArray>(level);
      });
  svc::Server<scale::ShardedRenamer<core::LevelArray>> server(seg, structure);
  server.start();

  int failures = 0;

  // Reap the churners (holder stays parked).
  for (std::uint32_t i = 0; i < clients; ++i) {
    int status = 0;
    if (::waitpid(children[i], &status, 0) != children[i] ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "svc_churn: client %u failed (status %d)\n", i,
                   status);
      ++failures;
    }
  }

  std::uint64_t reclaimed = 0;
  if (kill_one) {
    // Wait until the victim provably holds names, kill it mid-hold, and
    // reap it BEFORE sweeping — a zombie still "exists" to kill(pid, 0).
    sync::Backoff backoff;
    while (seg.header().scratch[0].load(std::memory_order_acquire) == 0) {
      backoff.pause();
    }
    const std::uint64_t victim_holds =
        seg.header().scratch[0].load(std::memory_order_acquire);
    ::kill(holder, SIGKILL);
    int status = 0;
    ::waitpid(holder, &status, 0);
    server.request_sweep();
    const svc::ServerStats stats = server.stats();
    reclaimed = stats.reclaimed_names;
    if (stats.reclaimed_names != victim_holds || stats.reclaims == 0) {
      std::fprintf(stderr,
                   "svc_churn: reclaim mismatch: victim held %llu, server "
                   "recovered %llu across %llu sweep(s)\n",
                   static_cast<unsigned long long>(victim_holds),
                   static_cast<unsigned long long>(stats.reclaimed_names),
                   static_cast<unsigned long long>(stats.reclaims));
      ++failures;
    }
  }

  // Quiescence: every churner drained, every victim name reclaimed — the
  // structure must agree that nothing is held.
  server.request_sweep();
  {
    std::vector<std::uint64_t> leftovers;
    if (structure.collect(leftovers) != 0) {
      std::fprintf(stderr, "svc_churn: %zu name(s) leaked at quiescence\n",
                   leftovers.size());
      ++failures;
    }
  }
  if (!server.error().empty()) {
    std::fprintf(stderr, "svc_churn: server worker died: %s\n",
                 server.error().c_str());
    ++failures;
  }

  // Aggregate client telemetry.
  std::uint64_t total_ops = 0;
  std::uint64_t slowest_ns = 0;
  for (std::uint32_t i = 0; i < clients; ++i) {
    total_ops +=
        seg.header().scratch[ops_word(i)].load(std::memory_order_relaxed);
    const std::uint64_t ns =
        seg.header().scratch[ns_word(i)].load(std::memory_order_relaxed);
    if (ns > slowest_ns) slowest_ns = ns;
  }
  const double elapsed =
      static_cast<double>(slowest_ns) / static_cast<double>(kNsPerSec);
  const double ops_per_sec =
      elapsed > 0.0 ? static_cast<double>(total_ops) / elapsed : 0.0;
  const svc::ServerStats stats = server.stats();

  std::printf(
      "# svc_churn: %u client process(es), batch=%llu, N=%llu, depth=%u\n",
      clients, static_cast<unsigned long long>(batch),
      static_cast<unsigned long long>(capacity), ring_depth);
  std::printf(
      "svc:sharded:level  ops=%llu  elapsed=%.3fs  ops/s=%.0f  "
      "requests=%llu  pending=%llu  reclaimed=%llu\n",
      static_cast<unsigned long long>(total_ops), elapsed, ops_per_sec,
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.pending_parked),
      static_cast<unsigned long long>(reclaimed));

  // In-process baseline: the same churn shape (threads, batch, ops,
  // contention bound) against sharded:level without the wire protocol —
  // what the --svc-gate ratio in validate_bench_json.py is taken against.
  bench::SweepPoint point;
  point.driver.threads = clients;
  point.driver.emulation_multiplier = share;
  point.driver.ops_per_thread = ops_target;
  point.driver.batch = batch;
  point.driver.seed = seed;
  point.driver.prefill = 0.5;
  const bench::RunResult baseline = bench::run_algo("sharded:level", point);
  std::printf("sharded:level      ops=%llu  elapsed=%.3fs  ops/s=%.0f  "
              "(in-process baseline)\n",
              static_cast<unsigned long long>(baseline.total_ops),
              baseline.elapsed_seconds, baseline.throughput_ops_per_sec);

  if (!json_path.empty()) {
    bench::BenchReport report("svc_churn");
    report.add_run()
        .set("structure", "svc:sharded:level")
        .set("mode", "multiprocess")
        .set("threads", clients)  // client processes
        .set("batch", static_cast<std::uint64_t>(batch))
        .set_object("config", bench::JsonObject()
                                  .set("clients", clients)
                                  .set("ops_per_client", ops_target)
                                  .set("capacity", capacity)
                                  .set("ring_depth", ring_depth)
                                  .set("kill_one", kill_one)
                                  .set("seed", seed))
        .set("ops_per_sec", ops_per_sec)
        .set("total_ops", total_ops)
        .set("elapsed_seconds", elapsed)
        .set("server_requests", stats.requests)
        .set("server_pending_parked", stats.pending_parked)
        .set("server_idle_parks", stats.idle_parks)
        .set("reclaims", stats.reclaims)
        .set("reclaimed_names", stats.reclaimed_names)
        .set("ok", failures == 0);
    report.add_run()
        .set("structure", "sharded:level")
        .set("mode", "inprocess")
        .set("threads", clients)
        .set("batch", static_cast<std::uint64_t>(batch))
        .set_object("config", bench::JsonObject()
                                  .set("ops_per_thread", ops_target)
                                  .set("capacity", capacity)
                                  .set("seed", seed))
        .set("ops_per_sec", baseline.throughput_ops_per_sec)
        .set("total_ops", baseline.total_ops)
        .set("elapsed_seconds", baseline.elapsed_seconds)
        .set("gate_wait_rounds", baseline.gate_wait_rounds)
        .set("gate_parks", baseline.gate_parks)
        .set_object("probes", bench::probe_stats_json(baseline.trials));
    if (!report.write_file(json_path, std::cerr)) return 126;
  }

  for (const auto& key : opts.unused_keys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  if (failures == 0) {
    std::printf("svc_churn: OK\n");
  } else {
    std::printf("svc_churn: %d check(s) FAILED\n", failures);
  }
  return failures > 125 ? 125 : failures;
}
