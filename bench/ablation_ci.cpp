// ablation_ci — reproduces the paper's in-text design-choice note (§6):
// "We tested the algorithm with values c_i > 1 and found the general
// behavior to be similar; its performance is slightly lower given the
// extra calls in each batch." Sweeps the per-batch probe count c_i for the
// LevelArray and reports trial metrics plus throughput, so both halves of
// the claim (similar shape, slightly lower throughput) are checkable.
#include <iostream>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "ablation_ci: LevelArray probe-count-per-batch (c_i) ablation\n"
      "  --threads=4         worker threads\n"
      "  --ops=40000         ops per thread per point\n"
      "  --mult=1000         emulated registrants per thread\n"
      "  --prefill=0.5       pre-fill fraction\n"
      "  --ci=1,2,3,4        c_i values to sweep (uniform across batches)\n"
      "  --seconds=0.3       extra timed run per point for throughput\n"
      "  --seed=42           base RNG seed\n"
      "  --csv               emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 4));
  const auto ops = opts.get_uint("ops", 40000);
  const auto mult = opts.get_uint("mult", 1000);
  const double prefill = opts.get_double("prefill", 0.5);
  const auto ci_values = opts.get_uint_list("ci", {1, 2, 3, 4});
  const double seconds = opts.get_double("seconds", 0.3);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# c_i ablation: LevelArray, " << threads << " threads, N = "
            << mult << " * threads, prefill = " << prefill << "\n"
            << "# paper: behaviour similar for c_i > 1, throughput slightly "
               "lower\n";

  stats::Table table({"c_i", "avg_trials", "stddev", "worst_global", "p99",
                      "ops_per_sec"});
  for (const auto ci : ci_values) {
    bench::SweepPoint point;
    point.driver.threads = threads;
    point.driver.emulation_multiplier = mult;
    point.driver.prefill = prefill;
    point.driver.ops_per_thread = ops;
    point.driver.seed = seed;
    point.probes_per_batch = {static_cast<std::uint8_t>(ci)};
    const auto result = bench::run_algo("level", point);

    // Separate timed run for throughput (op-count runs measure elapsed
    // time too, but a fixed window matches the paper's methodology).
    bench::SweepPoint timed = point;
    timed.driver.ops_per_thread = 0;
    timed.driver.seconds = seconds;
    const auto timed_result = bench::run_algo("level", timed);

    table.add_row({std::uint64_t{ci}, result.trials.average(),
                   result.trials.stddev(), result.trials.worst_case(),
                   result.trials.p99(), timed_result.throughput_ops_per_sec});
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
