// micro_ops — google-benchmark micro-latency suite for the individual
// operations: Get/Free pairs at varying load for every algorithm, Collect
// at varying sizes, and the raw substrate costs (TAS, RNG draw) that bound
// them. Complements the figure benches with per-operation nanosecond
// numbers.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "arrays/linear_probing_array.hpp"
#include "arrays/random_array.hpp"
#include "arrays/sequential_scan_array.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "sync/tas_cell.hpp"

namespace {

using namespace la;

// ------------------------------------------------------------- substrates

void BM_TasCellAcquireRelease(benchmark::State& state) {
  sync::TasCell cell;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.try_acquire());
    cell.release();
  }
}
BENCHMARK(BM_TasCellAcquireRelease);

void BM_MarsagliaDraw(benchmark::State& state) {
  rng::MarsagliaXorshift rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_MarsagliaDraw);

void BM_LehmerDraw(benchmark::State& state) {
  rng::Lehmer rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_LehmerDraw);

void BM_BoundedDraw(benchmark::State& state) {
  rng::MarsagliaXorshift rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::bounded(rng, 1536));
  }
}
BENCHMARK(BM_BoundedDraw);

// ------------------------------------------------- Get/Free pair latency

// Arg(0): capacity n. Arg(1): pre-load percent. Each iteration is one
// Get+Free pair on an array pre-loaded to the requested fraction.
template <typename Array>
void run_get_free(benchmark::State& state, Array& array,
                  std::uint64_t preload) {
  rng::MarsagliaXorshift rng(7);
  std::vector<std::uint64_t> held;
  for (std::uint64_t i = 0; i < preload; ++i) {
    held.push_back(array.get(rng).name);
  }
  std::uint64_t probes = 0;
  for (auto _ : state) {
    const auto result = array.get(rng);
    probes += result.probes;
    array.free(result.name);
  }
  state.counters["probes/op"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kAvgIterations);
  for (const auto name : held) array.free(name);
}

void BM_LevelArrayGetFree(benchmark::State& state) {
  core::LevelArrayConfig config;
  config.capacity = static_cast<std::uint64_t>(state.range(0));
  core::LevelArray array(config);
  const auto preload =
      config.capacity * static_cast<std::uint64_t>(state.range(1)) / 100;
  run_get_free(state, array, preload);
}
BENCHMARK(BM_LevelArrayGetFree)
    ->Args({1000, 0})
    ->Args({1000, 50})
    ->Args({1000, 90})
    ->Args({100000, 50});

void BM_RandomArrayGetFree(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  arrays::RandomArray array(2 * n, n);
  run_get_free(state, array, n * static_cast<std::uint64_t>(state.range(1)) / 100);
}
BENCHMARK(BM_RandomArrayGetFree)->Args({1000, 50})->Args({1000, 90});

void BM_LinearProbingGetFree(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  arrays::LinearProbingArray array(2 * n, n);
  run_get_free(state, array, n * static_cast<std::uint64_t>(state.range(1)) / 100);
}
BENCHMARK(BM_LinearProbingGetFree)->Args({1000, 50})->Args({1000, 90});

void BM_SequentialScanGetFree(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  arrays::SequentialScanArray array(2 * n, n);
  run_get_free(state, array, n * static_cast<std::uint64_t>(state.range(1)) / 100);
}
BENCHMARK(BM_SequentialScanGetFree)->Args({1000, 50});

// ---------------------------------------------------------------- Collect

void BM_Collect(benchmark::State& state) {
  core::LevelArrayConfig config;
  config.capacity = static_cast<std::uint64_t>(state.range(0));
  core::LevelArray array(config);
  rng::MarsagliaXorshift rng(3);
  std::vector<std::uint64_t> held;
  for (std::uint64_t i = 0; i < config.capacity / 2; ++i) {
    held.push_back(array.get(rng).name);
  }
  std::vector<std::uint64_t> out;
  out.reserve(array.total_slots());
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(array.collect(out));
  }
  state.counters["slots"] =
      benchmark::Counter(static_cast<double>(array.total_slots()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(array.total_slots()));
  for (const auto name : held) array.free(name);
}
BENCHMARK(BM_Collect)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
