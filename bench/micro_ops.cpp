// micro_ops — google-benchmark micro-latency suite for the individual
// operations: Get/Free pairs and batched Get-k/Free-k exchanges for every
// registered structure (registry-dispatched, so new entries are covered
// automatically), the sharded hot paths (cache park/pop, steal-drain),
// Collect at varying sizes, and the raw substrate costs (TAS, RNG draw)
// that bound them. Complements the figure benches with per-operation
// nanosecond numbers.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/tas_cell.hpp"

namespace {

using namespace la;

// ------------------------------------------------------------- substrates

void BM_TasCellAcquireRelease(benchmark::State& state) {
  sync::TasCell cell;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.try_acquire());
    cell.release();
  }
}
BENCHMARK(BM_TasCellAcquireRelease);

void BM_MarsagliaDraw(benchmark::State& state) {
  rng::MarsagliaXorshift rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_MarsagliaDraw);

void BM_LehmerDraw(benchmark::State& state) {
  rng::Lehmer rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_LehmerDraw);

void BM_BoundedDraw(benchmark::State& state) {
  rng::MarsagliaXorshift rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::bounded(rng, 1536));
  }
}
BENCHMARK(BM_BoundedDraw);

// --------------------------------------- registry-wide Get/Free latency

// One registry-standard sweep point for the latency benches: capacity n
// preloaded to 50%, the regime the figure benches churn in.
api::RenamerConfig micro_config(std::uint64_t capacity) {
  api::RenamerConfig cfg;
  cfg.capacity = capacity;
  return cfg;
}

// Each iteration is one Get+Free pair on an array pre-loaded to half
// capacity — the single-op baseline the batch benches amortize against.
template <typename Structure>
void run_get_free(benchmark::State& state, Structure& array) {
  rng::MarsagliaXorshift rng(7);
  std::vector<std::uint64_t> held;
  for (std::uint64_t i = 0; i < array.capacity() / 2; ++i) {
    held.push_back(array.get(rng).name);
  }
  std::uint64_t probes = 0;
  for (auto _ : state) {
    const auto result = array.get(rng);
    probes += result.probes;
    array.free(result.name);
  }
  state.counters["probes/op"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kAvgIterations);
  for (const auto name : held) array.free(name);
}

// Each iteration is one Get-k/Free-k exchange (native batch surface where
// the structure has one, the api fallback loop elsewhere). A gate-bounded
// structure may grant partially; retry the remainder under Backoff like
// the churn driver does. items_processed counts individual ops, so
// items/s is directly comparable with 2x the BM_GetFree rate.
template <typename Structure>
void run_batch_get_free(benchmark::State& state, Structure& array,
                        std::size_t k) {
  rng::MarsagliaXorshift rng(7);
  std::vector<std::uint64_t> held;
  for (std::uint64_t i = 0; i < array.capacity() / 2; ++i) {
    held.push_back(array.get(rng).name);
  }
  std::vector<GetResult> got(k);
  std::vector<std::uint64_t> names(k);
  for (auto _ : state) {
    std::size_t have = 0;
    sync::Backoff backoff;
    while (have < k) {
      const std::size_t granted =
          api::get_batch(array, rng, got.data() + have, k - have);
      have += granted;
      if (have < k) backoff.pause();
    }
    for (std::size_t i = 0; i < k; ++i) names[i] = got[i].name;
    api::free_batch(array, names.data(), k);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * k));
  for (const auto name : held) array.free(name);
}

// Registered at static-init via RegisterBenchmark (the BENCHMARK macro
// can't enumerate a runtime registry); benchmark_main picks these up
// exactly like the macro-registered ones above.
int register_registry_benches() {
  for (const auto& info : api::registered_structures()) {
    const std::string name(info.name);
    benchmark::RegisterBenchmark(
        ("BM_GetFree/" + name).c_str(), [name](benchmark::State& state) {
          api::visit(name, micro_config(1024),
                     [&state](auto& array) { run_get_free(state, array); });
        });
    benchmark::RegisterBenchmark(
        ("BM_BatchGetFree/" + name).c_str(),
        [name](benchmark::State& state) {
          api::visit(name, micro_config(1024), [&state](auto& array) {
            run_batch_get_free(state, array,
                               static_cast<std::size_t>(state.range(0)));
          });
        })
        ->Arg(4)
        ->Arg(16)
        ->Arg(64);
  }
  return 0;
}
const int kRegistryBenches = register_registry_benches();

// ------------------------------------------------- sharded hot paths

scale::ShardedRenamer<core::LevelArray> make_sharded(
    std::uint32_t cache_capacity) {
  scale::ShardedConfig config;
  config.shards = 8;
  config.cache_capacity = cache_capacity;
  return scale::ShardedRenamer<core::LevelArray>(
      config, [](std::uint32_t) {
        core::LevelArrayConfig inner;
        inner.capacity = 128;
        return std::make_unique<core::LevelArray>(inner);
      });
}

// The cached churn pair: Free parks the name in the thread's bin, the
// next Get pops it back — the hot path that makes the scale layer fast.
void BM_ShardedCacheParkPop(benchmark::State& state) {
  auto array = make_sharded(/*cache_capacity=*/16);
  rng::MarsagliaXorshift rng(7);
  std::uint64_t name = array.get(rng).name;
  for (auto _ : state) {
    array.free(name);
    name = array.get(rng).name;
  }
  array.free(name);
}
BENCHMARK(BM_ShardedCacheParkPop);

// The reclaim cycle: Free-k parks a whole batch, drain_caches() steals
// every bin back to its shard (the collect()/global-miss path), Get-k
// re-claims from the shards. Bounds the cost a collect pays per parked
// name.
void BM_ShardedStealDrain(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  auto array = make_sharded(/*cache_capacity=*/64);
  rng::MarsagliaXorshift rng(7);
  std::vector<GetResult> got(k);
  std::vector<std::uint64_t> names(k);
  std::size_t have = 0;
  sync::Backoff warmup;
  while (have < k) {
    have += api::get_batch(array, rng, got.data() + have, k - have);
    if (have < k) warmup.pause();
  }
  for (std::size_t i = 0; i < k; ++i) names[i] = got[i].name;
  for (auto _ : state) {
    array.free_batch(names.data(), k);   // park into the thread bin
    array.drain_caches();                // steal the bin back to shards
    std::size_t refill = 0;
    sync::Backoff backoff;
    while (refill < k) {
      refill += array.get_batch(rng, got.data() + refill, k - refill);
      if (refill < k) backoff.pause();
    }
    for (std::size_t i = 0; i < k; ++i) names[i] = got[i].name;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
  array.free_batch(names.data(), k);
}
BENCHMARK(BM_ShardedStealDrain)->Arg(16)->Arg(64);

// ---------------------------------------------------------------- Collect

void BM_Collect(benchmark::State& state) {
  core::LevelArrayConfig config;
  config.capacity = static_cast<std::uint64_t>(state.range(0));
  core::LevelArray array(config);
  rng::MarsagliaXorshift rng(3);
  std::vector<std::uint64_t> held;
  for (std::uint64_t i = 0; i < config.capacity / 2; ++i) {
    held.push_back(array.get(rng).name);
  }
  std::vector<std::uint64_t> out;
  out.reserve(array.total_slots());
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(array.collect(out));
  }
  state.counters["slots"] =
      benchmark::Counter(static_cast<double>(array.total_slots()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(array.total_slots()));
  for (const auto name : held) array.free(name);
}
BENCHMARK(BM_Collect)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
