// stress_runner — the concurrency stress & invariant CLI: drives any (or
// every) registered structure through the scenario matrix with real
// threads, then replays the merged per-thread event logs through the
// invariant checker. One row per (structure, scenario) cell; exit status
// is the number of failing cells, so CI and scripts can gate on it.
//
// Typical uses:
//   stress_runner                                   # full matrix, ops mode
//   stress_runner --structure=level --scenario=burst --threads=16
//   stress_runner --structure=all --threads=8 --seconds=1   # timed soak
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "bench_util/report.hpp"
#include "stats/table.hpp"
#include "stress/driver.hpp"

namespace {

void print_usage() {
  std::cout <<
      "stress_runner: scenario-matrix stress + invariant checking\n"
      "  --structure=all     structures (any registered name/alias;\n"
      "                      'all' = every registered structure)\n"
      "  --scenario=all      steady | burst | zipf | oversub | joinleave |"
      " all\n"
      "  --threads=8         real worker threads\n"
      "  --ops=20000         Get+Free ops per thread (0 = timed mode)\n"
      "  --seconds=0         timed-mode window per cell\n"
      "  --capacity=0        contention bound n (0 = max(256, 32*threads))\n"
      "  --heal-ops=0        healing-window churn ops (0 = 4*capacity)\n"
      "  --deadline=0        per-Get deadline (ns/us/ms/s suffix; 0 = block\n"
      "                      forever). Structures with the deadline surface\n"
      "                      bound each Get; oversub then over-drives demand\n"
      "                      so a nonzero timeout rate is expected\n"
      "  --rng=marsaglia     probe RNG (marsaglia | lehmer | pcg32)\n"
      "  --seed=42           base RNG seed\n"
      "  --json=<path>       also write the machine-readable report\n"
      "  --csv               emit CSV\n"
      "\n"
      "Checked invariants per cell: unique names while held, names in\n"
      "[0, total_slots), Free-before-Get per name, concurrent holds within\n"
      "the scenario bound, zero leaked slots at quiescence, collect()\n"
      "agreement, and (LevelArray) bounded deep batches after a Fig. 3\n"
      "healing window.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto structures =
      bench::expand_algos(opts.get_string_list("structure", {"all"}));
  const auto scenarios =
      stress::expand_scenarios(opts.get_string_list("scenario", {"all"}));

  stress::StressConfig base;
  base.threads = static_cast<std::uint32_t>(opts.get_uint("threads", 8));
  base.seconds = opts.get_double("seconds", 0.0);
  // --seconds alone switches to timed mode; an explicit --ops wins over
  // --seconds (say so instead of dropping the flag silently).
  base.ops_per_thread = opts.get_uint("ops", base.seconds > 0.0 ? 0 : 20000);
  if (base.seconds > 0.0 && base.ops_per_thread != 0) {
    std::cerr << "warning: --ops and --seconds both given; running in "
                 "op-count mode and ignoring --seconds\n";
  }
  base.capacity = opts.get_uint("capacity", 0);
  base.heal_ops = opts.get_uint("heal-ops", 0);
  base.deadline_ns = opts.get_duration_ns("deadline", 0);
  base.rng_kind = rng::parse_rng_kind(opts.get_string("rng", "marsaglia"));
  base.seed = opts.get_uint("seed", 42);
  const std::string json_path = opts.get_string("json", "");

  std::cout << "# Stress matrix: " << structures.size() << " structure(s) x "
            << scenarios.size() << " scenario(s), " << base.threads
            << " threads, n = " << base.effective_capacity() << ", "
            << (base.ops_per_thread != 0
                    ? std::to_string(base.ops_per_thread) + " ops/thread"
                    : std::to_string(base.seconds) + " s/cell")
            << "\n";

  bench::BenchReport report_json("stress_runner");
  stats::Table table({"structure", "scenario", "events", "gets", "peak_held",
                      "avg_trials", "worst", "backup_gets", "waits", "parks",
                      "timeouts", "to_rate", "deep_fill", "verdict"});
  int failures = 0;
  int skipped = 0;
  int executed = 0;
  for (const auto& structure : structures) {
    for (const auto scenario : scenarios) {
      stress::StressConfig cfg = base;
      cfg.structure = structure;
      cfg.scenario = scenario;
      stress::StressReport report;
      try {
        report = stress::run_stress(cfg);
      } catch (const std::invalid_argument& e) {
        // A structure may refuse a cell (e.g. the splitter's quadratic-
        // memory cap); report and keep sweeping.
        std::cerr << "warning: skipping " << structure << "/"
                  << stress::scenario_name(scenario) << ": " << e.what()
                  << "\n";
        ++skipped;
        continue;
      }
      ++executed;
      if (!report.ok()) ++failures;
      const double timeout_rate =
          report.timed_gets != 0
              ? static_cast<double>(report.timeouts) /
                    static_cast<double>(report.timed_gets)
              : 0.0;
      table.add_row(
          {std::string(bench::algo_name(structure)),
           std::string(stress::scenario_name(scenario)),
           report.invariants.events, report.invariants.gets,
           report.invariants.peak_concurrent, report.trials.average(),
           report.trials.worst_case(), report.backup_gets,
           report.wait_rounds, report.parks,
           report.timeouts, timeout_rate,
           report.balance_checked ? report.heal_max_deep_fill : 0.0,
           std::string(report.ok()           ? "OK"
                       : report.invariants.ok() ? "UNBALANCED"
                                                : "VIOLATED")});
      report_json.add_run()
          .set("structure", structure)
          .set("scenario", stress::scenario_name(scenario))
          .set("rng", rng::rng_kind_name(base.rng_kind))
          .set("threads", base.threads)
          .set_object("config",
                      bench::JsonObject()
                          .set("capacity", cfg.effective_capacity())
                          .set("ops_per_thread", base.ops_per_thread)
                          .set("seconds", base.seconds)
                          .set("seed", base.seed))
          .set("ops_per_sec",
               report.elapsed_seconds > 0.0
                   ? static_cast<double>(report.total_ops) /
                         report.elapsed_seconds
                   : 0.0)
          .set("total_ops", report.total_ops)
          .set("elapsed_seconds", report.elapsed_seconds)
          .set("events", report.invariants.events)
          .set("peak_held", report.invariants.peak_concurrent)
          .set("backup_gets", report.backup_gets)
          // Gate-refusal waiting (api::WaitStats): spin/yield retry
          // rounds and futex parks taken once both tiers were spent.
          .set("wait_rounds", report.wait_rounds)
          .set("parks", report.parks)
          // Deadline accounting: timed Gets attempted and the subset
          // refused kTimedOut. All zero when --deadline=0 or the
          // structure lacks the deadline surface.
          .set("deadline_ns", base.deadline_ns)
          .set("timed_gets", report.timed_gets)
          .set("timeouts", report.timeouts)
          .set("timeout_rate", timeout_rate)
          // Not-measured must stay distinguishable from a measured 0.0;
          // the double setter renders NaN as JSON null.
          .set("deep_fill",
               report.balance_checked
                   ? report.heal_max_deep_fill
                   : std::numeric_limits<double>::quiet_NaN())
          .set("ok", report.ok())
          .set_object("probes", bench::probe_stats_json(report.trials));
      for (const auto& violation : report.invariants.violations) {
        std::cerr << "violation [" << structure << "/"
                  << stress::scenario_name(scenario) << "] " << violation
                  << "\n";
      }
      if (report.balance_checked && !report.balanced) {
        std::cerr << "unbalanced [" << structure << "/"
                  << stress::scenario_name(scenario)
                  << "] deep-batch fill " << report.heal_max_deep_fill
                  << " after the healing window\n";
      }
    }
  }

  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  // A run that verified nothing must not look green: every cell refused
  // (e.g. capacity too small for the thread count) is a configuration
  // error, not a pass.
  if (executed == 0) {
    std::cerr << "stress_runner: every cell was skipped (" << skipped
              << "); nothing was verified\n";
    return 1;
  }
  std::cout << (failures == 0
                    ? "stress_runner: all " + std::to_string(executed) +
                          " cell(s) passed" +
                          (skipped != 0
                               ? " (" + std::to_string(skipped) + " skipped)"
                               : "") +
                          "\n"
                    : "stress_runner: " + std::to_string(failures) +
                          " cell(s) FAILED\n");

  if (!json_path.empty() && !report_json.write_file(json_path, std::cerr)) {
    return 126;
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return failures > 125 ? 125 : failures;
}
