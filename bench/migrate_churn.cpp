// migrate_churn — live re-sharding migration under churn: N in-process
// client threads drive batched Get-k/Free-k through the shared-memory
// wire protocol against one Server<ckpt::AnyRenamer>, and mid-run the
// main thread calls Server::migrate to swap the structure underneath
// them — sharded:level with S shards becomes sharded:linear with 2S
// shards (same per-shard inner capacity, so every held name still
// routes) via api::save → rebuild → api::restore → AnyRenamer::replace.
//
// Clients never learn a migration happened: names acquired before the
// swap are freed after it through the new structure (name identity is
// the api::restore contract), every request in flight during the
// quiesce parks and retries against the new shape, and the merged
// per-thread event trace — which spans the migration boundary — must
// replay cleanly through stress::check_trace.
//
//   migrate_churn --threads=4 --ops=60000 --batch=8
//   migrate_churn --threads=4 --json=BENCH_migrate.json
//
// Reported next to each other: pre-migration and post-migration
// throughput (each thread splits its op count when it first observes
// the migrated flag), the coordinator's migrate() pause, and the number
// of names carried across. Exit status is the number of failed checks,
// so scripts/check.sh and CI gate on it directly; the JSON feeds
// validate_bench_json.py --migrate-gate.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arrays/linear_probing_array.hpp"
#include "bench_util/options.hpp"
#include "bench_util/report.hpp"
#include "bench_util/timing.hpp"
#include "ckpt/any_renamer.hpp"
#include "ckpt/image.hpp"
#include "api/snapshot.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "scale/sharded.hpp"
#include "stress/invariants.hpp"
#include "svc/client.hpp"
#include "svc/segment.hpp"
#include "svc/server.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace la;

constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

struct ThreadResult {
  stress::EventLog log;
  std::uint64_t ops_pre = 0;
  std::uint64_t ops_post = 0;
  double secs_pre = 0.0;
  double secs_post = 0.0;
};

// One client thread's churn loop: batched Free-k then Get-k bounded by
// its share, every op ticketed into the local event log (Free before
// the release, Get after the grant — see stress/event_log.hpp). The
// thread splits its op/elapsed counters the first time it observes the
// migrated flag, and holds its names across the boundary: the drain at
// the end waits for the migration, so every thread's trace spans it.
void churn(svc::SegmentView seg, stress::EpochClock& clock,
           std::uint32_t idx, std::uint64_t ops_target, std::uint64_t share,
           std::uint64_t batch, std::uint64_t seed,
           std::atomic<std::uint64_t>& global_ops,
           const std::atomic<std::uint32_t>& migrated, ThreadResult& r) {
  svc::Client client(seg);
  rng::MarsagliaXorshift rng(rng::mix_seed(seed, idx + 1));
  r.log.reserve(ops_target + 2 * share);
  std::vector<std::uint64_t> held;
  std::vector<std::uint64_t> victims(batch);
  std::vector<GetResult> got(batch);
  std::uint64_t ops = 0;
  bool saw_migrate = false;

  bench::Stopwatch watch;
  // Prefill to the full share so the hold set stays near `share` for the
  // whole run — the migration always finds a substantial set of names to
  // carry across (capacity is exactly share * threads, so every thread
  // can reach its share).
  {
    sync::Backoff backoff;
    while (held.size() < share) {
      std::size_t want = batch;
      if (held.size() + want > share) want = share - held.size();
      const std::size_t granted = client.get_batch(rng, got.data(), want);
      for (std::size_t j = 0; j < granted; ++j) {
        r.log.record(clock, idx, stress::Op::kGet, got[j].name);
        held.push_back(got[j].name);
      }
      ops += granted;
      if (granted == 0) backoff.pause();
    }
  }
  while (ops < ops_target) {
    const std::size_t nfree = held.size() < batch ? held.size() : batch;
    for (std::size_t j = 0; j < nfree; ++j) {
      const std::uint64_t victim = rng::bounded(rng, held.size());
      victims[j] = held[victim];
      held[victim] = held.back();
      held.pop_back();
      r.log.record(clock, idx, stress::Op::kFree, victims[j]);
    }
    if (nfree != 0) {
      client.free_batch(victims.data(), nfree);
      ops += nfree;
    }
    std::size_t want = batch;
    if (held.size() + want > share) want = share - held.size();
    sync::Backoff backoff;
    while (want != 0) {
      const std::size_t granted = client.get_batch(rng, got.data(), want);
      for (std::size_t j = 0; j < granted; ++j) {
        r.log.record(clock, idx, stress::Op::kGet, got[j].name);
        held.push_back(got[j].name);
      }
      ops += granted;
      want -= granted;
      if (want != 0) backoff.pause();
    }
    global_ops.fetch_add(1, std::memory_order_relaxed);
    if (!saw_migrate && migrated.load(std::memory_order_acquire) != 0) {
      saw_migrate = true;
      r.ops_pre = ops;
      r.secs_pre = watch.elapsed_seconds();
    }
  }
  // Hold the boundary: do not drain until the migration has happened, so
  // every name this thread still holds is freed through the NEW
  // structure. (If the flag is already up, this falls straight through.)
  {
    sync::Backoff backoff;
    while (migrated.load(std::memory_order_acquire) == 0) backoff.pause();
  }
  for (const auto name : held) {
    r.log.record(clock, idx, stress::Op::kFree, name);
    client.free(name);
    ++ops;
  }
  held.clear();
  const double total = watch.elapsed_seconds();
  if (!saw_migrate) {  // migration raced past the loop's last check
    r.ops_pre = ops;
    r.secs_pre = total;
  }
  r.ops_post = ops - r.ops_pre;
  r.secs_post = total - r.secs_pre;
}

void print_usage() {
  std::printf(
      "migrate_churn: live re-sharding migration under client churn\n"
      "  --threads=4      in-process client threads\n"
      "  --ops=60000      individual Get+Free ops per thread\n"
      "  --batch=8        names per Get-k/Free-k exchange\n"
      "  --mult=64        share of the contention bound per thread\n"
      "  --shards=4       source shard count (target uses 2x)\n"
      "  --ring-depth=8   request/response ring slots per client\n"
      "  --seed=42        base RNG seed\n"
      "  --json=<path>    write the levelarray-bench-v1 report\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 4));
  const std::uint64_t ops_target = opts.get_uint("ops", 60000);
  std::uint64_t batch = opts.get_uint("batch", 8);
  if (batch == 0) batch = 1;
  const std::uint64_t mult = opts.get_uint("mult", 64);
  auto shards = static_cast<std::uint32_t>(opts.get_uint("shards", 4));
  if (shards == 0) shards = 1;
  const auto ring_depth =
      static_cast<std::uint32_t>(opts.get_uint("ring-depth", 8));
  const std::uint64_t seed = opts.get_uint("seed", 42);
  const std::string json_path = opts.get_string("json", "");

  if (threads == 0 || threads > 16) {
    std::fprintf(stderr, "migrate_churn: --threads must be 1..16\n");
    return 1;
  }
  const std::uint64_t share = mult == 0 ? 1 : mult;
  const std::uint64_t capacity = share * threads;
  const std::uint64_t inner_capacity = (capacity + shards - 1) / shards;

  svc::SegmentConfig seg_config;
  seg_config.max_clients = 2 * threads + 2;
  seg_config.ring_depth = ring_depth;
  svc::Segment segment(seg_config);
  svc::SegmentView seg = segment.view();

  // Source: sharded:level, S shards of ceil(capacity / S) each.
  core::LevelArrayConfig level;
  level.capacity = inner_capacity;
  scale::ShardedConfig source_config;
  source_config.shards = shards;
  auto source = std::make_unique<scale::ShardedRenamer<core::LevelArray>>(
      source_config, [&level](std::uint32_t) {
        return std::make_unique<core::LevelArray>(level);
      });
  // The target inner arrays are sized to the source's shard stride so the
  // stride (and thus every name's shard/local decomposition) is
  // preserved across the migration — the fit condition api::restore
  // checks name by name.
  const std::uint64_t stride = source->shard_stride();

  ckpt::AnyRenamer structure(std::move(source), "sharded:level");
  svc::Server<ckpt::AnyRenamer> server(seg, structure);
  server.start();

  stress::EpochClock clock;
  std::atomic<std::uint64_t> global_ops{0};
  std::atomic<std::uint32_t> migrated{0};
  std::vector<ThreadResult> results(threads);
  std::vector<std::thread> churners;
  churners.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    churners.emplace_back([&, i] {
      churn(seg, clock, i, ops_target, share, batch, seed, global_ops,
            migrated, results[i]);
    });
  }

  // Migrate mid-run: wait for ~40% of the round count, then swap the
  // structure while the clients are still churning.
  const std::uint64_t rounds_target =
      (static_cast<std::uint64_t>(threads) * ops_target) / (2 * batch + 1);
  {
    sync::Backoff backoff;
    while (global_ops.load(std::memory_order_relaxed) < (rounds_target * 2) / 5)
      backoff.pause();
  }

  int failures = 0;
  std::uint64_t names_migrated = 0;
  std::string migrate_error;
  bench::Stopwatch pause_watch;
  server.migrate([&](ckpt::AnyRenamer& s) {
    try {
      ckpt::Image image = api::save(s, s.tag());
      names_migrated = image.held.size();
      scale::ShardedConfig target_config;
      target_config.shards = 2 * shards;
      auto target = std::make_unique<
          scale::ShardedRenamer<arrays::LinearProbingArray>>(
          target_config, [&](std::uint32_t) {
            return std::make_unique<arrays::LinearProbingArray>(
                stride, inner_capacity);
          });
      api::restore(*target, image);
      s.replace(std::move(target), "sharded:linear");
    } catch (const std::exception& e) {
      migrate_error = e.what();
    }
  });
  const double pause_seconds = pause_watch.elapsed_seconds();
  migrated.store(1, std::memory_order_release);
  if (!migrate_error.empty()) {
    std::fprintf(stderr, "migrate_churn: migration failed: %s\n",
                 migrate_error.c_str());
    ++failures;
  }

  for (auto& worker : churners) worker.join();

  // The merged trace spans the boundary: pre-migration grants freed
  // post-migration must replay as one clean hold interval each.
  std::vector<const stress::EventLog*> logs;
  for (const auto& r : results) logs.push_back(&r.log);
  std::vector<stress::Event> trace = stress::merge_logs(logs);
  stress::CheckConfig check;
  check.total_slots = structure.total_slots();
  check.max_concurrent = capacity;
  check.expect_empty_at_end = true;
  const stress::InvariantReport report = stress::check_trace(trace, check);
  for (const auto& violation : report.violations) {
    std::fprintf(stderr, "violation %s\n", violation.c_str());
  }
  failures += static_cast<int>(report.violations.size());

  // Quiescence: nothing held, nothing leaked through the swap.
  server.request_sweep();
  {
    std::vector<std::uint64_t> leftovers;
    if (structure.collect(leftovers) != 0) {
      std::fprintf(stderr, "migrate_churn: %zu name(s) leaked at quiescence\n",
                   leftovers.size());
      ++failures;
    }
  }
  if (!server.error().empty()) {
    std::fprintf(stderr, "migrate_churn: server worker died: %s\n",
                 server.error().c_str());
    ++failures;
  }
  const svc::ServerStats stats = server.stats();
  if (stats.migrations != 1) {
    std::fprintf(stderr, "migrate_churn: expected 1 migration, server saw %llu\n",
                 static_cast<unsigned long long>(stats.migrations));
    ++failures;
  }
  if (names_migrated == 0) {
    std::fprintf(stderr,
                 "migrate_churn: no names were held across the migration\n");
    ++failures;
  }

  // Throughput on each side of the boundary: slowest-thread elapsed, as
  // in the other multi-worker benches.
  std::uint64_t ops_pre = 0;
  std::uint64_t ops_post = 0;
  double secs_pre = 0.0;
  double secs_post = 0.0;
  for (const auto& r : results) {
    ops_pre += r.ops_pre;
    ops_post += r.ops_post;
    if (r.secs_pre > secs_pre) secs_pre = r.secs_pre;
    if (r.secs_post > secs_post) secs_post = r.secs_post;
  }
  const double pre_ops_per_sec =
      secs_pre > 0.0 ? static_cast<double>(ops_pre) / secs_pre : 0.0;
  const double post_ops_per_sec =
      secs_post > 0.0 ? static_cast<double>(ops_post) / secs_post : 0.0;
  const auto pause_ns =
      static_cast<std::uint64_t>(pause_seconds * static_cast<double>(kNsPerSec));

  std::printf(
      "# migrate_churn: %u client thread(s), batch=%llu, N=%llu, "
      "%u->%u shards\n",
      threads, static_cast<unsigned long long>(batch),
      static_cast<unsigned long long>(capacity), shards, 2 * shards);
  std::printf("pre  svc:sharded:level   ops=%llu  ops/s=%.0f\n",
              static_cast<unsigned long long>(ops_pre), pre_ops_per_sec);
  std::printf("post svc:sharded:linear  ops=%llu  ops/s=%.0f\n",
              static_cast<unsigned long long>(ops_post), post_ops_per_sec);
  std::printf(
      "migration: %llu name(s) carried, pause=%.3fms, pending parked=%llu\n",
      static_cast<unsigned long long>(names_migrated),
      static_cast<double>(pause_ns) / 1e6,
      static_cast<unsigned long long>(stats.pending_parked));

  if (!json_path.empty()) {
    bench::BenchReport bench_report("migrate_churn");
    bench_report.add_run()
        .set("structure", "svc:sharded:level")
        .set("mode", "pre-migration")
        .set("threads", threads)
        .set("batch", static_cast<std::uint64_t>(batch))
        .set_object("config", bench::JsonObject()
                                  .set("ops_per_thread", ops_target)
                                  .set("capacity", capacity)
                                  .set("shards", shards)
                                  .set("ring_depth", ring_depth)
                                  .set("seed", seed))
        .set("ops_per_sec", pre_ops_per_sec)
        .set("total_ops", ops_pre)
        .set("elapsed_seconds", secs_pre);
    bench_report.add_run()
        .set("structure", "svc:sharded:linear")
        .set("mode", "post-migration")
        .set("threads", threads)
        .set("batch", static_cast<std::uint64_t>(batch))
        .set_object("config", bench::JsonObject()
                                  .set("ops_per_thread", ops_target)
                                  .set("capacity", 2 * capacity)
                                  .set("shards", 2 * shards)
                                  .set("ring_depth", ring_depth)
                                  .set("seed", seed))
        .set("ops_per_sec", post_ops_per_sec)
        .set("total_ops", ops_post)
        .set("elapsed_seconds", secs_post)
        .set("names_migrated", names_migrated)
        .set("migrate_pause_ns", pause_ns)
        .set("migrations", stats.migrations)
        .set("server_pending_parked", stats.pending_parked)
        .set("invariant_failures", static_cast<std::uint64_t>(failures));
    if (!bench_report.write_file(json_path, std::cerr)) return 126;
  }

  for (const auto& key : opts.unused_keys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  if (failures == 0) {
    std::printf("migrate_churn: OK\n");
  } else {
    std::printf("migrate_churn: %d check(s) FAILED\n", failures);
  }
  return failures > 125 ? 125 : failures;
}
