// collect_cost — measures the Collect() operation: the paper's analysis
// gives Theta(L) step complexity (it reads every slot), and the paper's §1
// argues the dense array layout is what makes collects fast in practice
// (sequential scans are cache-friendly). This bench reports collect
// latency as a function of L and of the number of registered names, plus
// the per-slot scan cost, confirming the linear shape.
#include <iostream>
#include <vector>

#include "arrays/bitmap_array.hpp"
#include "bench_util/options.hpp"
#include "bench_util/timing.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "stats/table.hpp"
#include "stats/welford.hpp"

namespace {

void print_usage() {
  std::cout <<
      "collect_cost: Collect() latency vs array size (Theta(L) check)\n"
      "  --capacities=1000,2000,4000,8000,16000  contention bounds to sweep\n"
      "  --load=0.5          fraction of capacity registered during collects\n"
      "  --reps=2000         collects per point\n"
      "  --seed=42           RNG seed\n"
      "  --csv               emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto capacities =
      opts.get_uint_list("capacities", {1000, 2000, 4000, 8000, 16000});
  const double load = opts.get_double("load", 0.5);
  const auto reps = opts.get_uint("reps", 2000);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Collect cost: latency vs L (expect linear; per-slot cost "
               "roughly constant)\n"
            << "# load = " << load << " of capacity registered, " << reps
            << " collects per point\n";

  stats::Table table({"capacity", "L_total_slots", "registered",
                      "collect_us_mean", "collect_us_stddev", "ns_per_slot"});
  for (const auto capacity : capacities) {
    core::LevelArrayConfig config;
    config.capacity = capacity;
    core::LevelArray array(config);
    rng::MarsagliaXorshift rng(seed + capacity);

    std::vector<std::uint64_t> held;
    const auto target =
        static_cast<std::uint64_t>(load * static_cast<double>(capacity));
    for (std::uint64_t i = 0; i < target; ++i) {
      held.push_back(array.get(rng).name);
    }

    stats::Welford latency_us;
    std::vector<std::uint64_t> out;
    out.reserve(array.total_slots());
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      out.clear();
      bench::Stopwatch watch;
      const std::size_t found = array.collect(out);
      latency_us.add(static_cast<double>(watch.elapsed_nanos()) / 1000.0);
      if (found != held.size()) {
        std::cerr << "collect found " << found << ", expected " << held.size()
                  << "\n";
        return 1;
      }
    }

    table.add_row({std::uint64_t{capacity}, array.total_slots(),
                   static_cast<std::uint64_t>(held.size()), latency_us.mean(),
                   latency_us.stddev(),
                   latency_us.mean() * 1000.0 /
                       static_cast<double>(array.total_slots())});
    for (const auto name : held) array.free(name);
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Layout ablation: byte-per-slot (the paper's structure, dense for TAS)
  // versus bit-per-slot (64 slots per load, densest possible collect).
  std::cout << "\n# layout ablation: 1-byte slots vs bitmap (64 slots/word)\n";
  stats::Table layout({"capacity", "byte_collect_us", "bitmap_collect_us",
                       "bitmap_speedup_x"});
  for (const auto capacity : capacities) {
    const std::uint64_t slots = 2 * capacity;
    const auto target =
        static_cast<std::uint64_t>(load * static_cast<double>(capacity));

    core::LevelArrayConfig config;
    config.capacity = capacity;
    core::LevelArray bytes(config);
    arrays::BitmapActivityArray bits(slots, capacity);
    rng::MarsagliaXorshift rng(seed ^ capacity);
    std::vector<std::uint64_t> byte_names, bit_names;
    for (std::uint64_t i = 0; i < target; ++i) {
      byte_names.push_back(bytes.get(rng).name);
      bit_names.push_back(bits.get(rng).name);
    }

    stats::Welford byte_us, bit_us;
    std::vector<std::uint64_t> out;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      out.clear();
      bench::Stopwatch w1;
      (void)bytes.collect(out);
      byte_us.add(static_cast<double>(w1.elapsed_nanos()) / 1000.0);
      out.clear();
      bench::Stopwatch w2;
      (void)bits.collect(out);
      bit_us.add(static_cast<double>(w2.elapsed_nanos()) / 1000.0);
    }
    layout.add_row({std::uint64_t{capacity}, byte_us.mean(), bit_us.mean(),
                    bit_us.mean() > 0 ? byte_us.mean() / bit_us.mean() : 0.0});
    for (const auto name : byte_names) bytes.free(name);
    for (const auto name : bit_names) bits.free(name);
  }
  if (opts.has("csv")) {
    layout.print_csv(std::cout);
  } else {
    layout.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
