// collect_cost — measures the Collect() operation: the paper's analysis
// gives Theta(L) step complexity (it reads every slot), and the paper's §1
// argues the dense array layout is what makes collects fast in practice
// (sequential scans are cache-friendly). This bench reports collect
// latency as a function of L and of the number of registered names, plus
// the per-slot scan cost, confirming the linear shape.
//
// --scan ablates the scan engine itself: `word` is the production
// 8-slots-per-load engine (core/slot_scan.hpp), `byte` the one-atomic-
// load-per-slot reference it replaced — so the engine's win is measured
// here, not asserted in a comment.
#include <iostream>
#include <string>
#include <vector>

#include "arrays/bitmap_array.hpp"
#include "bench_util/options.hpp"
#include "bench_util/report.hpp"
#include "bench_util/timing.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "stats/table.hpp"
#include "stats/welford.hpp"

namespace {

void print_usage() {
  std::cout <<
      "collect_cost: Collect() latency vs array size (Theta(L) check)\n"
      "  --capacities=1000,2000,4000,8000,16000  contention bounds to sweep\n"
      "  --load=0.5          fraction of capacity registered during collects\n"
      "  --reps=2000         collects per point\n"
      "  --scan=word         scan engine: word (8 slots/load) | byte\n"
      "                      (per-slot reference)\n"
      "  --seed=42           RNG seed\n"
      "  --json=<path>       also write the machine-readable report\n"
      "  --csv               emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto capacities =
      opts.get_uint_list("capacities", {1000, 2000, 4000, 8000, 16000});
  const double load = opts.get_double("load", 0.5);
  const auto reps = opts.get_uint("reps", 2000);
  const std::string scan = opts.get_string("scan", "word");
  const auto seed = opts.get_uint("seed", 42);
  const std::string json_path = opts.get_string("json", "");
  if (scan != "word" && scan != "byte") {
    std::cerr << "collect_cost: --scan=" << scan
              << " (expected word or byte)\n";
    return 1;
  }
  const bool word_scan = scan == "word";
  const auto run_collect = [word_scan](const core::LevelArray& array,
                                       std::vector<std::uint64_t>& out) {
    return word_scan ? array.collect(out) : array.collect_bytewise(out);
  };

  bench::BenchReport report("collect_cost");

  std::cout << "# Collect cost: latency vs L (expect linear; per-slot cost "
               "roughly constant)\n"
            << "# load = " << load << " of capacity registered, " << reps
            << " collects per point, scan engine = " << scan << "\n";

  stats::Table table({"capacity", "L_total_slots", "registered",
                      "collect_us_mean", "collect_us_stddev", "ns_per_slot"});
  for (const auto capacity : capacities) {
    core::LevelArrayConfig config;
    config.capacity = capacity;
    core::LevelArray array(config);
    rng::MarsagliaXorshift rng(seed + capacity);

    std::vector<std::uint64_t> held;
    const auto target =
        static_cast<std::uint64_t>(load * static_cast<double>(capacity));
    for (std::uint64_t i = 0; i < target; ++i) {
      held.push_back(array.get(rng).name);
    }

    stats::Welford latency_us;
    std::vector<std::uint64_t> out;
    out.reserve(array.total_slots());
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      out.clear();
      bench::Stopwatch watch;
      const std::size_t found = run_collect(array, out);
      latency_us.add(static_cast<double>(watch.elapsed_nanos()) / 1000.0);
      if (found != held.size()) {
        std::cerr << "collect found " << found << ", expected " << held.size()
                  << "\n";
        return 1;
      }
    }

    const double mean_us = latency_us.mean();
    table.add_row({std::uint64_t{capacity}, array.total_slots(),
                   static_cast<std::uint64_t>(held.size()), mean_us,
                   latency_us.stddev(),
                   mean_us * 1000.0 /
                       static_cast<double>(array.total_slots())});
    report.add_run()
        .set("structure", "level")
        .set("rng", "marsaglia")
        .set("threads", 1)
        .set_object("config", bench::JsonObject()
                                  .set("capacity", std::uint64_t{capacity})
                                  .set("total_slots", array.total_slots())
                                  .set("registered",
                                       static_cast<std::uint64_t>(held.size()))
                                  .set("load", load)
                                  .set("reps", reps)
                                  .set("scan", scan)
                                  .set("seed", seed))
        // One "op" is one full Collect of the array.
        .set("ops_per_sec", mean_us > 0.0 ? 1e6 / mean_us : 0.0)
        .set("collect_us_mean", mean_us)
        .set("collect_us_stddev", latency_us.stddev())
        .set("ns_per_slot", mean_us * 1000.0 /
                                static_cast<double>(array.total_slots()));
    for (const auto name : held) array.free(name);
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Layout ablation: byte-per-slot (the paper's structure, dense for TAS,
  // scanned with the engine picked by --scan) versus bit-per-slot (64
  // slots per load, densest possible collect).
  std::cout << "\n# layout ablation: 1-byte slots vs bitmap (64 slots/word)\n";
  stats::Table layout({"capacity", "byte_collect_us", "bitmap_collect_us",
                       "bitmap_speedup_x"});
  for (const auto capacity : capacities) {
    const std::uint64_t slots = 2 * capacity;
    const auto target =
        static_cast<std::uint64_t>(load * static_cast<double>(capacity));

    core::LevelArrayConfig config;
    config.capacity = capacity;
    core::LevelArray bytes(config);
    arrays::BitmapActivityArray bits(slots, capacity);
    rng::MarsagliaXorshift rng(seed ^ capacity);
    std::vector<std::uint64_t> byte_names, bit_names;
    for (std::uint64_t i = 0; i < target; ++i) {
      byte_names.push_back(bytes.get(rng).name);
      bit_names.push_back(bits.get(rng).name);
    }

    stats::Welford byte_us, bit_us;
    std::vector<std::uint64_t> out;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      out.clear();
      bench::Stopwatch w1;
      (void)run_collect(bytes, out);
      byte_us.add(static_cast<double>(w1.elapsed_nanos()) / 1000.0);
      out.clear();
      bench::Stopwatch w2;
      (void)bits.collect(out);
      bit_us.add(static_cast<double>(w2.elapsed_nanos()) / 1000.0);
    }
    layout.add_row({std::uint64_t{capacity}, byte_us.mean(), bit_us.mean(),
                    bit_us.mean() > 0 ? byte_us.mean() / bit_us.mean() : 0.0});
    report.add_run()
        .set("structure", "bitmap")
        .set("rng", "marsaglia")
        .set("threads", 1)
        .set_object("config", bench::JsonObject()
                                  .set("capacity", std::uint64_t{capacity})
                                  .set("total_slots", slots)
                                  .set("registered", target)
                                  .set("load", load)
                                  .set("reps", reps)
                                  .set("seed", seed))
        .set("ops_per_sec",
             bit_us.mean() > 0.0 ? 1e6 / bit_us.mean() : 0.0)
        .set("collect_us_mean", bit_us.mean())
        .set("byte_collect_us_mean", byte_us.mean());
    for (const auto name : byte_names) bytes.free(name);
    for (const auto name : bit_names) bits.free(name);
  }
  if (opts.has("csv")) {
    layout.print_csv(std::cout);
  } else {
    layout.print(std::cout);
  }

  if (!json_path.empty() && !report.write_file(json_path, std::cerr)) {
    return 1;
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
