// fig2_trials — reproduces the remaining three panels of the paper's
// Figure 2 in one sweep:
//   * top-right:    average number of trials (probes) per Get,
//   * bottom-left:  standard deviation of the number of trials,
//   * bottom-right: worst-case number of trials (the paper plots the worst
//                   case averaged over processes; we print both that and
//                   the global maximum).
//
// Expected shape (paper §6): all three randomized algorithms average
// 1.5-1.9 trials; LevelArray's stddev stays ~1 and its worst case <= 6,
// while Random and LinearProbing show growing stddev and worst cases an
// order of magnitude larger. Add --with-seq to include the deterministic
// first-fit scan, whose average is ~two orders of magnitude worse (it is
// left off the paper's charts for that reason).
//
// Runs in op-count mode so results are time-independent and reproducible.
#include <iostream>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "fig2_trials: Fig. 2 (avg / stddev / worst-case trials) sweep\n"
      "  --threads=1,2,4,8   thread counts to sweep\n"
      "  --ops=40000         main-loop Get+Free ops per thread\n"
      "  --mult=1000         emulated registrants per thread\n"
      "  --prefill=0.5       pre-fill fraction\n"
      "  --size-factor=2.0   L = size-factor * N\n"
      "  --algo=...          structures (any registered name/alias;\n"
      "                      'all' = every registered structure)\n"
      "  --with-seq          include the deterministic sequential scan\n"
      "  --seed=42           base RNG seed\n"
      "  --csv               emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = opts.get_uint_list("threads", {1, 2, 4, 8});
  const auto ops = opts.get_uint("ops", 40000);
  const auto mult = opts.get_uint("mult", 1000);
  const double prefill = opts.get_double("prefill", 0.5);
  const double size_factor = opts.get_double("size-factor", 2.0);
  auto algo_list = opts.get_string_list("algo", {"level", "random", "linear"});
  if (opts.has("with-seq")) algo_list.push_back("seq");
  const auto algo_names = bench::expand_algos(algo_list);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Figure 2 (top-right, bottom-left, bottom-right): trials "
               "per Get\n"
            << "# N = " << mult << " * threads, L = " << size_factor
            << " * N, prefill = " << prefill << ", " << ops
            << " ops/thread\n";

  stats::Table table({"algo", "threads", "gets", "avg_trials", "stddev",
                      "worst_mean_over_threads", "worst_global", "p99",
                      "backup_gets"});
  for (const auto& algo : algo_names) {
    for (const auto n : threads) {
      bench::SweepPoint point;
      point.driver.threads = n;
      point.driver.emulation_multiplier = mult;
      point.driver.prefill = prefill;
      point.driver.ops_per_thread = ops;
      point.driver.seed = seed;
      point.size_factor = size_factor;
      bench::RunResult result;
      try {
        result = bench::run_algo(algo, point);
      } catch (const std::invalid_argument& e) {
        // A structure may refuse a sweep point (e.g. the splitter's
        // quadratic-memory cap); keep the rest of the sweep's results.
        std::cerr << "warning: skipping " << algo << ": " << e.what() << "\n";
        continue;
      }
      table.add_row({std::string(bench::algo_name(algo)), std::uint64_t{n},
                     result.trials.operations(), result.trials.average(),
                     result.trials.stddev(), result.mean_per_thread_worst,
                     result.trials.worst_case(), result.trials.p99(),
                     result.backup_gets});
    }
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
