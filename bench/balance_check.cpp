// balance_check — validates the paper's analysis quantities on simulated
// oblivious-adversary executions (the theory side of the evaluation):
//
//   * Definition 1 (regularity): the empirical fraction of Gets reaching
//     batch k, against the analytical bound pi_k.
//   * Definition 2 / Proposition 3 (balance): the fraction of sampled
//     instants at which any tracked batch was overcrowded.
//   * Theorem 1: worst-case probes vs the O(log log n) budget.
//
// Run with --ci=16 (default) for the analysis constants, or --ci=1 to see
// how the implementation configuration behaves against the same yardstick.
// --structure= sweeps any registered Renamer under the *identical*
// Schedule (the oblivious adversary commits one activation order per n,
// replayed against every structure); batch-level metrics appear only for
// structures that expose batch introspection.
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "sim/executor.hpp"
#include "sim/metrics.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "balance_check: regularity + balance of simulated executions\n"
      "  --n=256,512,1024     contention bounds to sweep\n"
      "  --rounds=64          Get/Free rounds per process\n"
      "  --ci=16              probes per batch (16 = analysis constants)\n"
      "  --structure=level    structures to run under the same schedule\n"
      "                       (any registered name/alias; 'all' = every)\n"
      "  --schedule=uniform   uniform | roundrobin | bursty | skewed\n"
      "  --sample-every=500   steps between balance samples\n"
      "  --seed=42            seed\n"
      "  --csv                emit CSV\n";
}

la::sim::Schedule make_schedule(const std::string& kind, std::uint32_t n,
                                std::size_t steps, std::uint64_t seed) {
  using la::sim::Schedule;
  if (kind == "uniform") return Schedule::uniform_random(n, steps, seed);
  if (kind == "roundrobin") return Schedule::round_robin(n, steps);
  if (kind == "bursty") return Schedule::bursty(n, steps, 200, seed);
  if (kind == "skewed") return Schedule::skewed(n, steps, 1.2, seed);
  throw std::invalid_argument("unknown schedule kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto ns = opts.get_uint_list("n", {256, 512, 1024});
  const auto rounds = opts.get_uint("rounds", 64);
  const auto ci = opts.get_uint("ci", 16);
  const auto structures =
      bench::expand_algos(opts.get_string_list("structure", {"level"}));
  const auto schedule_kind = opts.get_string("schedule", "uniform");
  const auto sample_every = opts.get_uint("sample-every", 500);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Balance & regularity check: c_i = " << ci << ", schedule = "
            << schedule_kind << ", " << rounds << " rounds/process\n";

  stats::Table summary({"structure", "n", "gets", "avg_trials", "worst",
                        "loglog_budget", "balance_samples",
                        "unbalanced_samples", "backup_gets"});
  stats::Table reach_table(
      {"structure", "n", "batch", "reach_fraction", "pi_bound",
       "within_bound"}, 6);

  for (const auto n : ns) {
    // Budget: enough steps to drain all tapes even with c_i = 16. The
    // adversary commits this one activation order, then every structure
    // replays it.
    const std::size_t steps = static_cast<std::size_t>(n) * rounds * (4 + ci);
    const sim::Schedule schedule = make_schedule(
        schedule_kind, static_cast<std::uint32_t>(n), steps, seed);
    const std::uint64_t budget = ci * (sim::loglog_batches(n) + 2);

    for (const auto& structure : structures) {
      api::RenamerConfig config;
      config.capacity = n;
      config.probes_per_batch = {static_cast<std::uint8_t>(ci)};
      const auto run_structure = [&](auto& array) {
        using Array = std::decay_t<decltype(array)>;
        std::vector<sim::ProcessInput> inputs(
            n, sim::ProcessInput::churn(rounds, 1));
        sim::BasicExecutor<Array> exec(array, seed + n, std::move(inputs),
                                       schedule);

        std::uint64_t samples = 0, unbalanced = 0;
        if constexpr (api::has_batch_occupancy_v<Array>) {
          exec.set_step_observer(
              [&](const sim::BasicExecutor<Array>& e) {
                ++samples;
                if (!e.balance().fully_balanced()) ++unbalanced;
              },
              sample_every);
        }
        exec.run();

        const std::string label(bench::algo_name(structure));
        summary.add_row({label, std::uint64_t{n}, exec.completed_gets(),
                         exec.get_stats().average(),
                         exec.get_stats().worst_case(), budget, samples,
                         unbalanced, exec.backup_gets()});

        if constexpr (api::has_batch_occupancy_v<Array>) {
          const auto& reach = exec.reach_counts();
          const double gets = static_cast<double>(exec.completed_gets());
          const std::uint32_t tracked = sim::loglog_batches(n);
          for (std::uint32_t k = 1; k <= tracked && k < reach.size(); ++k) {
            const double fraction = static_cast<double>(reach[k]) / gets;
            const double bound = sim::reach_probability_bound(k);
            reach_table.add_row({label, std::uint64_t{n}, std::uint64_t{k},
                                 fraction, bound,
                                 std::string(fraction <= bound ? "yes"
                                                               : "NO")});
          }
        }
      };
      try {
        api::visit(structure, config, run_structure);
      } catch (const std::invalid_argument& e) {
        // A structure may refuse this n (e.g. the splitter's
        // quadratic-memory cap); keep the rest of the sweep's results.
        std::cerr << "warning: skipping " << structure << ": " << e.what()
                  << "\n";
      }
    }
  }

  if (opts.has("csv")) {
    summary.print_csv(std::cout);
    std::cout << "\n";
    reach_table.print_csv(std::cout);
  } else {
    summary.print(std::cout);
    std::cout << "\n# reach fractions vs Definition 1 bounds (c_i >= 16 "
                 "required for the bound to apply; batch-structured "
                 "renamers only)\n";
    reach_table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
