// balance_check — validates the paper's analysis quantities on simulated
// oblivious-adversary executions (the theory side of the evaluation):
//
//   * Definition 1 (regularity): the empirical fraction of Gets reaching
//     batch k, against the analytical bound pi_k.
//   * Definition 2 / Proposition 3 (balance): the fraction of sampled
//     instants at which any tracked batch was overcrowded.
//   * Theorem 1: worst-case probes vs the O(log log n) budget.
//
// Run with --ci=16 (default) for the analysis constants, or --ci=1 to see
// how the implementation configuration behaves against the same yardstick.
#include <iostream>
#include <vector>

#include "bench_util/options.hpp"
#include "sim/executor.hpp"
#include "sim/metrics.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "balance_check: regularity + balance of simulated executions\n"
      "  --n=256,512,1024     contention bounds to sweep\n"
      "  --rounds=64          Get/Free rounds per process\n"
      "  --ci=16              probes per batch (16 = analysis constants)\n"
      "  --schedule=uniform   uniform | roundrobin | bursty | skewed\n"
      "  --sample-every=500   steps between balance samples\n"
      "  --seed=42            seed\n"
      "  --csv                emit CSV\n";
}

la::sim::Schedule make_schedule(const std::string& kind, std::uint32_t n,
                                std::size_t steps, std::uint64_t seed) {
  using la::sim::Schedule;
  if (kind == "uniform") return Schedule::uniform_random(n, steps, seed);
  if (kind == "roundrobin") return Schedule::round_robin(n, steps);
  if (kind == "bursty") return Schedule::bursty(n, steps, 200, seed);
  if (kind == "skewed") return Schedule::skewed(n, steps, 1.2, seed);
  throw std::invalid_argument("unknown schedule kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto ns = opts.get_uint_list("n", {256, 512, 1024});
  const auto rounds = opts.get_uint("rounds", 64);
  const auto ci = opts.get_uint("ci", 16);
  const auto schedule_kind = opts.get_string("schedule", "uniform");
  const auto sample_every = opts.get_uint("sample-every", 500);
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Balance & regularity check: c_i = " << ci << ", schedule = "
            << schedule_kind << ", " << rounds << " rounds/process\n";

  stats::Table summary({"n", "gets", "avg_trials", "worst", "loglog_budget",
                        "balance_samples", "unbalanced_samples",
                        "backup_gets"});
  stats::Table reach_table(
      {"n", "batch", "reach_fraction", "pi_bound", "within_bound"}, 6);

  for (const auto n : ns) {
    sim::ExecutorOptions options;
    options.config.capacity = n;
    options.config.probes_per_batch = {static_cast<std::uint8_t>(ci)};
    options.seed = seed + n;
    std::vector<sim::ProcessInput> inputs(
        n, sim::ProcessInput::churn(rounds, 1));
    // Budget: enough steps to drain all tapes even with c_i = 16.
    const std::size_t steps = static_cast<std::size_t>(n) * rounds * (4 + ci);
    sim::Executor exec(options, std::move(inputs),
                       make_schedule(schedule_kind,
                                     static_cast<std::uint32_t>(n), steps,
                                     seed));

    std::uint64_t samples = 0, unbalanced = 0;
    exec.set_step_observer(
        [&](const sim::Executor& e) {
          ++samples;
          if (!e.balance().fully_balanced()) ++unbalanced;
        },
        sample_every);
    exec.run();

    const std::uint64_t budget = ci * (sim::loglog_batches(n) + 2);
    summary.add_row({std::uint64_t{n}, exec.completed_gets(),
                     exec.get_stats().average(),
                     exec.get_stats().worst_case(), budget, samples,
                     unbalanced, exec.backup_gets()});

    const auto& reach = exec.reach_counts();
    const double gets = static_cast<double>(exec.completed_gets());
    const std::uint32_t tracked = sim::loglog_batches(n);
    for (std::uint32_t k = 1; k <= tracked && k < reach.size(); ++k) {
      const double fraction = static_cast<double>(reach[k]) / gets;
      const double bound = sim::reach_probability_bound(k);
      reach_table.add_row({std::uint64_t{n}, std::uint64_t{k}, fraction,
                           bound,
                           std::string(fraction <= bound ? "yes" : "NO")});
    }
  }

  if (opts.has("csv")) {
    summary.print_csv(std::cout);
    std::cout << "\n";
    reach_table.print_csv(std::cout);
  } else {
    summary.print(std::cout);
    std::cout << "\n# reach fractions vs Definition 1 bounds (c_i >= 16 "
                 "required for the bound to apply)\n";
    reach_table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
