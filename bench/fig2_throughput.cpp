// fig2_throughput — reproduces the top-left panel of the paper's Figure 2:
// total Get+Free operations completed in a fixed time window, as a function
// of the number of threads, for LevelArray / Random / LinearProbing.
//
// Paper parameters: n in 1..80 threads, N = 1000n emulated registrants,
// L = 2N slots, 50% pre-fill, 10-second windows. Defaults here are scaled
// for a laptop (0.5 s windows, small thread sweep); restore paper scale with
//   fig2_throughput --threads=1,2,4,...,80 --seconds=10
//
// NOTE (single-core hosts): the paper's linear throughput growth requires
// real hardware parallelism. On one core the sweep still exercises the
// contended code paths, but total throughput stays roughly flat — see
// EXPERIMENTS.md for the substitution note.
#include <iostream>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "bench_util/report.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "fig2_throughput: Fig. 2 (top-left) — throughput vs thread count\n"
      "  --threads=1,2,4,8   thread counts to sweep\n"
      "  --seconds=0.5       measurement window per point\n"
      "  --mult=1000         emulated registrants per thread (N = mult*n)\n"
      "  --prefill=0.5       pre-fill fraction\n"
      "  --size-factor=2.0   L = size-factor * N\n"
      "  --algo=level,random,linear   structures to run (any registered\n"
      "                      name/alias; 'all' = every registered structure)\n"
      "  --batch=1           names per Free-k/Get-k exchange in the churn\n"
      "                      loop (>1 routes through the batch surface)\n"
      "  --rng=marsaglia     probe RNG (marsaglia | lehmer | pcg32)\n"
      "  --seed=42           base RNG seed\n"
      "  --json=<path>       also write the machine-readable report\n"
      "  --csv               emit CSV instead of a table\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = opts.get_uint_list("threads", {1, 2, 4, 8});
  const double seconds = opts.get_double("seconds", 0.5);
  const auto mult = opts.get_uint("mult", 1000);
  const double prefill = opts.get_double("prefill", 0.5);
  const double size_factor = opts.get_double("size-factor", 2.0);
  const auto algos = bench::expand_algos(
      opts.get_string_list("algo", {"level", "random", "linear"}));
  const auto batch = opts.get_uint("batch", 1);
  const auto rng_kind =
      rng::parse_rng_kind(opts.get_string("rng", "marsaglia"));
  const auto seed = opts.get_uint("seed", 42);
  const std::string json_path = opts.get_string("json", "");

  std::cout << "# Figure 2 (top-left): throughput (total Get+Free ops / "
            << seconds << " s window)\n"
            << "# N = " << mult << " * threads, L = " << size_factor
            << " * N, prefill = " << prefill << "\n";

  bench::BenchReport report("fig2_throughput");
  stats::Table table({"algo", "threads", "N", "ops", "ops_per_sec"});
  for (const auto& algo : algos) {
    for (const auto n : threads) {
      bench::SweepPoint point;
      point.driver.threads = n;
      point.driver.emulation_multiplier = mult;
      point.driver.prefill = prefill;
      point.driver.ops_per_thread = 0;
      point.driver.seconds = seconds;
      point.driver.seed = seed;
      point.driver.rng_kind = rng_kind;
      point.driver.batch = batch;
      point.size_factor = size_factor;
      bench::RunResult result;
      try {
        result = bench::run_algo(algo, point);
      } catch (const std::invalid_argument& e) {
        // A structure may refuse a sweep point (e.g. the splitter's
        // quadratic-memory cap); keep the rest of the sweep's results.
        std::cerr << "warning: skipping " << algo << ": " << e.what() << "\n";
        continue;
      }
      table.add_row({std::string(bench::algo_name(algo)), std::uint64_t{n},
                     point.driver.emulated_registrants(), result.total_ops,
                     result.throughput_ops_per_sec});
      report.add_run()
          .set("structure", algo)
          .set("rng", rng::rng_kind_name(rng_kind))
          .set("threads", n)
          .set("batch", batch)
          .set_object("config",
                      bench::JsonObject()
                          .set("mult", mult)
                          .set("registrants",
                               point.driver.emulated_registrants())
                          .set("size_factor", size_factor)
                          .set("prefill", prefill)
                          .set("seconds", seconds)
                          .set("seed", seed))
          .set("ops_per_sec", result.throughput_ops_per_sec)
          .set("total_ops", result.total_ops)
          .set("elapsed_seconds", result.elapsed_seconds)
          .set("backup_gets", result.backup_gets)
          .set_object("probes", bench::probe_stats_json(result.trials));
    }
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (!json_path.empty() && !report.write_file(json_path, std::cerr)) {
    return 1;
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
