// scaling_sweep — thread-scaling of the scale layer: Get+Free throughput
// vs thread count, sharded variants against their flat base structures,
// under the Figure 2 churn workload (N = mult * threads registrants,
// L = 2N slots per structure, 50% prefill, timed windows).
//
// The claim under test: the ShardedRenamer's thread-affine shards and
// per-thread free-name caches keep the churn hot path off shared state,
// so ops/s holds up (or grows) with threads where the flat structures
// serialize on the one array. The committed BENCH_scaling.json snapshot
// is regenerated with:
//
//   scaling_sweep --threads=1,2,4,8 --json=BENCH_scaling.json
//
// and scripts/validate_bench_json.py --scaling-gate=8 asserts the
// sharded:level run is at least as fast as the flat level run at 8
// threads — the acceptance bar for the scale layer, machine-checked.
#include <iostream>
#include <map>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "bench_util/report.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "scaling_sweep: ops/s vs threads, sharded vs flat\n"
      "  --threads=1,2,4,8   thread counts to sweep\n"
      "  --seconds=0.5       measurement window per point\n"
      "  --mult=200000       emulated registrants per thread (N = mult*n);\n"
      "                      the default is deliberately production-scale —\n"
      "                      cold random probes vs hot cached names is the\n"
      "                      regime the scale layer exists for\n"
      "  --prefill=0.5       pre-fill fraction\n"
      "  --size-factor=2.0   L = size-factor * N (per structure)\n"
      "  --algo=level,sharded:level   structures to sweep (any registered\n"
      "                      name/alias; 'all' = every registered structure)\n"
      "  --batch=1           batch sizes to sweep (names per Free-k/Get-k\n"
      "                      exchange; e.g. --batch=1,4,16,64 is the\n"
      "                      amortization sweep behind BENCH_batch.json)\n"
      "  --shards=8          shard count S for the sharded variants\n"
      "  --cache=16          per-thread free-name cache capacity (0 = off)\n"
      "  --deadline=0        per-exchange Get budget (10ms, 250us, 1s;\n"
      "                      bare number = ns; 0 = wait forever). Expired\n"
      "                      exchanges are abandoned and reported in the\n"
      "                      timeouts / timeout_rate columns (structures\n"
      "                      with deadline ops only)\n"
      "  --rng=marsaglia     probe RNG (marsaglia | lehmer | pcg32)\n"
      "  --seed=42           base RNG seed\n"
      "  --json=<path>       also write the machine-readable report\n"
      "  --csv               emit CSV instead of a table\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = opts.get_uint_list("threads", {1, 2, 4, 8});
  const double seconds = opts.get_double("seconds", 0.5);
  const auto mult = opts.get_uint("mult", 200000);
  const double prefill = opts.get_double("prefill", 0.5);
  const double size_factor = opts.get_double("size-factor", 2.0);
  const auto algos = bench::expand_algos(
      opts.get_string_list("algo", {"level", "sharded:level"}));
  const auto batches = opts.get_uint_list("batch", {1});
  const auto shards =
      static_cast<std::uint32_t>(opts.get_uint("shards", 8));
  const auto cache = static_cast<std::uint32_t>(opts.get_uint("cache", 16));
  const auto deadline_ns = opts.get_duration_ns("deadline", 0);
  const auto rng_kind =
      rng::parse_rng_kind(opts.get_string("rng", "marsaglia"));
  const auto seed = opts.get_uint("seed", 42);
  const std::string json_path = opts.get_string("json", "");

  std::cout << "# scaling_sweep: Get+Free ops/s vs threads ("
            << seconds << " s windows)\n"
            << "# N = " << mult << " * threads, L = " << size_factor
            << " * N, prefill = " << prefill << ", shards = " << shards
            << ", cache = " << cache << "\n";

  // ops/s of the first swept (structure, batch) pair at each thread
  // count — the speedup column's baseline (by default: flat level at
  // batch=1; with --batch=1,... the column doubles as the batch
  // amortization factor).
  std::map<std::uint64_t, double> baseline;

  bench::BenchReport report("scaling_sweep");
  stats::Table table({"algo", "batch", "threads", "N", "ops", "ops_per_sec",
                      "timeouts", "vs_first"});
  for (const auto& algo : algos) {
    for (const auto batch : batches) {
      for (const auto n : threads) {
        bench::SweepPoint point;
        point.driver.threads = static_cast<std::uint32_t>(n);
        point.driver.emulation_multiplier = mult;
        point.driver.prefill = prefill;
        point.driver.ops_per_thread = 0;
        point.driver.seconds = seconds;
        point.driver.seed = seed;
        point.driver.rng_kind = rng_kind;
        point.driver.batch = batch;
        point.driver.deadline_ns = deadline_ns;
        point.size_factor = size_factor;
        point.shards = shards;
        point.name_cache_capacity = cache;
        bench::RunResult result;
        try {
          result = bench::run_algo(algo, point);
        } catch (const std::invalid_argument& e) {
          std::cerr << "warning: skipping " << algo << ": " << e.what()
                    << "\n";
          continue;
        }
        if (baseline.find(n) == baseline.end()) {
          baseline[n] = result.throughput_ops_per_sec;
        }
        const double vs_first =
            baseline[n] > 0.0
                ? result.throughput_ops_per_sec / baseline[n]
                : 0.0;
        // Timeout rate: expired exchanges per completed op — the
        // latency-SLO number a deadline run exists to measure.
        const double timeout_rate =
            result.total_ops != 0
                ? static_cast<double>(result.timeouts) /
                      static_cast<double>(result.total_ops)
                : 0.0;
        table.add_row({std::string(bench::algo_name(algo)), batch, n,
                       point.driver.emulated_registrants(), result.total_ops,
                       result.throughput_ops_per_sec, result.timeouts,
                       vs_first});
        report.add_run()
            .set("structure", algo)
            .set("rng", rng::rng_kind_name(rng_kind))
            .set("threads", n)
            .set("batch", batch)
            .set("deadline_ns", deadline_ns)
            .set("timeouts", result.timeouts)
            .set("timeout_rate", timeout_rate)
            .set_object("config",
                        bench::JsonObject()
                            .set("mult", mult)
                            .set("registrants",
                                 point.driver.emulated_registrants())
                            .set("size_factor", size_factor)
                            .set("prefill", prefill)
                            .set("seconds", seconds)
                            .set("seed", seed)
                            .set("shards", shards)
                            .set("cache", cache))
            .set("ops_per_sec", result.throughput_ops_per_sec)
            .set("total_ops", result.total_ops)
            .set("elapsed_seconds", result.elapsed_seconds)
            .set("backup_gets", result.backup_gets)
            .set("speedup_vs_first", vs_first)
            .set_object("probes", bench::probe_stats_json(result.trials));
      }
    }
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (!json_path.empty() && !report.write_file(json_path, std::cerr)) {
    return 1;
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
