// workload_trace — probe statistics under realistic hold-time
// distributions (extension beyond the paper's back-to-back churn).
//
// Each worker thread runs an open-loop trace: every iteration it releases
// the names whose hold time expired, then registers one new name whose
// hold duration is drawn from the selected distribution. By Little's law
// the steady-state names held per thread equals the mean hold time, so
// every distribution is compared at identical average load — what varies
// is the *shape* of the occupancy fluctuation (memoryless, heavy-tailed,
// bimodal). The paper's oblivious-adversary analysis promises the probe
// distribution does not care; this bench checks that.
#include <deque>
#include <iostream>

#include "bench_util/options.hpp"
#include "bench_util/workload.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "sync/cache.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_utils.hpp"

namespace {

void print_usage() {
  std::cout <<
      "workload_trace: probe stats under hold-time distributions\n"
      "  --threads=4          worker threads\n"
      "  --ops=40000          registrations per thread\n"
      "  --mean-hold=500      mean hold time (iterations) => names/thread\n"
      "  --dists=fixed,uniform,exponential,pareto,bimodal,zipf\n"
      "  --seed=42            base seed\n"
      "  --csv                emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 4));
  const auto ops = opts.get_uint("ops", 40000);
  const auto mean_hold = opts.get_uint("mean-hold", 500);
  const auto dists = opts.get_string_list(
      "dists", {"fixed", "uniform", "exponential", "pareto", "bimodal", "zipf"});
  const auto seed = opts.get_uint("seed", 42);

  // Capacity: steady state holds ~mean_hold names per thread; Pareto's cap
  // can push excursions a few multiples above, so leave generous headroom.
  const std::uint64_t capacity = 8 * mean_hold * threads;

  std::cout << "# Workload-shape sweep: " << threads << " threads, "
            << ops << " registrations each, mean hold " << mean_hold
            << " (names/thread at steady state), capacity " << capacity
            << "\n# paper's analysis: probe stats should be insensitive to "
               "the fluctuation shape\n";

  stats::Table table({"distribution", "gets", "avg_trials", "stddev",
                      "worst_global", "p99", "backup_gets"});

  for (const auto& dist_name : dists) {
    const auto dist = bench::parse_hold_distribution(dist_name);
    core::LevelArrayConfig config;
    config.capacity = capacity;
    core::LevelArray array(config);

    std::vector<sync::CachePadded<stats::TrialStats>> outputs(threads);
    std::vector<sync::CachePadded<std::uint64_t>> backup_counts(threads);
    sync::SpinBarrier barrier(threads);
    {
      sync::ThreadGroup group;
      group.spawn(threads, [&](std::uint32_t tid) {
        rng::MarsagliaXorshift rng(rng::mix_seed(seed, tid));
        struct Held {
          std::uint64_t name;
          std::uint64_t expires_at;
        };
        std::deque<Held> held;
        barrier.wait();
        for (std::uint64_t t = 0; t < ops; ++t) {
          while (!held.empty() && held.front().expires_at <= t) {
            array.free(held.front().name);
            held.pop_front();
          }
          const auto result = array.get(rng);
          outputs[tid]->record(result.probes);
          if (result.used_backup) ++*backup_counts[tid];
          const std::uint64_t hold = bench::draw_hold_time(
              rng, dist, static_cast<double>(mean_hold));
          // deque stays expiry-sorted only for fixed holds; for the rest
          // a small insertion pass keeps it ordered (holds are short).
          Held entry{result.name, t + hold};
          auto it = held.end();
          while (it != held.begin() && (it - 1)->expires_at > entry.expires_at) {
            --it;
          }
          held.insert(it, entry);
        }
        for (const auto& h : held) array.free(h.name);
      });
    }

    stats::TrialStats merged;
    std::uint64_t backup_total = 0;
    for (std::uint32_t tid = 0; tid < threads; ++tid) {
      merged.merge(*outputs[tid]);
      backup_total += *backup_counts[tid];
    }
    table.add_row({std::string(bench::hold_distribution_name(dist)),
                   merged.operations(), merged.average(), merged.stddev(),
                   merged.worst_case(), merged.p99(), backup_total});
  }

  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
