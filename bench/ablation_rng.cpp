// ablation_rng — reproduces the paper's in-text methodology note (§6):
// "We used the Marsaglia and Park-Miller (Lehmer) random number
// generators, alternatively, and found no difference between the
// results." Runs the identical workload under each generator (plus PCG32
// as a modern control) and prints the trial metrics side by side.
#include <iostream>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "ablation_rng: probe-RNG ablation (paper: Marsaglia vs Park-Miller)\n"
      "  --threads=4          worker threads\n"
      "  --ops=40000          ops per thread per point\n"
      "  --mult=1000          emulated registrants per thread\n"
      "  --prefill=0.5        pre-fill fraction\n"
      "  --rngs=marsaglia,lehmer,pcg32  generators to sweep\n"
      "  --algo=level         structure to drive (any registered name)\n"
      "  --seed=42            base RNG seed\n"
      "  --csv                emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 4));
  const auto ops = opts.get_uint("ops", 40000);
  const auto mult = opts.get_uint("mult", 1000);
  const double prefill = opts.get_double("prefill", 0.5);
  const auto rng_names =
      opts.get_string_list("rngs", {"marsaglia", "lehmer", "pcg32"});
  const auto algo = bench::parse_algo(opts.get_string("algo", "level"));
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# RNG ablation: " << bench::algo_name(algo) << ", " << threads
            << " threads, N = " << mult << " * threads, prefill = " << prefill
            << "\n# paper: no difference between Marsaglia and Park-Miller\n";

  stats::Table table({"rng", "avg_trials", "stddev", "worst_global", "p99"});
  for (const auto& rng_name : rng_names) {
    bench::SweepPoint point;
    point.driver.threads = threads;
    point.driver.emulation_multiplier = mult;
    point.driver.prefill = prefill;
    point.driver.ops_per_thread = ops;
    point.driver.seed = seed;
    point.driver.rng_kind = rng::parse_rng_kind(rng_name);
    const auto result = bench::run_algo(algo, point);
    table.add_row({rng_name, result.trials.average(), result.trials.stddev(),
                   result.trials.worst_case(), result.trials.p99()});
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
