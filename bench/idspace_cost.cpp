// idspace_cost — measures the paper's footnote 1: indexing the activity
// array by thread id makes Get trivial but makes Collect (and memory)
// scale with the size of the id space N instead of the contention bound
// n. The LevelArray keeps Collect at Theta(n) for the same workload.
//
// Output: collect latency for both structures as the id space grows while
// the number of *registered* threads stays fixed.
#include <iostream>
#include <vector>

#include "arrays/id_array.hpp"
#include "bench_util/options.hpp"
#include "bench_util/timing.hpp"
#include "core/level_array.hpp"
#include "rng/rng.hpp"
#include "stats/table.hpp"
#include "stats/welford.hpp"

namespace {

void print_usage() {
  std::cout <<
      "idspace_cost: footnote-1 strawman — collect cost vs id-space size\n"
      "  --contention=64      threads actually registered (n)\n"
      "  --idspaces=1024,16384,262144,1048576  id-space sizes (N)\n"
      "  --reps=300           collects per point\n"
      "  --seed=42            RNG seed\n"
      "  --csv                emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto contention = opts.get_uint("contention", 64);
  const auto idspaces =
      opts.get_uint_list("idspaces", {1024, 16384, 262144, 1048576});
  const auto reps = opts.get_uint("reps", 300);
  const auto seed = opts.get_uint("seed", 42);

  // The LevelArray reference point: sized by contention, not id space.
  core::LevelArrayConfig config;
  config.capacity = contention;
  core::LevelArray level(config);
  rng::MarsagliaXorshift rng(seed);
  std::vector<std::uint64_t> level_names;
  for (std::uint64_t i = 0; i < contention; ++i) {
    level_names.push_back(level.get(rng).name);
  }
  stats::Welford level_us;
  std::vector<std::uint64_t> out;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    out.clear();
    bench::Stopwatch watch;
    (void)level.collect(out);
    level_us.add(static_cast<double>(watch.elapsed_nanos()) / 1000.0);
  }

  std::cout << "# Footnote 1: id-indexed array vs LevelArray, " << contention
            << " registered threads\n"
            << "# LevelArray collect (" << level.total_slots()
            << " slots, independent of id space): " << level_us.mean()
            << " us\n";

  stats::Table table({"id_space_N", "slots_scanned", "collect_us",
                      "vs_levelarray_x"});
  for (const auto id_space : idspaces) {
    if (id_space < contention) {
      std::cerr << "skipping id space " << id_space << " < contention\n";
      continue;
    }
    arrays::IdIndexedArray ids(id_space);
    // Register `contention` threads at ids spread across the space (the
    // worst realistic case: ids are sparse).
    std::vector<std::uint64_t> names;
    const std::uint64_t stride = id_space / contention;
    for (std::uint64_t i = 0; i < contention; ++i) {
      names.push_back(ids.get_by_id(i * stride).name);
    }
    stats::Welford id_us;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      out.clear();
      bench::Stopwatch watch;
      const std::size_t found = ids.collect(out);
      id_us.add(static_cast<double>(watch.elapsed_nanos()) / 1000.0);
      if (found != contention) {
        std::cerr << "collect lost registrations\n";
        return 1;
      }
    }
    table.add_row({std::uint64_t{id_space}, std::uint64_t{id_space},
                   id_us.mean(),
                   level_us.mean() > 0 ? id_us.mean() / level_us.mean() : 0.0});
    for (const auto name : names) ids.free(name);
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  for (const auto name : level_names) level.free(name);

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
