// arraysize_sweep — reproduces the paper's in-text claim (§6) that results
// hold "for different array sizes": the benchmark considered L between 2N
// and 4N. Larger arrays make every algorithm faster (lower load factor);
// the comparative shape must persist.
#include <iostream>

#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "arraysize_sweep: trial metrics vs array size factor L/N (paper §6)\n"
      "  --threads=4          worker threads\n"
      "  --ops=40000          ops per thread per point\n"
      "  --mult=1000          emulated registrants per thread\n"
      "  --factors=200,250,300,400  L/N in percent (paper: 2N..4N)\n"
      "  --prefill=0.5        pre-fill fraction\n"
      "  --algo=level,random,linear structures ('all' = every registered)\n"
      "  --seed=42            base RNG seed\n"
      "  --csv                emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 4));
  const auto ops = opts.get_uint("ops", 40000);
  const auto mult = opts.get_uint("mult", 1000);
  const auto factors_pct = opts.get_uint_list("factors", {200, 250, 300, 400});
  const double prefill = opts.get_double("prefill", 0.5);
  const auto algos = bench::expand_algos(
      opts.get_string_list("algo", {"level", "random", "linear"}));
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Array-size sweep: " << threads << " threads, N = " << mult
            << " * threads, prefill = " << prefill << "\n";

  stats::Table table({"algo", "L_over_N", "avg_trials", "stddev",
                      "worst_global", "p99"});
  for (const auto& algo : algos) {
    for (const auto factor_pct : factors_pct) {
      bench::SweepPoint point;
      point.driver.threads = threads;
      point.driver.emulation_multiplier = mult;
      point.driver.prefill = prefill;
      point.driver.ops_per_thread = ops;
      point.driver.seed = seed;
      point.size_factor = static_cast<double>(factor_pct) / 100.0;
      bench::RunResult result;
      try {
        result = bench::run_algo(algo, point);
      } catch (const std::invalid_argument& e) {
        // A structure may refuse a sweep point (e.g. the splitter's
        // quadratic-memory cap); keep the rest of the sweep's results.
        std::cerr << "warning: skipping " << algo << ": " << e.what() << "\n";
        continue;
      }
      table.add_row({std::string(bench::algo_name(algo)),
                     point.size_factor, result.trials.average(),
                     result.trials.stddev(), result.trials.worst_case(),
                     result.trials.p99()});
    }
  }
  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
