// longrun_stability — reproduces the paper's in-text long-execution claim
// (§6): "in a benchmark with approximately one billion register and
// unregister operations with 80 concurrent threads, the maximum number of
// probes performed by any operation was six, while the average number of
// probes for registering was around 1.75", and "these bounds are also
// maintained in executions with more than 10 billion operations".
//
// The default op budget is laptop-scale (2e7); pass --ops to go to the
// paper's 1e9 (minutes to hours depending on the host). The bench reports
// the probe-count histogram and running worst case at checkpoints, so the
// stability over time — not just the final number — is visible.
#include <iostream>

#include "api/registry.hpp"
#include "bench_util/algos.hpp"
#include "bench_util/options.hpp"
#include "stats/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "longrun_stability: long-execution probe-count stability (paper §6)\n"
      "  --structure=level   structure to churn (any registered name/alias)\n"
      "  --threads=8         worker threads (paper: 80)\n"
      "  --ops=20000000      total Get+Free budget across the run\n"
      "  --checkpoints=10    progress rows to print\n"
      "  --mult=1000         emulated registrants per thread\n"
      "  --prefill=0.5       pre-fill fraction\n"
      "  --rng=marsaglia     probe RNG (marsaglia | lehmer | pcg32)\n"
      "  --seed=42           base RNG seed\n"
      "  --csv               emit CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace la;
  bench::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage();
    return 0;
  }

  const auto structure =
      bench::parse_algo(opts.get_string("structure", "level"));
  const auto threads = static_cast<std::uint32_t>(opts.get_uint("threads", 8));
  const auto total_ops = opts.get_uint("ops", 20'000'000);
  const auto checkpoints = std::max<std::uint64_t>(opts.get_uint("checkpoints", 10), 1);
  const auto mult = opts.get_uint("mult", 1000);
  const double prefill = opts.get_double("prefill", 0.5);
  const auto rng_kind =
      rng::parse_rng_kind(opts.get_string("rng", "marsaglia"));
  const auto seed = opts.get_uint("seed", 42);

  std::cout << "# Long-run stability: " << bench::algo_name(structure) << ", "
            << threads << " threads, " << total_ops
            << " total ops (paper: 1e9+ ops, max 6 probes, avg ~1.75)\n";

  stats::Table table({"ops_so_far", "avg_trials", "stddev", "worst_so_far",
                      "p999", "backup_gets"});

  // Run in checkpoint-sized chunks against one persistent structure, so
  // the "worst so far" column genuinely accumulates over the whole
  // execution — run_churn is generic over the Renamer contract, so the
  // persistent structure can be anything in the registry.
  api::RenamerConfig rc;
  rc.capacity = mult * threads;
  rc.rng_kind = rng_kind;

  stats::TrialStats cumulative;
  std::uint64_t ops_done = 0;
  std::uint64_t backup_total = 0;
  const std::uint64_t ops_per_checkpoint =
      std::max<std::uint64_t>(total_ops / checkpoints, 2);

  try {
    api::visit(structure, rc, [&](auto& array) {
      for (std::uint64_t cp = 0; cp < checkpoints; ++cp) {
        bench::DriverConfig driver;
        driver.threads = threads;
        driver.emulation_multiplier = mult;
        driver.prefill = prefill;
        driver.ops_per_thread =
            std::max<std::uint64_t>(ops_per_checkpoint / threads, 2);
        driver.seconds = 0;
        driver.seed = seed + cp;  // fresh probe streams each chunk
        driver.rng_kind = rng_kind;
        const auto result = bench::run_churn(array, driver);
        cumulative.merge(result.trials);
        ops_done += result.total_ops;
        backup_total += result.backup_gets;
        table.add_row({ops_done, cumulative.average(), cumulative.stddev(),
                       cumulative.worst_case(), cumulative.p999(),
                       backup_total});
      }
      return 0;
    });
  } catch (const std::invalid_argument& e) {
    // A structure may refuse the configuration (e.g. the splitter's
    // quadratic-memory cap); fail with the reason, not a std::terminate.
    std::cerr << "longrun_stability: " << e.what() << "\n";
    return 1;
  }

  if (opts.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Probe-count histogram — the paper's claim is that this has no tail.
  std::cout << "\n# probe-count histogram (trials -> count)\n";
  stats::Table histogram({"trials", "count"});
  const auto& h = cumulative.histogram();
  for (std::uint64_t v = 1; v <= cumulative.worst_case(); ++v) {
    if (h.at(v) != 0) histogram.add_row({v, h.at(v)});
  }
  histogram.print(std::cout);

  for (const auto& key : opts.unused_keys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }
  return 0;
}
